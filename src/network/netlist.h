#pragma once
/// \file netlist.h
/// \brief Gate-level netlist: instances, nets, ports, clocks.
///
/// The netlist is the substrate every downstream tool shares: placement
/// annotates instance locations, extraction builds per-net RC, the STA
/// engine builds its timing graph from it, and the closure optimizer edits
/// it in place (sizing / Vt-swap / buffering / ECO).
///
/// Pin convention: combinational cells expose input pins 0..n-1 and one
/// output. Flops expose D = pin 0, CK = pin 1 and output Q.

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "liberty/library.h"
#include "util/status.h"
#include "util/units.h"

namespace tc {

using InstId = int;
using NetId = int;
using PortId = int;

/// A placed, typed cell instance.
struct Instance {
  std::string name;
  int cellIndex = -1;  ///< index into the reference Library
  std::vector<NetId> fanin;  ///< one net per input pin
  NetId fanout = -1;         ///< output net (-1 for sinks without outputs)
  // Placement (filled by tc_place):
  Um x = 0.0, y = 0.0;
  int row = -1;
  int siteLo = -1;  ///< leftmost occupied site in the row
  bool fixed = false;
  bool isClockTreeBuffer = false;
  /// Useful-skew adjustment applied to this flop's clock arrival (set by
  /// the closure optimizer; ignored on non-sequential instances).
  Ps usefulSkew = 0.0;
};

/// A signal net.
struct Net {
  std::string name;
  struct Sink {
    InstId inst = -1;
    int pin = 0;
  };
  InstId driver = -1;     ///< driving instance (-1 when port-driven)
  PortId driverPort = -1; ///< driving primary input when driver == -1
  std::vector<Sink> sinks;
  PortId loadPort = -1;   ///< primary output fed by this net (-1 if none)
  int ndrClass = 0;       ///< non-default routing rule index (0 = default)
  int layer = 3;          ///< representative routing layer (Mx)
  /// SI-aware effective Miller factor for this net's coupling cap, set by
  /// the SI analyzer from aggressor timing windows (0 = use the
  /// extraction-option default).
  double millerOverride = 0.0;
};

/// Primary I/O.
struct Port {
  std::string name;
  bool isInput = true;
  NetId net = -1;
  /// Case analysis: the port is tied to a static value, so no transitions
  /// propagate from it (STA never launches paths here).
  bool constant = false;
};

/// Clock definition on a primary input.
struct ClockDef {
  std::string name;
  PortId port = -1;
  Ps period = 1000.0;
  Ps jitter = 25.0;          ///< cycle-to-cycle, applied as flat margin
  Ps sourceLatency = 0.0;
};

/// Observer for in-place netlist mutations. The incremental STA engine
/// registers itself so closure transforms and ECO edits mark their own
/// dirty frontier automatically; see DESIGN.md "Incremental timing &
/// invalidation". Callbacks fire after the netlist state has changed.
class NetlistListener {
 public:
  virtual ~NetlistListener() = default;
  /// Cell of `inst` replaced in place (sizing / Vt swap): pin caps, arc
  /// surfaces and constraint tables changed; topology did not.
  virtual void onCellSwapped(InstId inst) = 0;
  /// A net-level electrical attribute changed (NDR class, Miller override):
  /// the net's parasitics are stale, connectivity is not.
  virtual void onNetAttrChanged(NetId net) = 0;
  /// The useful-skew adjustment on a flop's clock arrival changed.
  virtual void onSkewChanged(InstId flop) = 0;
  /// An instance moved (legalization, MinIA cleanup): parasitics of every
  /// net incident to it are stale, connectivity is not.
  virtual void onPlacementChanged(InstId inst) = 0;
  /// Connectivity changed (instance/net added, pin reconnected or swapped,
  /// pin quarantined, clock redefined): levelization is stale.
  virtual void onStructureChanged() = 0;
};

class Netlist {
 public:
  explicit Netlist(std::shared_ptr<const Library> lib)
      : lib_(std::move(lib)) {}

  // Listeners subscribe to one object's identity, never to its value:
  // copies and moved-to netlists start with no observers attached.
  Netlist(const Netlist& o) { copyFrom(o); }
  Netlist& operator=(const Netlist& o) {
    if (this != &o) copyFrom(o);
    return *this;
  }

  const Library& library() const { return *lib_; }
  std::shared_ptr<const Library> libraryPtr() const { return lib_; }

  // --- construction --------------------------------------------------------
  PortId addPort(const std::string& name, bool isInput);
  NetId addNet(const std::string& name);
  /// Add an instance of the given cell with all pins unconnected.
  InstId addInstance(const std::string& name, int cellIndex);
  void connectInput(InstId inst, int pin, NetId net);
  /// Detach an input pin from its net (for rebuffering edits).
  void disconnectInput(InstId inst, int pin);
  void connectOutput(InstId inst, NetId net);
  void connectPortToNet(PortId port, NetId net);
  void defineClock(const ClockDef& clock);

  // --- recoverable construction ---------------------------------------------
  // Status-returning variants for building from *external* input (parsed
  // text, network requests): a failure describes the problem instead of
  // throwing, so one bad statement degrades locally. The throwing APIs
  // above delegate to these and remain for internal/test construction.
  Status tryAddInstance(const std::string& name, int cellIndex, InstId* out);
  Status tryConnectInput(InstId inst, int pin, NetId net);
  Status tryConnectOutput(InstId inst, NetId net);
  Status tryConnectPortToNet(PortId port, NetId net);
  Status trySwapCell(InstId id, int newCellIndex, bool force = false);

  // --- access ----------------------------------------------------------------
  int instanceCount() const { return static_cast<int>(instances_.size()); }
  int netCount() const { return static_cast<int>(nets_.size()); }
  int portCount() const { return static_cast<int>(ports_.size()); }
  Instance& instance(InstId id) { return instances_[static_cast<std::size_t>(id)]; }
  const Instance& instance(InstId id) const { return instances_[static_cast<std::size_t>(id)]; }
  Net& net(NetId id) { return nets_[static_cast<std::size_t>(id)]; }
  const Net& net(NetId id) const { return nets_[static_cast<std::size_t>(id)]; }
  Port& port(PortId id) { return ports_[static_cast<std::size_t>(id)]; }
  const Port& port(PortId id) const { return ports_[static_cast<std::size_t>(id)]; }
  const std::vector<ClockDef>& clocks() const { return clocks_; }
  std::vector<ClockDef>& clocks() { return clocks_; }

  const Cell& cellOf(InstId id) const {
    return lib_->cell(instances_[static_cast<std::size_t>(id)].cellIndex);
  }
  bool isSequential(InstId id) const { return cellOf(id).isSequential; }

  /// Replace the cell of an instance (sizing / Vt-swap). The new cell must
  /// share the footprint unless `force` (buffering changes topology anyway).
  void swapCell(InstId id, int newCellIndex, bool force = false);

  // --- mutation hooks --------------------------------------------------------
  // Observers are notified after each in-place edit so incremental analyses
  // (STA dirty frontier) track the design without polling. Registration is
  // const: observing mutations is a property of the observer, and analysis
  // layers hold `const Netlist&`. The registering object must outlive the
  // netlist or deregister first.
  void addListener(NetlistListener* l) const;
  void removeListener(NetlistListener* l) const;

  // Notifying setters for attribute edits that used to be raw field writes.
  // Closure transforms and the SI analyzer go through these so a registered
  // incremental timer sees every edit.
  void setUsefulSkew(InstId flop, Ps skew);
  void setNdrClass(NetId id, int ndrClass);
  void setMillerOverride(NetId id, double factor);
  /// Swap the nets on two input pins of one instance (pin-swap optimization:
  /// functionally commutative pins with asymmetric arcs). Structural edit —
  /// listeners see onStructureChanged.
  void swapPins(InstId inst, int pinA, int pinB);
  /// Placement code (RowOccupancy moves, legalizers) writes instance
  /// coordinates directly; it calls this afterwards so listeners see the
  /// move. Public because placement lives outside the Netlist.
  void notifyPlacementChanged(InstId inst) const;

  /// Total pin capacitance hanging on a net (sink input caps).
  Ff netSinkCap(NetId id) const;

  // --- integrity -------------------------------------------------------------
  /// Structural checks: single driver per net, all input pins tied, pin
  /// counts match cells, clock reaches every flop. Throws on violation.
  void validate() const;

  /// Recoverable variant: reports every violation to `sink` (with entity
  /// names) and returns true when none were errors. Quarantined pins are
  /// exempt from the floating-input check.
  bool validate(DiagnosticSink& sink) const;

  /// Topological order of instances (combinational DAG; flops are sources/
  /// sinks). Throws on a combinational cycle.
  std::vector<InstId> topoOrder() const;

  /// Recoverable variant: returns false on a combinational cycle, leaving
  /// `out` holding the acyclic prefix (instances outside any loop).
  bool tryTopoOrder(std::vector<InstId>* out) const;

  // --- graceful degradation ---------------------------------------------------
  /// An input pin severed from timing. The timing graph drops the net arc
  /// into a quarantined pin and the STA engine seeds a pessimistic borrowed
  /// arrival there instead — how the linter breaks combinational loops and
  /// contains dangling pins so one bad net degrades locally.
  struct PinRef {
    InstId inst = -1;
    int pin = -1;
  };
  void quarantinePin(InstId inst, int pin);
  bool isPinQuarantined(InstId inst, int pin) const;
  const std::vector<PinRef>& quarantinedPins() const { return quarantined_; }

 private:
  void copyFrom(const Netlist& o);
  void notifyCellSwapped(InstId inst);
  void notifyNetAttrChanged(NetId net);
  void notifySkewChanged(InstId flop);
  void notifyStructureChanged();

  std::shared_ptr<const Library> lib_;
  std::vector<Instance> instances_;
  std::vector<Net> nets_;
  std::vector<Port> ports_;
  std::vector<ClockDef> clocks_;
  std::vector<PinRef> quarantined_;
  std::set<std::pair<InstId, int>> quarantinedSet_;
  /// Mutation observers; see addListener. Mutable because registration is
  /// const, and deliberately absent from copyFrom.
  mutable std::vector<NetlistListener*> listeners_;
};

}  // namespace tc
