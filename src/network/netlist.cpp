#include "network/netlist.h"

#include <queue>
#include <stdexcept>

namespace tc {

PortId Netlist::addPort(const std::string& name, bool isInput) {
  ports_.push_back({name, isInput, -1});
  return static_cast<PortId>(ports_.size()) - 1;
}

NetId Netlist::addNet(const std::string& name) {
  Net n;
  n.name = name;
  nets_.push_back(std::move(n));
  return static_cast<NetId>(nets_.size()) - 1;
}

InstId Netlist::addInstance(const std::string& name, int cellIndex) {
  if (cellIndex < 0 || cellIndex >= lib_->cellCount())
    throw std::invalid_argument("addInstance: bad cell index");
  Instance inst;
  inst.name = name;
  inst.cellIndex = cellIndex;
  inst.fanin.assign(
      static_cast<std::size_t>(lib_->cell(cellIndex).numInputs), -1);
  instances_.push_back(std::move(inst));
  return static_cast<InstId>(instances_.size()) - 1;
}

void Netlist::connectInput(InstId inst, int pin, NetId net) {
  auto& i = instances_[static_cast<std::size_t>(inst)];
  if (pin < 0 || pin >= static_cast<int>(i.fanin.size()))
    throw std::invalid_argument("connectInput: bad pin on " + i.name);
  i.fanin[static_cast<std::size_t>(pin)] = net;
  nets_[static_cast<std::size_t>(net)].sinks.push_back({inst, pin});
}

void Netlist::disconnectInput(InstId inst, int pin) {
  auto& i = instances_[static_cast<std::size_t>(inst)];
  const NetId nid = i.fanin[static_cast<std::size_t>(pin)];
  if (nid < 0) return;
  auto& sinks = nets_[static_cast<std::size_t>(nid)].sinks;
  for (std::size_t k = 0; k < sinks.size(); ++k) {
    if (sinks[k].inst == inst && sinks[k].pin == pin) {
      sinks.erase(sinks.begin() + static_cast<long>(k));
      break;
    }
  }
  i.fanin[static_cast<std::size_t>(pin)] = -1;
}

void Netlist::connectOutput(InstId inst, NetId net) {
  auto& n = nets_[static_cast<std::size_t>(net)];
  if (n.driver != -1 || n.driverPort != -1)
    throw std::invalid_argument("connectOutput: net already driven: " +
                                n.name);
  n.driver = inst;
  instances_[static_cast<std::size_t>(inst)].fanout = net;
}

void Netlist::connectPortToNet(PortId port, NetId net) {
  auto& p = ports_[static_cast<std::size_t>(port)];
  p.net = net;
  auto& n = nets_[static_cast<std::size_t>(net)];
  if (p.isInput) {
    if (n.driver != -1 || n.driverPort != -1)
      throw std::invalid_argument("port drive conflict on net " + n.name);
    n.driverPort = port;
  } else {
    n.loadPort = port;
  }
}

void Netlist::defineClock(const ClockDef& clock) { clocks_.push_back(clock); }

void Netlist::swapCell(InstId id, int newCellIndex, bool force) {
  auto& inst = instances_[static_cast<std::size_t>(id)];
  const Cell& oldCell = lib_->cell(inst.cellIndex);
  const Cell& newCell = lib_->cell(newCellIndex);
  if (!force && newCell.footprint != oldCell.footprint)
    throw std::invalid_argument("swapCell: footprint mismatch " +
                                oldCell.footprint + " -> " +
                                newCell.footprint);
  if (newCell.numInputs != oldCell.numInputs)
    throw std::invalid_argument("swapCell: pin count mismatch on " +
                                inst.name);
  inst.cellIndex = newCellIndex;
}

Ff Netlist::netSinkCap(NetId id) const {
  const Net& n = nets_[static_cast<std::size_t>(id)];
  Ff cap = 0.0;
  for (const auto& s : n.sinks) cap += cellOf(s.inst).pinCap;
  return cap;
}

void Netlist::validate() const {
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const Instance& inst = instances_[i];
    const Cell& cell = lib_->cell(inst.cellIndex);
    if (static_cast<int>(inst.fanin.size()) != cell.numInputs)
      throw std::logic_error("pin count mismatch on " + inst.name);
    for (NetId nid : inst.fanin)
      if (nid < 0) throw std::logic_error("floating input on " + inst.name);
    if (!cell.isSequential && inst.fanout < 0)
      throw std::logic_error("dangling output on " + inst.name);
  }
  for (const Net& n : nets_) {
    if (n.driver < 0 && n.driverPort < 0)
      throw std::logic_error("undriven net " + n.name);
    if (n.sinks.empty() && n.loadPort < 0)
      throw std::logic_error("unloaded net " + n.name);
  }
  // Every flop's CK pin must trace back to a defined clock port.
  if (!clocks_.empty()) {
    for (std::size_t i = 0; i < instances_.size(); ++i) {
      const Instance& inst = instances_[i];
      if (!lib_->cell(inst.cellIndex).isSequential) continue;
      NetId nid = inst.fanin[1];
      int guard = 0;
      while (nid >= 0 && guard++ < 10000) {
        const Net& n = nets_[static_cast<std::size_t>(nid)];
        if (n.driverPort >= 0) {
          bool isClock = false;
          for (const auto& c : clocks_)
            if (c.port == n.driverPort) isClock = true;
          if (!isClock)
            throw std::logic_error("flop " + inst.name +
                                   " clocked by non-clock port");
          break;
        }
        nid = instances_[static_cast<std::size_t>(n.driver)].fanin.empty()
                  ? -1
                  : instances_[static_cast<std::size_t>(n.driver)].fanin[0];
      }
    }
  }
  (void)topoOrder();  // throws on combinational cycles
}

std::vector<InstId> Netlist::topoOrder() const {
  // Kahn's algorithm over combinational edges; flop outputs are sources.
  const int n = instanceCount();
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    const Instance& inst = instances_[static_cast<std::size_t>(i)];
    if (lib_->cell(inst.cellIndex).isSequential) continue;  // no comb fanin
    for (NetId nid : inst.fanin) {
      const Net& net = nets_[static_cast<std::size_t>(nid)];
      if (net.driver >= 0 &&
          !lib_->cell(instances_[static_cast<std::size_t>(net.driver)].cellIndex)
               .isSequential)
        ++indeg[static_cast<std::size_t>(i)];
    }
  }
  std::queue<InstId> q;
  for (int i = 0; i < n; ++i)
    if (indeg[static_cast<std::size_t>(i)] == 0) q.push(i);
  std::vector<InstId> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!q.empty()) {
    const InstId u = q.front();
    q.pop();
    order.push_back(u);
    const Instance& inst = instances_[static_cast<std::size_t>(u)];
    if (inst.fanout < 0) continue;
    if (lib_->cell(inst.cellIndex).isSequential) {
      // Flop outputs feed combinational logic but we seeded flops above.
    }
    for (const auto& s : nets_[static_cast<std::size_t>(inst.fanout)].sinks) {
      if (lib_->cell(instances_[static_cast<std::size_t>(s.inst)].cellIndex)
              .isSequential)
        continue;  // flop inputs terminate combinational paths
      if (--indeg[static_cast<std::size_t>(s.inst)] == 0) q.push(s.inst);
    }
  }
  if (static_cast<int>(order.size()) != n)
    throw std::logic_error("combinational cycle detected");
  return order;
}

}  // namespace tc
