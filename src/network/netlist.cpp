#include "network/netlist.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <utility>

namespace tc {

namespace {
/// Throwing shims keep the legacy construction API: internal callers (test
/// fixtures, the generator, the optimizer) treat structural misuse as a
/// programmer error; external input goes through the try* Status APIs.
void orThrow(const Status& s) {
  if (!s.ok()) throw std::invalid_argument(s.str());
}
}  // namespace

void Netlist::copyFrom(const Netlist& o) {
  // listeners_ intentionally untouched: observers follow object identity.
  lib_ = o.lib_;
  instances_ = o.instances_;
  nets_ = o.nets_;
  ports_ = o.ports_;
  clocks_ = o.clocks_;
  quarantined_ = o.quarantined_;
  quarantinedSet_ = o.quarantinedSet_;
}

void Netlist::addListener(NetlistListener* l) const {
  if (l && std::find(listeners_.begin(), listeners_.end(), l) ==
               listeners_.end())
    listeners_.push_back(l);
}

void Netlist::removeListener(NetlistListener* l) const {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), l),
                   listeners_.end());
}

void Netlist::notifyCellSwapped(InstId inst) {
  for (NetlistListener* l : listeners_) l->onCellSwapped(inst);
}

void Netlist::notifyNetAttrChanged(NetId net) {
  for (NetlistListener* l : listeners_) l->onNetAttrChanged(net);
}

void Netlist::notifySkewChanged(InstId flop) {
  for (NetlistListener* l : listeners_) l->onSkewChanged(flop);
}

void Netlist::notifyStructureChanged() {
  for (NetlistListener* l : listeners_) l->onStructureChanged();
}

void Netlist::notifyPlacementChanged(InstId inst) const {
  for (NetlistListener* l : listeners_) l->onPlacementChanged(inst);
}

void Netlist::setUsefulSkew(InstId flop, Ps skew) {
  auto& inst = instances_[static_cast<std::size_t>(flop)];
  if (inst.usefulSkew == skew) return;
  inst.usefulSkew = skew;
  notifySkewChanged(flop);
}

void Netlist::setNdrClass(NetId id, int ndrClass) {
  auto& n = nets_[static_cast<std::size_t>(id)];
  if (n.ndrClass == ndrClass) return;
  n.ndrClass = ndrClass;
  notifyNetAttrChanged(id);
}

void Netlist::setMillerOverride(NetId id, double factor) {
  auto& n = nets_[static_cast<std::size_t>(id)];
  if (n.millerOverride == factor) return;
  n.millerOverride = factor;
  notifyNetAttrChanged(id);
}

void Netlist::swapPins(InstId inst, int pinA, int pinB) {
  auto& i = instances_[static_cast<std::size_t>(inst)];
  if (pinA == pinB) return;
  if (pinA < 0 || pinB < 0 || pinA >= static_cast<int>(i.fanin.size()) ||
      pinB >= static_cast<int>(i.fanin.size()))
    throw std::invalid_argument("swapPins: bad pin index on " + i.name);
  const NetId netA = i.fanin[static_cast<std::size_t>(pinA)];
  const NetId netB = i.fanin[static_cast<std::size_t>(pinB)];
  auto retarget = [&](NetId nid, int fromPin, int toPin) {
    if (nid < 0) return;
    for (auto& s : nets_[static_cast<std::size_t>(nid)].sinks)
      if (s.inst == inst && s.pin == fromPin) s.pin = toPin;
  };
  retarget(netA, pinA, pinB);
  retarget(netB, pinB, pinA);
  std::swap(i.fanin[static_cast<std::size_t>(pinA)],
            i.fanin[static_cast<std::size_t>(pinB)]);
  notifyStructureChanged();
}

PortId Netlist::addPort(const std::string& name, bool isInput) {
  ports_.push_back({name, isInput, -1});
  return static_cast<PortId>(ports_.size()) - 1;
}

NetId Netlist::addNet(const std::string& name) {
  Net n;
  n.name = name;
  nets_.push_back(std::move(n));
  notifyStructureChanged();
  return static_cast<NetId>(nets_.size()) - 1;
}

Status Netlist::tryAddInstance(const std::string& name, int cellIndex,
                               InstId* out) {
  if (cellIndex < 0 || cellIndex >= lib_->cellCount())
    return Status::failure(DiagCode::kNetBadCellIndex,
                           "addInstance '" + name + "': cell index " +
                               std::to_string(cellIndex) +
                               " outside library");
  Instance inst;
  inst.name = name;
  inst.cellIndex = cellIndex;
  inst.fanin.assign(
      static_cast<std::size_t>(lib_->cell(cellIndex).numInputs), -1);
  instances_.push_back(std::move(inst));
  if (out) *out = static_cast<InstId>(instances_.size()) - 1;
  notifyStructureChanged();
  return Status::okStatus();
}

InstId Netlist::addInstance(const std::string& name, int cellIndex) {
  InstId id = -1;
  orThrow(tryAddInstance(name, cellIndex, &id));
  return id;
}

Status Netlist::tryConnectInput(InstId inst, int pin, NetId net) {
  if (inst < 0 || inst >= instanceCount())
    return Status::failure(DiagCode::kNetBadId,
                           "connectInput: instance id " +
                               std::to_string(inst) + " out of range");
  if (net < 0 || net >= netCount())
    return Status::failure(DiagCode::kNetBadId,
                           "connectInput: net id " + std::to_string(net) +
                               " out of range");
  auto& i = instances_[static_cast<std::size_t>(inst)];
  if (pin < 0 || pin >= static_cast<int>(i.fanin.size()))
    return Status::failure(DiagCode::kNetBadPinIndex,
                           "connectInput: bad pin " + std::to_string(pin) +
                               " on " + i.name);
  i.fanin[static_cast<std::size_t>(pin)] = net;
  nets_[static_cast<std::size_t>(net)].sinks.push_back({inst, pin});
  notifyStructureChanged();
  return Status::okStatus();
}

void Netlist::connectInput(InstId inst, int pin, NetId net) {
  orThrow(tryConnectInput(inst, pin, net));
}

void Netlist::disconnectInput(InstId inst, int pin) {
  auto& i = instances_[static_cast<std::size_t>(inst)];
  const NetId nid = i.fanin[static_cast<std::size_t>(pin)];
  if (nid < 0) return;
  auto& sinks = nets_[static_cast<std::size_t>(nid)].sinks;
  for (std::size_t k = 0; k < sinks.size(); ++k) {
    if (sinks[k].inst == inst && sinks[k].pin == pin) {
      sinks.erase(sinks.begin() + static_cast<long>(k));
      break;
    }
  }
  i.fanin[static_cast<std::size_t>(pin)] = -1;
  notifyStructureChanged();
}

Status Netlist::tryConnectOutput(InstId inst, NetId net) {
  if (inst < 0 || inst >= instanceCount())
    return Status::failure(DiagCode::kNetBadId,
                           "connectOutput: instance id " +
                               std::to_string(inst) + " out of range");
  if (net < 0 || net >= netCount())
    return Status::failure(DiagCode::kNetBadId,
                           "connectOutput: net id " + std::to_string(net) +
                               " out of range");
  auto& n = nets_[static_cast<std::size_t>(net)];
  if (n.driver != -1 || n.driverPort != -1)
    return Status::failure(DiagCode::kNetDoubleDriver,
                           "connectOutput: net already driven: " + n.name);
  n.driver = inst;
  instances_[static_cast<std::size_t>(inst)].fanout = net;
  notifyStructureChanged();
  return Status::okStatus();
}

void Netlist::connectOutput(InstId inst, NetId net) {
  orThrow(tryConnectOutput(inst, net));
}

Status Netlist::tryConnectPortToNet(PortId port, NetId net) {
  if (port < 0 || port >= portCount())
    return Status::failure(DiagCode::kNetBadId,
                           "connectPortToNet: port id " +
                               std::to_string(port) + " out of range");
  if (net < 0 || net >= netCount())
    return Status::failure(DiagCode::kNetBadId,
                           "connectPortToNet: net id " +
                               std::to_string(net) + " out of range");
  auto& p = ports_[static_cast<std::size_t>(port)];
  auto& n = nets_[static_cast<std::size_t>(net)];
  if (p.isInput && (n.driver != -1 || n.driverPort != -1))
    return Status::failure(DiagCode::kNetDoubleDriver,
                           "port drive conflict on net " + n.name);
  p.net = net;
  if (p.isInput)
    n.driverPort = port;
  else
    n.loadPort = port;
  notifyStructureChanged();
  return Status::okStatus();
}

void Netlist::connectPortToNet(PortId port, NetId net) {
  orThrow(tryConnectPortToNet(port, net));
}

void Netlist::defineClock(const ClockDef& clock) {
  clocks_.push_back(clock);
  notifyStructureChanged();
}

Status Netlist::trySwapCell(InstId id, int newCellIndex, bool force) {
  if (id < 0 || id >= instanceCount())
    return Status::failure(DiagCode::kNetBadId,
                           "swapCell: instance id " + std::to_string(id) +
                               " out of range");
  if (newCellIndex < 0 || newCellIndex >= lib_->cellCount())
    return Status::failure(DiagCode::kNetBadCellIndex,
                           "swapCell: cell index " +
                               std::to_string(newCellIndex) +
                               " outside library");
  auto& inst = instances_[static_cast<std::size_t>(id)];
  const Cell& oldCell = lib_->cell(inst.cellIndex);
  const Cell& newCell = lib_->cell(newCellIndex);
  if (!force && newCell.footprint != oldCell.footprint)
    return Status::failure(DiagCode::kNetFootprintMismatch,
                           "swapCell: footprint mismatch " +
                               oldCell.footprint + " -> " +
                               newCell.footprint);
  if (newCell.numInputs != oldCell.numInputs)
    return Status::failure(DiagCode::kNetPinCountMismatch,
                           "swapCell: pin count mismatch on " + inst.name);
  inst.cellIndex = newCellIndex;
  notifyCellSwapped(id);
  return Status::okStatus();
}

void Netlist::swapCell(InstId id, int newCellIndex, bool force) {
  orThrow(trySwapCell(id, newCellIndex, force));
}

Ff Netlist::netSinkCap(NetId id) const {
  const Net& n = nets_[static_cast<std::size_t>(id)];
  Ff cap = 0.0;
  for (const auto& s : n.sinks) cap += cellOf(s.inst).pinCap;
  return cap;
}

void Netlist::quarantinePin(InstId inst, int pin) {
  if (quarantinedSet_.insert({inst, pin}).second) {
    quarantined_.push_back({inst, pin});
    notifyStructureChanged();
  }
}

bool Netlist::isPinQuarantined(InstId inst, int pin) const {
  return quarantinedSet_.count({inst, pin}) > 0;
}

bool Netlist::validate(DiagnosticSink& sink) const {
  const int errorsBefore = sink.errorCount();
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const Instance& inst = instances_[i];
    const Cell& cell = lib_->cell(inst.cellIndex);
    if (static_cast<int>(inst.fanin.size()) != cell.numInputs)
      sink.error(DiagCode::kNetPinCountMismatch,
                 "pin count mismatch vs cell " + cell.name, inst.name);
    for (std::size_t pin = 0; pin < inst.fanin.size(); ++pin) {
      if (inst.fanin[pin] < 0 &&
          !isPinQuarantined(static_cast<InstId>(i), static_cast<int>(pin)))
        sink.error(DiagCode::kNetFloatingInput,
                   "floating input pin " + std::to_string(pin), inst.name);
    }
    if (!cell.isSequential && inst.fanout < 0)
      sink.error(DiagCode::kNetDanglingOutput, "dangling output", inst.name);
  }
  for (const Net& n : nets_) {
    if (n.driver < 0 && n.driverPort < 0)
      sink.error(DiagCode::kNetUndrivenNet, "undriven net", n.name);
    if (n.sinks.empty() && n.loadPort < 0)
      sink.error(DiagCode::kNetUnloadedNet, "unloaded net", n.name);
  }
  // Every flop's CK pin must trace back to a defined clock port.
  if (!clocks_.empty()) {
    for (std::size_t i = 0; i < instances_.size(); ++i) {
      const Instance& inst = instances_[i];
      if (!lib_->cell(inst.cellIndex).isSequential) continue;
      if (inst.fanin.size() < 2) continue;  // already flagged above
      NetId nid = inst.fanin[1];
      int guard = 0;
      while (nid >= 0 && guard++ < 10000) {
        const Net& n = nets_[static_cast<std::size_t>(nid)];
        if (n.driverPort >= 0) {
          bool isClock = false;
          for (const auto& c : clocks_)
            if (c.port == n.driverPort) isClock = true;
          if (!isClock)
            sink.error(DiagCode::kNetNonClockClocked,
                       "flop clocked by non-clock port " +
                           ports_[static_cast<std::size_t>(n.driverPort)].name,
                       inst.name);
          break;
        }
        if (n.driver < 0) break;  // undriven CK net, flagged above
        const Instance& drv = instances_[static_cast<std::size_t>(n.driver)];
        nid = drv.fanin.empty() ? -1 : drv.fanin[0];
      }
    }
  }
  std::vector<InstId> order;
  if (!tryTopoOrder(&order))
    sink.error(DiagCode::kNetCombLoop,
               "combinational cycle detected (" +
                   std::to_string(instances_.size() - order.size()) +
                   " instances in loops)");
  return sink.errorCount() == errorsBefore;
}

void Netlist::validate() const {
  DiagnosticSink sink;
  sink.setEcho(false);
  if (!validate(sink)) {
    Diagnostic first;
    for (const auto& d : sink.diagnostics()) {
      if (d.severity == Severity::kError) {
        first = d;
        break;
      }
    }
    throw std::logic_error(first.str());
  }
}

bool Netlist::tryTopoOrder(std::vector<InstId>* out) const {
  // Kahn's algorithm over combinational edges; flop outputs are sources.
  // Net arcs into quarantined pins are severed (loop breaks).
  const int n = instanceCount();
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    const Instance& inst = instances_[static_cast<std::size_t>(i)];
    if (lib_->cell(inst.cellIndex).isSequential) continue;  // no comb fanin
    for (std::size_t pin = 0; pin < inst.fanin.size(); ++pin) {
      const NetId nid = inst.fanin[pin];
      if (nid < 0) continue;
      if (isPinQuarantined(i, static_cast<int>(pin))) continue;
      const Net& net = nets_[static_cast<std::size_t>(nid)];
      if (net.driver >= 0 &&
          !lib_->cell(instances_[static_cast<std::size_t>(net.driver)].cellIndex)
               .isSequential)
        ++indeg[static_cast<std::size_t>(i)];
    }
  }
  std::queue<InstId> q;
  for (int i = 0; i < n; ++i)
    if (indeg[static_cast<std::size_t>(i)] == 0) q.push(i);
  std::vector<InstId>& order = *out;
  order.clear();
  order.reserve(static_cast<std::size_t>(n));
  while (!q.empty()) {
    const InstId u = q.front();
    q.pop();
    order.push_back(u);
    const Instance& inst = instances_[static_cast<std::size_t>(u)];
    if (inst.fanout < 0) continue;
    for (const auto& s : nets_[static_cast<std::size_t>(inst.fanout)].sinks) {
      if (lib_->cell(instances_[static_cast<std::size_t>(s.inst)].cellIndex)
              .isSequential)
        continue;  // flop inputs terminate combinational paths
      if (isPinQuarantined(s.inst, s.pin)) continue;
      if (--indeg[static_cast<std::size_t>(s.inst)] == 0) q.push(s.inst);
    }
  }
  return static_cast<int>(order.size()) == n;
}

std::vector<InstId> Netlist::topoOrder() const {
  std::vector<InstId> order;
  if (!tryTopoOrder(&order))
    throw std::logic_error("combinational cycle detected");
  return order;
}

}  // namespace tc
