#pragma once
/// \file verilog.h
/// \brief Structural Verilog interchange for the gate-level netlist.
///
/// Writes the synthesizable structural subset (module, port decls, wire
/// decls, cell instances with named pin connections) and reads the same
/// subset back. Pin naming convention: combinational inputs A/B/C, output
/// Y; flops D, CK, Q — the names commercial libraries use, so the emitted
/// netlist is recognizable to anyone who has read a post-synthesis .v.

#include <iosfwd>
#include <memory>
#include <string>

#include "network/netlist.h"
#include "util/status.h"

namespace tc {

/// Emit the netlist as structural Verilog. Clock definitions and placement
/// are not representable in Verilog and are omitted (see writeSdcLike for
/// the constraint side).
void writeVerilog(const Netlist& nl, std::ostream& os,
                  const std::string& moduleName = "top");
std::string toVerilog(const Netlist& nl,
                      const std::string& moduleName = "top");

/// Parse a structural-Verilog module written by writeVerilog (or any file
/// restricted to that subset) against the given reference library.
///
/// Recoverable entry points: malformed input yields a failed Result, and
/// every problem — syntax errors, unknown cells/pins, double drivers — is
/// reported to `sink` with a line number and the offending entity. Benign
/// problems (a redundant connection, a duplicate instance name) degrade to
/// warnings and parsing continues. Clocks must be re-declared by the
/// caller.
Result<Netlist> parseVerilog(const std::string& text,
                             std::shared_ptr<const Library> lib,
                             DiagnosticSink& sink);
Result<Netlist> readVerilog(std::istream& is,
                            std::shared_ptr<const Library> lib,
                            DiagnosticSink& sink);

/// Legacy throwing wrappers: throw std::runtime_error carrying the first
/// diagnostic. Prefer the sink-based overloads for external input.
Netlist readVerilog(std::istream& is, std::shared_ptr<const Library> lib);
Netlist parseVerilog(const std::string& text,
                     std::shared_ptr<const Library> lib);

/// Emit the constraint side as an SDC-flavored file: create_clock,
/// set_input_delay placeholders, and the per-net NDR annotations this
/// framework tracks.
void writeSdcLike(const Netlist& nl, std::ostream& os);

/// Input pin name for a cell's pin index (A/B/C or D/CK).
std::string pinName(const Cell& cell, int pin);

}  // namespace tc
