#include "network/verilog.h"

#include <cctype>
#include <functional>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace tc {

std::string pinName(const Cell& cell, int pin) {
  if (cell.isSequential) return pin == 0 ? "D" : "CK";
  static const char* kNames[] = {"A", "B", "C", "D0", "D1"};
  return kNames[pin];
}

namespace {

/// Verilog-safe identifier (our generated names already comply; escape
/// anything else with the standard backslash form).
std::string ident(const std::string& name) {
  bool ok = !name.empty() &&
            (std::isalpha(static_cast<unsigned char>(name[0])) ||
             name[0] == '_');
  for (char c : name)
    ok = ok && (std::isalnum(static_cast<unsigned char>(c)) || c == '_');
  return ok ? name : "\\" + name + " ";
}

}  // namespace

void writeVerilog(const Netlist& nl, std::ostream& os,
                  const std::string& moduleName) {
  os << "// structural netlist written by goalposts\n";
  os << "module " << moduleName << " (";
  for (PortId p = 0; p < nl.portCount(); ++p) {
    if (p) os << ", ";
    os << ident(nl.port(p).name);
  }
  os << ");\n";
  for (PortId p = 0; p < nl.portCount(); ++p) {
    const Port& port = nl.port(p);
    os << "  " << (port.isInput ? "input " : "output ")
       << ident(port.name) << ";\n";
  }
  // Nets tied to a port are referenced through the port name (Verilog has
  // no separate identity for them); all others become wires.
  auto portOf = [&](NetId n) -> PortId {
    for (PortId p = 0; p < nl.portCount(); ++p)
      if (nl.port(p).net == n) return p;
    return -1;
  };
  for (NetId n = 0; n < nl.netCount(); ++n) {
    if (portOf(n) < 0) os << "  wire " << ident(nl.net(n).name) << ";\n";
  }
  // A net tied to several ports is expressed through the first port's name;
  // the remaining ports alias it with assigns.
  for (NetId n = 0; n < nl.netCount(); ++n) {
    const PortId first = portOf(n);
    if (first < 0) continue;
    for (PortId p = first + 1; p < nl.portCount(); ++p) {
      if (nl.port(p).net != n) continue;
      if (nl.port(p).isInput)
        os << "  assign " << ident(nl.port(first).name) << " = "
           << ident(nl.port(p).name) << ";\n";
      else
        os << "  assign " << ident(nl.port(p).name) << " = "
           << ident(nl.port(first).name) << ";\n";
    }
  }
  os << "\n";

  auto netRef = [&](NetId n) -> std::string {
    const PortId p = portOf(n);
    return p >= 0 ? ident(nl.port(p).name) : ident(nl.net(n).name);
  };

  for (InstId i = 0; i < nl.instanceCount(); ++i) {
    const Instance& inst = nl.instance(i);
    const Cell& cell = nl.cellOf(i);
    os << "  " << cell.name << " " << ident(inst.name) << " (";
    bool first = true;
    for (int pin = 0; pin < cell.numInputs; ++pin) {
      if (!first) os << ", ";
      first = false;
      os << "." << pinName(cell, pin) << "("
         << netRef(inst.fanin[static_cast<std::size_t>(pin)]) << ")";
    }
    if (inst.fanout >= 0) {
      if (!first) os << ", ";
      os << "." << (cell.isSequential ? "Q" : "Y") << "("
         << netRef(inst.fanout) << ")";
    }
    os << ");\n";
  }
  os << "endmodule\n";
}

std::string toVerilog(const Netlist& nl, const std::string& moduleName) {
  std::ostringstream os;
  writeVerilog(nl, os, moduleName);
  return os.str();
}

void writeSdcLike(const Netlist& nl, std::ostream& os) {
  os << "# constraints written by goalposts\n";
  for (const auto& c : nl.clocks()) {
    os << "create_clock -name " << c.name << " -period "
       << c.period * kPsToNs << " [get_ports " << nl.port(c.port).name
       << "]\n";
    os << "set_clock_uncertainty " << c.jitter * kPsToNs << " [get_clocks "
       << c.name << "]\n";
  }
  for (PortId p = 0; p < nl.portCount(); ++p) {
    const Port& port = nl.port(p);
    if (port.constant && port.isInput)
      os << "set_case_analysis 0 [get_ports " << port.name << "]\n";
  }
  for (NetId n = 0; n < nl.netCount(); ++n) {
    if (nl.net(n).ndrClass > 0)
      os << "# NDR class " << nl.net(n).ndrClass << " on net "
         << nl.net(n).name << "\n";
  }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

namespace {

/// Internal unwind token: the diagnostic has already been reported to the
/// sink; the public entry point converts this into a failed Result. Never
/// escapes this translation unit.
struct ParseBail {};

struct Lexer {
  std::string text;
  DiagnosticSink* sink = nullptr;
  std::size_t pos = 0;
  int line = 1;

  void skipWs() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '\n') {
        ++line;
        ++pos;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
      } else if (c == '/' && pos + 1 < text.size() && text[pos + 1] == '/') {
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else {
        break;
      }
    }
  }

  bool eof() {
    skipWs();
    return pos >= text.size();
  }

  [[noreturn]] void fail(const std::string& what,
                         DiagCode code = DiagCode::kVerilogSyntax) {
    sink->error(code, what, /*entity=*/{}, line);
    throw ParseBail{};
  }

  std::string token() {
    skipWs();
    if (pos >= text.size())
      fail("unexpected end of input", DiagCode::kVerilogUnexpectedEof);
    const char c = text[pos];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos;
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) ||
              text[pos] == '_'))
        ++pos;
      return text.substr(start, pos - start);
    }
    if (c == '\\') {  // escaped identifier, terminated by whitespace
      std::size_t start = ++pos;
      while (pos < text.size() &&
             !std::isspace(static_cast<unsigned char>(text[pos])))
        ++pos;
      if (pos == start)
        fail("empty escaped identifier", DiagCode::kVerilogUnexpectedEof);
      return text.substr(start, pos - start);
    }
    ++pos;
    return std::string(1, c);
  }

  void expect(const std::string& t) {
    const std::string got = token();
    if (got != t) fail("expected '" + t + "', got '" + got + "'");
  }

  std::string peek() {
    const std::size_t savedPos = pos;
    const int savedLine = line;
    const std::string t = eof() ? "" : token();
    pos = savedPos;
    line = savedLine;
    return t;
  }
};

Result<Netlist> parseVerilogImpl(const std::string& text,
                                 std::shared_ptr<const Library> lib,
                                 DiagnosticSink& sink);

}  // namespace

Result<Netlist> readVerilog(std::istream& is,
                            std::shared_ptr<const Library> lib,
                            DiagnosticSink& sink) {
  std::ostringstream buf;
  buf << is.rdbuf();
  return parseVerilog(buf.str(), std::move(lib), sink);
}

Result<Netlist> parseVerilog(const std::string& text,
                             std::shared_ptr<const Library> lib,
                             DiagnosticSink& sink) {
  try {
    return parseVerilogImpl(text, std::move(lib), sink);
  } catch (const ParseBail&) {
    return Status::failure(DiagCode::kVerilogSyntax,
                           "verilog parse aborted (see diagnostics)");
  }
}

Netlist readVerilog(std::istream& is, std::shared_ptr<const Library> lib) {
  std::ostringstream buf;
  buf << is.rdbuf();
  return parseVerilog(buf.str(), std::move(lib));
}

Netlist parseVerilog(const std::string& text,
                     std::shared_ptr<const Library> lib) {
  DiagnosticSink sink;
  sink.setEcho(false);
  Result<Netlist> r = parseVerilog(text, std::move(lib), sink);
  if (!r.ok()) {
    std::string what = "verilog parse error";
    Diagnostic d;
    const auto diags = sink.diagnostics();
    if (!diags.empty()) what = "verilog parse error: " + diags.front().str();
    throw std::runtime_error(what);
  }
  return std::move(r).take();
}

namespace {

Result<Netlist> parseVerilogImpl(const std::string& text,
                                 std::shared_ptr<const Library> lib,
                                 DiagnosticSink& sink) {
  Lexer lx{text, &sink};

  // First pass: collect declarations; `assign` aliases are resolved with a
  // union-find over net names before any Netlist object is created.
  struct PortDecl {
    std::string name;
    bool isInput = true;
    int line = -1;
  };
  struct InstDecl {
    int cellIndex = -1;
    std::string name;
    std::vector<std::pair<std::string, std::string>> conns;  // pin -> net
    int line = -1;
  };
  std::vector<PortDecl> portDecls;
  std::vector<InstDecl> instDecls;
  std::map<std::string, std::string> parent;  // union-find over names
  std::function<std::string(const std::string&)> find =
      [&](const std::string& x) -> std::string {
    auto it = parent.find(x);
    if (it == parent.end() || it->second == x) {
      parent[x] = x;
      return x;
    }
    const std::string root = find(it->second);
    parent[x] = root;
    return root;
  };
  auto unite = [&](const std::string& a, const std::string& b) {
    parent[find(a)] = find(b);
  };

  lx.expect("module");
  lx.token();  // module name
  lx.expect("(");
  // Port list (names only; direction comes from the decls).
  if (lx.peek() != ")") {
    while (true) {
      lx.token();  // port name (re-declared below)
      const std::string sep = lx.token();
      if (sep == ")") break;
      if (sep != ",") lx.fail("expected ',' or ')' in port list");
    }
  } else {
    lx.expect(")");
  }
  lx.expect(";");

  bool sawEnd = false;
  while (!lx.eof()) {
    const std::string kw = lx.token();
    if (kw == "endmodule") {
      sawEnd = true;
      break;
    } else if (kw == "input" || kw == "output") {
      const int declLine = lx.line;
      const std::string name = lx.token();
      lx.expect(";");
      portDecls.push_back({name, kw == "input", declLine});
      find(name);
    } else if (kw == "wire") {
      const std::string name = lx.token();
      lx.expect(";");
      find(name);
    } else if (kw == "assign") {
      const std::string lhs = lx.token();
      lx.expect("=");
      const std::string rhs = lx.token();
      lx.expect(";");
      unite(lhs, rhs);
    } else {
      // Cell instantiation: <cellname> <instname> ( .PIN(net), ... );
      const int cellIdx = lib->findCell(kw);
      if (cellIdx < 0)
        lx.fail("unknown cell '" + kw + "'", DiagCode::kVerilogUnknownCell);
      InstDecl inst;
      inst.cellIndex = cellIdx;
      inst.line = lx.line;
      inst.name = lx.token();
      lx.expect("(");
      while (true) {
        lx.expect(".");
        const std::string pin = lx.token();
        lx.expect("(");
        const std::string netName = lx.token();
        lx.expect(")");
        inst.conns.push_back({pin, netName});
        find(netName);
        const std::string sep = lx.token();
        if (sep == ")") break;
        if (sep != ",") lx.fail("expected ',' or ')' in connection list");
      }
      lx.expect(";");
      instDecls.push_back(std::move(inst));
    }
  }
  if (!sawEnd)
    lx.fail("missing endmodule", DiagCode::kVerilogMissingEndmodule);

  // Second pass: materialize the netlist through the alias roots.
  Netlist nl(lib);
  std::map<std::string, NetId> nets;
  auto netFor = [&](const std::string& name) -> NetId {
    const std::string root = find(name);
    auto it = nets.find(root);
    if (it != nets.end()) return it->second;
    const NetId n = nl.addNet(root);
    nets[root] = n;
    return n;
  };
  const int errorsBefore = sink.errorCount();
  std::set<std::string> seenNames;
  for (const auto& pd : portDecls) {
    if (!seenNames.insert(pd.name).second)
      sink.warn(DiagCode::kVerilogDuplicateName, "port re-declared", pd.name,
                pd.line);
    const PortId p = nl.addPort(pd.name, pd.isInput);
    const NetId n = netFor(pd.name);
    // Several ports may share a net through assigns; only the first input
    // port drives it.
    if (pd.isInput && nl.net(n).driverPort >= 0) continue;
    if (Status s = nl.tryConnectPortToNet(p, n); !s.ok())
      sink.error(s.code(), s.message(), pd.name, pd.line);
  }
  for (const auto& id : instDecls) {
    const Cell& cell = lib->cell(id.cellIndex);
    if (!seenNames.insert(id.name).second)
      sink.warn(DiagCode::kVerilogDuplicateName, "instance name reused",
                id.name, id.line);
    InstId inst = -1;
    if (Status s = nl.tryAddInstance(id.name, id.cellIndex, &inst);
        !s.ok()) {
      sink.error(s.code(), s.message(), id.name, id.line);
      continue;
    }
    for (const auto& [pin, netName] : id.conns) {
      const NetId n = netFor(netName);
      if (pin == "Y" || pin == "Q") {
        if (Status s = nl.tryConnectOutput(inst, n); !s.ok())
          sink.error(s.code() == DiagCode::kNetDoubleDriver
                         ? DiagCode::kVerilogDoubleDriver
                         : s.code(),
                     s.message(), id.name, id.line);
      } else {
        int pinIdx = -1;
        for (int k = 0; k < cell.numInputs; ++k)
          if (pinName(cell, k) == pin) pinIdx = k;
        if (pinIdx < 0) {
          sink.error(DiagCode::kVerilogUnknownPin,
                     "cell " + cell.name + " has no pin '" + pin + "'",
                     id.name, id.line);
          continue;
        }
        if (Status s = nl.tryConnectInput(inst, pinIdx, n); !s.ok())
          sink.error(s.code(), s.message(), id.name, id.line);
      }
    }
  }
  if (sink.errorCount() != errorsBefore)
    return Status::failure(DiagCode::kVerilogSyntax,
                           "netlist construction rejected (see diagnostics)");
  return nl;
}

}  // namespace

}  // namespace tc
