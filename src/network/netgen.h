#pragma once
/// \file netgen.h
/// \brief Synthetic netlist generation.
///
/// The paper's exhibits are measured on production circuits we do not have
/// (ISCAS c5315/c7552, AES, MPEG2, SoC blocks). What those exhibits depend
/// on is the *statistics* of the circuits — path depth distribution, fanout
/// distribution, register counts — so the generator here produces random
/// logic blocks matched to published gate/flop/depth profiles, plus simple
/// pipelines for controlled experiments and a buffered clock tree.

#include <cstdint>
#include <memory>
#include <string>

#include "network/netlist.h"

namespace tc {

/// Statistical profile of a block to generate.
struct BlockProfile {
  std::string name = "block";
  int numGates = 2000;
  int numFlops = 150;
  int numInputs = 40;
  int numOutputs = 40;
  int levels = 20;            ///< combinational depth budget
  double fanoutSkew = 0.12;   ///< fraction of nets with high fanout
  int clockFanoutPerLeaf = 16;
  Ps clockPeriod = 900.0;
  Ps clockJitter = 25.0;
  std::uint64_t seed = 1;
};

/// Profiles roughly matched to the circuits of the paper's Fig. 9
/// (gate counts and depths from the published benchmarks; flops added to
/// register the combinational ISCAS cores).
BlockProfile profileC5315();
BlockProfile profileC7552();
BlockProfile profileAes();
BlockProfile profileMpeg2();
/// A small block for fast unit tests.
BlockProfile profileTiny();

/// A profile scaled to approximately `targetInstances` total instances
/// (gates + flops + clock-tree buffers), for the 10k -> 100k -> 1M scale
/// ladder in bench_sta_scale. Depth grows slowly with size so levels stay
/// wide — the shape that stresses per-level sweep throughput rather than
/// level count.
BlockProfile profileScaled(int targetInstances, std::uint64_t seed = 97);

/// Generate a random logic block per the profile. All instances start as
/// X1/X2 SVT; the closure optimizer retargets them. The clock tree is built
/// from BUF cells and marked (isClockTreeBuffer).
Netlist generateBlock(std::shared_ptr<const Library> lib,
                      const BlockProfile& profile);

/// Generate a linear pipeline: launch flop -> `depth` gates -> capture flop,
/// replicated `lanes` times, sharing one clock. Used by the Fig. 7 Monte
/// Carlo study and by unit tests that need hand-analyzable topologies.
Netlist generatePipeline(std::shared_ptr<const Library> lib, int lanes,
                         int depth, Ps clockPeriod = 800.0,
                         std::uint64_t seed = 1);

}  // namespace tc
