#include "network/netgen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"
#include "util/trace.h"

namespace tc {

BlockProfile profileC5315() {
  BlockProfile p;
  p.name = "c5315";
  p.numGates = 2300;
  p.numFlops = 178;
  p.numInputs = 60;
  p.numOutputs = 60;
  p.levels = 26;
  p.clockPeriod = 1100.0;
  p.seed = 5315;
  return p;
}

BlockProfile profileC7552() {
  BlockProfile p;
  p.name = "c7552";
  p.numGates = 3500;
  p.numFlops = 250;
  p.numInputs = 80;
  p.numOutputs = 60;
  p.levels = 30;
  p.clockPeriod = 1200.0;
  p.seed = 7552;
  return p;
}

BlockProfile profileAes() {
  BlockProfile p;
  p.name = "AES";
  p.numGates = 9000;
  p.numFlops = 530;
  p.numInputs = 128;
  p.numOutputs = 128;
  p.levels = 18;
  p.clockPeriod = 800.0;
  p.seed = 0xAE5;
  return p;
}

BlockProfile profileMpeg2() {
  BlockProfile p;
  p.name = "MPEG2";
  p.numGates = 7000;
  p.numFlops = 640;
  p.numInputs = 96;
  p.numOutputs = 96;
  p.levels = 14;
  p.clockPeriod = 750.0;
  p.seed = 0x3E62;
  return p;
}

BlockProfile profileTiny() {
  BlockProfile p;
  p.name = "tiny";
  p.numGates = 160;
  p.numFlops = 24;
  p.numInputs = 10;
  p.numOutputs = 10;
  p.levels = 8;
  p.clockPeriod = 900.0;
  p.seed = 42;
  return p;
}

BlockProfile profileScaled(int targetInstances, std::uint64_t seed) {
  BlockProfile p;
  p.name = "scaled_" + std::to_string(targetInstances);
  // Instance budget: ~10% flops, the clock tree adds roughly one buffer
  // per 12 flops (16-flop leaves plus a branching-4 upper tree), and the
  // gates take the rest. The generator reports actual counts; the bench
  // records them, so the split only needs to land near the target.
  p.numFlops = std::max(targetInstances / 10, 8);
  p.numGates =
      std::max(targetInstances - p.numFlops - p.numFlops / 12, 64);
  p.numInputs = std::min(512, std::max(32, targetInstances / 256));
  p.numOutputs = p.numInputs;
  // Depth grows one stage-bundle per decade past 10k: wide levels are what
  // the per-level sweep throughput measurement needs.
  int levels = 22;
  for (int t = targetInstances; t > 20000; t /= 10) levels += 6;
  p.levels = levels;
  p.clockPeriod = 1000.0;
  p.seed = seed;
  return p;
}

namespace {

/// Random gate footprint with a realistic mix.
std::string randomFootprint(Rng& rng) {
  const double r = rng.uniform();
  if (r < 0.30) return "NAND2";
  if (r < 0.48) return "NOR2";
  if (r < 0.62) return "INV";
  if (r < 0.72) return "NAND3";
  if (r < 0.80) return "NOR3";
  if (r < 0.90) return "AOI21";
  return "OAI21";
}

int pickCell(const Library& lib, const std::string& footprint, Rng& rng) {
  const int drive = rng.chance(0.35) ? 2 : 1;
  const int idx = lib.variant(footprint, VtClass::kSvt, drive);
  if (idx < 0) throw std::logic_error("library lacks " + footprint);
  return idx;
}

/// Build a buffered clock tree over the flop CK pins.
void buildClockTree(Netlist& nl, const std::vector<InstId>& flops,
                    int fanoutPerLeaf, Ps period, Ps jitter) {
  const Library& lib = nl.library();
  const int bufCell = lib.variant("BUF", VtClass::kSvt, 4);
  const PortId clkPort = nl.addPort("clk", true);
  const NetId rootNet = nl.addNet("clk");
  nl.connectPortToNet(clkPort, rootNet);
  nl.defineClock({"clk", clkPort, period, jitter, 0.0});

  // Leaf level: one buffer per `fanoutPerLeaf` flops.
  std::vector<NetId> level;  // nets that need a driver from the level above
  const int nLeaves =
      std::max(1, (static_cast<int>(flops.size()) + fanoutPerLeaf - 1) /
                      fanoutPerLeaf);
  std::vector<InstId> leaves;
  for (int l = 0; l < nLeaves; ++l) {
    const InstId buf =
        nl.addInstance("ckbuf_leaf" + std::to_string(l), bufCell);
    nl.instance(buf).isClockTreeBuffer = true;
    const NetId out = nl.addNet("cknet_leaf" + std::to_string(l));
    nl.connectOutput(buf, out);
    leaves.push_back(buf);
    for (int f = l * fanoutPerLeaf;
         f < std::min((l + 1) * fanoutPerLeaf, static_cast<int>(flops.size()));
         ++f) {
      nl.connectInput(flops[static_cast<std::size_t>(f)], 1, out);  // CK pin
    }
  }
  // Upper levels: branching factor 4 down to a single root buffer.
  std::vector<InstId> current = leaves;
  int levelIdx = 0;
  while (current.size() > 1) {
    std::vector<InstId> next;
    for (std::size_t i = 0; i < current.size(); i += 4) {
      const InstId buf = nl.addInstance(
          "ckbuf_l" + std::to_string(levelIdx) + "_" + std::to_string(i / 4),
          bufCell);
      nl.instance(buf).isClockTreeBuffer = true;
      const NetId out = nl.addNet("cknet_l" + std::to_string(levelIdx) + "_" +
                                  std::to_string(i / 4));
      nl.connectOutput(buf, out);
      for (std::size_t j = i; j < std::min(i + 4, current.size()); ++j)
        nl.connectInput(current[j], 0, out);
      next.push_back(buf);
    }
    current = std::move(next);
    ++levelIdx;
  }
  nl.connectInput(current[0], 0, rootNet);
}

}  // namespace

Netlist generateBlock(std::shared_ptr<const Library> lib,
                      const BlockProfile& profile) {
  TraceSpan span("netgen", "block_" + profile.name);
  Rng rng(profile.seed);
  Netlist nl(lib);
  const Library& L = *lib;

  // Primary data inputs.
  std::vector<NetId> sources;  // nets usable as gate inputs, per level pool
  std::vector<int> sourceLevel;
  for (int i = 0; i < profile.numInputs; ++i) {
    const PortId p = nl.addPort("in" + std::to_string(i), true);
    const NetId n = nl.addNet("nin" + std::to_string(i));
    nl.connectPortToNet(p, n);
    sources.push_back(n);
    sourceLevel.push_back(0);
  }

  // Flops (Q nets join the level-0 pool; D/CK wired later).
  const int dffCell = L.variant("DFF", VtClass::kSvt, 1);
  std::vector<InstId> flops;
  for (int i = 0; i < profile.numFlops; ++i) {
    const InstId f = nl.addInstance("reg" + std::to_string(i), dffCell);
    const NetId q = nl.addNet("q" + std::to_string(i));
    nl.connectOutput(f, q);
    flops.push_back(f);
    sources.push_back(q);
    sourceLevel.push_back(0);
  }

  // Combinational cloud, level by level.
  const int perLevel = std::max(profile.numGates / profile.levels, 1);
  std::vector<NetId> gateOutputs;
  int gateCount = 0;
  for (int lvl = 1; lvl <= profile.levels && gateCount < profile.numGates;
       ++lvl) {
    const int want = (lvl == profile.levels)
                         ? profile.numGates - gateCount
                         : perLevel;
    for (int g = 0; g < want; ++g) {
      const int cellIdx = pickCell(L, randomFootprint(rng), rng);
      const Cell& cell = L.cell(cellIdx);
      const InstId inst =
          nl.addInstance("u" + std::to_string(gateCount), cellIdx);
      for (int pin = 0; pin < cell.numInputs; ++pin) {
        // Bias input selection toward the immediately preceding level so the
        // depth budget is actually consumed; occasionally reach far back
        // (reconvergence / high-fanout nets).
        NetId chosen = -1;
        for (int attempt = 0; attempt < 8 && chosen < 0; ++attempt) {
          const std::size_t idx = rng.below(sources.size());
          const int slvl = sourceLevel[idx];
          if (slvl == lvl - 1 || rng.chance(0.25) ||
              (rng.chance(profile.fanoutSkew) && slvl < lvl)) {
            if (slvl < lvl) chosen = sources[idx];
          }
        }
        if (chosen < 0) {
          // Fall back to any shallower source.
          for (std::size_t k = 0; k < sources.size(); ++k) {
            const std::size_t idx = rng.below(sources.size());
            if (sourceLevel[idx] < lvl) {
              chosen = sources[idx];
              break;
            }
            (void)k;
          }
        }
        if (chosen < 0) chosen = sources[0];
        nl.connectInput(inst, pin, chosen);
      }
      const NetId out = nl.addNet("n" + std::to_string(gateCount));
      nl.connectOutput(inst, out);
      sources.push_back(out);
      sourceLevel.push_back(lvl);
      gateOutputs.push_back(out);
      ++gateCount;
    }
  }

  // Flop D pins: capture from the deeper half of the cloud.
  for (InstId f : flops) {
    const std::size_t lo = gateOutputs.size() / 2;
    const NetId d = gateOutputs[lo + rng.below(gateOutputs.size() - lo)];
    nl.connectInput(f, 0, d);
  }

  // Primary outputs on random gate outputs.
  for (int i = 0; i < profile.numOutputs; ++i) {
    const PortId p = nl.addPort("out" + std::to_string(i), false);
    const NetId n = gateOutputs[rng.below(gateOutputs.size())];
    nl.connectPortToNet(p, n);
  }
  // Tie any unloaded nets to overflow POs so the netlist validates.
  int overflow = 0;
  for (NetId n = 0; n < nl.netCount(); ++n) {
    if (nl.net(n).sinks.empty() && nl.net(n).loadPort < 0) {
      const PortId p =
          nl.addPort("ovf" + std::to_string(overflow++), false);
      nl.connectPortToNet(p, n);
    }
  }

  buildClockTree(nl, flops, profile.clockFanoutPerLeaf, profile.clockPeriod,
                 profile.clockJitter);
  nl.validate();
  return nl;
}

Netlist generatePipeline(std::shared_ptr<const Library> lib, int lanes,
                         int depth, Ps clockPeriod, std::uint64_t seed) {
  TC_SPAN("netgen", "pipeline");
  Rng rng(seed);
  Netlist nl(lib);
  const Library& L = *lib;
  const int dffCell = L.variant("DFF", VtClass::kSvt, 1);

  std::vector<InstId> flops;
  for (int lane = 0; lane < lanes; ++lane) {
    const InstId launch =
        nl.addInstance("launch" + std::to_string(lane), dffCell);
    const NetId q = nl.addNet("lq" + std::to_string(lane));
    nl.connectOutput(launch, q);
    flops.push_back(launch);
    // Feed the launch flop's D from a primary input.
    const PortId di = nl.addPort("di" + std::to_string(lane), true);
    const NetId dn = nl.addNet("ndi" + std::to_string(lane));
    nl.connectPortToNet(di, dn);
    nl.connectInput(launch, 0, dn);

    NetId prev = q;
    for (int d = 0; d < depth; ++d) {
      const std::string fp = d % 3 == 0 ? "INV" : (d % 3 == 1 ? "NAND2" : "NOR2");
      const int cellIdx = pickCell(L, fp, rng);
      const Cell& cell = L.cell(cellIdx);
      const InstId g = nl.addInstance(
          "g" + std::to_string(lane) + "_" + std::to_string(d), cellIdx);
      nl.connectInput(g, 0, prev);
      // Side inputs tied off (case analysis excludes them from timing).
      for (int pin = 1; pin < cell.numInputs; ++pin) {
        const PortId p = nl.addPort(
            "tie" + std::to_string(lane) + "_" + std::to_string(d) + "_" +
                std::to_string(pin),
            true);
        nl.port(p).constant = true;
        const NetId tie = nl.addNet("ntie" + std::to_string(lane) + "_" +
                                    std::to_string(d) + "_" +
                                    std::to_string(pin));
        nl.connectPortToNet(p, tie);
        nl.connectInput(g, pin, tie);
      }
      const NetId out =
          nl.addNet("w" + std::to_string(lane) + "_" + std::to_string(d));
      nl.connectOutput(g, out);
      prev = out;
    }

    const InstId capture =
        nl.addInstance("capture" + std::to_string(lane), dffCell);
    nl.connectInput(capture, 0, prev);
    flops.push_back(capture);
    const NetId cq = nl.addNet("cq" + std::to_string(lane));
    nl.connectOutput(capture, cq);
    const PortId po = nl.addPort("po" + std::to_string(lane), false);
    nl.connectPortToNet(po, cq);
  }

  buildClockTree(nl, flops, 8, clockPeriod, 25.0);
  nl.validate();
  return nl;
}

}  // namespace tc
