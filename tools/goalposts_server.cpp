/// \file goalposts_server.cpp
/// \brief Timing-signoff-as-a-service daemon (see src/serve/server.h).
///
/// Loads one or more designs — DesignSnapshot files (--preload) and/or
/// generated blocks (--gen) — builds their epoch-0 timing state, then
/// serves line-delimited-JSON queries and ECO transactions over TCP until
/// SIGINT/SIGTERM or a `shutdown` command.
///
///   goalposts_server --gen tiny=tiny:1 --port-file /tmp/port
///                    --engine-threads 4 --trace server.trace.json
///
/// Exit codes: 0 clean shutdown, 2 bad arguments, 3 a design failed to
/// load.

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "liberty/builder.h"
#include "network/netgen.h"
#include "serve/server.h"
#include "signoff/snapshot.h"
#include "util/trace.h"

namespace {

tc::serve::Server* gServer = nullptr;

void onSignal(int) {
  if (gServer) gServer->requestStop();  // atomic + self-pipe: signal-safe
}

/// The tool's standard corner pair: typical signoff + the slow-cold AOCV
/// corner. Generated designs get a fixed scenario set so a given
/// --gen spec always produces the same served timing state.
std::vector<tc::Scenario> defaultScenarios() {
  using namespace tc;
  std::vector<Scenario> out;
  {
    Scenario s;
    s.name = "func_tt";
    s.lib = characterizedLibrary(LibraryPvt{ProcessCorner::kTT, 0.9, 25.0},
                                 /*quick=*/true);
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "func_ssg_cw";
    s.lib = characterizedLibrary(LibraryPvt{ProcessCorner::kSSG, 0.81, 125.0},
                                 /*quick=*/true);
    s.beol = BeolCorner::kCworst;
    s.derate.mode = DerateMode::kAocv;
    out.push_back(s);
  }
  return out;
}

tc::BlockProfile profileByName(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "tiny") return tc::profileTiny();
  if (name == "c5315") return tc::profileC5315();
  if (name == "c7552") return tc::profileC7552();
  if (name == "aes") return tc::profileAes();
  if (name == "mpeg2") return tc::profileMpeg2();
  *ok = false;
  return tc::profileTiny();
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--port-file PATH] [--host ADDR]\n"
      "          [--preload NAME=SNAPSHOT] [--gen NAME=PROFILE[:SEED]]\n"
      "          [--engine-threads N] [--max-clients N] [--trace FILE]\n"
      "profiles: tiny c5315 c7552 aes mpeg2\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  tc::serve::ServeOptions opt;
  std::vector<std::pair<std::string, std::string>> preloads;  // name, path
  std::vector<std::pair<std::string, std::string>> gens;      // name, spec
  std::string traceFile;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      opt.port = std::atoi(value("--port"));
    } else if (arg == "--port-file") {
      opt.portFile = value("--port-file");
    } else if (arg == "--host") {
      opt.host = value("--host");
    } else if (arg == "--engine-threads") {
      opt.engineThreads = std::atoi(value("--engine-threads"));
    } else if (arg == "--max-clients") {
      opt.maxClients = std::atoi(value("--max-clients"));
    } else if (arg == "--trace") {
      traceFile = value("--trace");
    } else if (arg == "--preload" || arg == "--gen") {
      const std::string spec = value(arg.c_str());
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "%s wants NAME=..., got %s\n", arg.c_str(),
                     spec.c_str());
        return 2;
      }
      auto& dst = (arg == "--preload") ? preloads : gens;
      dst.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else {
      return usage(argv[0]);
    }
  }
  if (preloads.empty() && gens.empty()) {
    std::fprintf(stderr, "nothing to serve: give --preload or --gen\n");
    return usage(argv[0]);
  }

  if (!traceFile.empty()) tc::traceSetEnabled(true);

  tc::serve::Server server(opt);

  for (const auto& [name, path] : preloads) {
    auto snap = tc::readSnapshotFile(path, nullptr);
    if (!snap.ok()) {
      std::fprintf(stderr, "load %s (%s): %s\n", name.c_str(), path.c_str(),
                   snap.status().message().c_str());
      return 3;
    }
    tc::Status st = server.addDesign(name, std::move(snap.value()));
    if (!st.ok()) {
      std::fprintf(stderr, "serve %s: %s\n", name.c_str(),
                   st.message().c_str());
      return 3;
    }
    std::fprintf(stderr, "loaded %s from %s\n", name.c_str(), path.c_str());
  }
  for (const auto& [name, spec] : gens) {
    std::string profName = spec;
    std::uint64_t seed = 1;
    const std::size_t colon = spec.find(':');
    if (colon != std::string::npos) {
      profName = spec.substr(0, colon);
      seed = std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
    }
    bool ok = false;
    tc::BlockProfile prof = profileByName(profName, &ok);
    if (!ok) {
      std::fprintf(stderr, "unknown profile %s\n", profName.c_str());
      return 2;
    }
    prof.seed = seed;
    std::vector<tc::Scenario> scenarios = defaultScenarios();
    tc::Netlist nl = tc::generateBlock(scenarios[0].lib, prof);
    tc::Status st = server.addDesign(
        name, tc::makeSnapshot(nl, std::move(scenarios),
                               /*includeSpef=*/false));
    if (!st.ok()) {
      std::fprintf(stderr, "serve %s: %s\n", name.c_str(),
                   st.message().c_str());
      return 3;
    }
    std::fprintf(stderr, "generated %s (profile %s, seed %llu)\n",
                 name.c_str(), profName.c_str(),
                 static_cast<unsigned long long>(seed));
  }

  auto port = server.start();
  if (!port.ok()) {
    std::fprintf(stderr, "start: %s\n", port.status().message().c_str());
    return 3;
  }
  std::fprintf(stderr, "goalposts_server listening on %s:%d\n",
               opt.host.c_str(), port.value());

  gServer = &server;
  ::signal(SIGINT, onSignal);
  ::signal(SIGTERM, onSignal);

  server.wait();
  server.stop();
  gServer = nullptr;

  if (!traceFile.empty()) {
    if (!tc::traceExportChrome(traceFile))
      std::fprintf(stderr, "trace export to %s failed\n", traceFile.c_str());
  }
  std::fprintf(stderr, "goalposts_server stopped\n");
  return 0;
}
