#!/usr/bin/env bash
# Summarize one CI job's build telemetry: ccache hit rate and job wall
# clock. Usage: ci_telemetry.sh <job-label> <output-md>.
#
# Reads TC_JOB_T0 (epoch seconds, stamped by the job's first step) for
# the wall clock and `ccache --print-stats` for the hit rate; falls back
# gracefully when either is missing so the step never fails a job. The
# summary is written to <output-md> (uploaded as an artifact) and
# appended to GITHUB_STEP_SUMMARY so hit-rate regressions — a stale
# cache key, a header churn blow-up — are visible on the run page
# without downloading anything.
#
# When TC_LIB_CACHE_DIR is set (the perf-gate job restores it via
# actions/cache), the summary also reports the characterization disk
# cache: entries and bytes now, and — if TC_CHAR_CACHE_PREWARM was
# stamped right after the restore — how many entries this run added.
# Prewarm == final means every characterizedLibrary() call was a warm
# disk hit; a jump back to 0 prewarm is the cold-start cost returning
# (key churn from a Liberty/device change, or an evicted cache).
set -u

job="${1:?usage: ci_telemetry.sh <job-label> <output-md>}"
out="${2:?usage: ci_telemetry.sh <job-label> <output-md>}"

now=$(date +%s)
wall=""
if [ -n "${TC_JOB_T0:-}" ]; then
  wall=$((now - TC_JOB_T0))
fi

hits=""
misses=""
if command -v ccache >/dev/null 2>&1; then
  # ccache >= 4.0 ships the machine-readable tab-separated form.
  stats=$(ccache --print-stats 2>/dev/null || true)
  if [ -n "$stats" ]; then
    hits=$(printf '%s\n' "$stats" | awk -F'\t' \
      '$1 == "direct_cache_hit" || $1 == "preprocessed_cache_hit" {s += $2}
       END {print s + 0}')
    misses=$(printf '%s\n' "$stats" | awk -F'\t' \
      '$1 == "cache_miss" {s += $2} END {print s + 0}')
  fi
fi

{
  echo "### Build telemetry: ${job}"
  if [ -n "$wall" ]; then
    echo "- job wall clock: ${wall}s"
  else
    echo "- job wall clock: unknown (TC_JOB_T0 unset)"
  fi
  if [ -n "$hits" ]; then
    total=$((hits + misses))
    if [ "$total" -gt 0 ]; then
      rate=$(awk -v h="$hits" -v t="$total" \
        'BEGIN {printf "%.1f", 100 * h / t}')
    else
      rate="0.0"
    fi
    echo "- ccache: ${hits} hits / ${misses} misses (${rate}% hit rate)"
  else
    echo "- ccache: unavailable"
  fi
  if [ -n "${TC_LIB_CACHE_DIR:-}" ] && [ -d "${TC_LIB_CACHE_DIR}" ]; then
    libs=$(find "${TC_LIB_CACHE_DIR}" -name '*.tclib' | wc -l)
    bytes=$(find "${TC_LIB_CACHE_DIR}" -name '*.tclib' -printf '%s\n' \
      2>/dev/null | awk '{s += $1} END {print s + 0}')
    line="- char cache: ${libs} entries, ${bytes} bytes"
    if [ -n "${TC_CHAR_CACHE_PREWARM:-}" ]; then
      added=$((libs - TC_CHAR_CACHE_PREWARM))
      if [ "${TC_CHAR_CACHE_PREWARM}" -eq 0 ]; then
        line="${line} (cold start: all ${added} built this run)"
      elif [ "$added" -gt 0 ]; then
        line="${line} (warm: ${TC_CHAR_CACHE_PREWARM} restored, ${added} built this run)"
      else
        line="${line} (warm: all restored, 0 built this run)"
      fi
    fi
    echo "$line"
  fi
} > "$out"

cat "$out"
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
  cat "$out" >> "$GITHUB_STEP_SUMMARY"
fi
