/// \file goalposts_worker.cpp
/// \brief Scenario-farm worker process (see src/signoff/farm.h).
///
/// Loads a DesignSnapshot, runs ONE scenario through the exact per-scenario
/// body the in-process MCMM runner uses (runScenarioStandalone), and
/// streams the encoded ScenarioResult back over stdout as a checksummed
/// frame, with heartbeat frames from a side thread while the analysis
/// runs. Exit codes: 0 ok, 2 bad arguments, 3 snapshot unloadable,
/// 4 scenario index out of range.
///
/// Fault injection (TC_FARM_FAULT): the dispatcher's crash-isolation
/// claims are only worth what the fault matrix that exercises them covers,
/// so the worker can sabotage itself on demand:
///
///   TC_FARM_FAULT="<kind>@<point>[:scn=<i>][:attempt=<n>][:name=<substr>]"
///
/// Process kinds (points: load / run / stream — before loading the
/// snapshot, before running the engine, before streaming the result):
///   abort    call std::abort()
///   sigkill  raise(SIGKILL) — no exit handlers, like an OOM kill
///   hang     stop heartbeating and freeze forever (hang detection)
///   sleep    keep heartbeating but stall TC_FARM_FAULT_SLEEP_MS
///            (default 2000) — wall-clock timeouts and stragglers
/// Frame kinds (points: header / payload / crc — which region of the
/// result frame gets damaged):
///   truncate cut the frame short inside the region
///   bitflip  flip one bit inside the region
/// And one protocol kind (point: stream):
///   dupframe send the result frame twice (duplicate-result dedup)
///
/// The scn/attempt filters confine the fault to one scenario index and/or
/// attempt number, so a test can poison exactly one corner, or fail
/// attempt 1 and let the retry succeed. Straggler re-dispatch copies run
/// in the 100+ attempt namespace and never match an attempt filter.
/// The name filter matches a substring of the scenario's NAME instead of
/// its snapshot index — the corner pruner dispatches batches as
/// sub-snapshots whose indices are batch-local, so name is the only stable
/// way to poison one specific corner under pruning. It cannot match at the
/// "load" point (the snapshot is not loaded yet).

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>

#include "signoff/corners.h"
#include "signoff/farm.h"
#include "signoff/snapshot.h"

namespace {

using tc::farmproto::FrameType;

struct FaultSpec {
  std::string kind;
  std::string point;
  int scn = -1;
  int attempt = -1;
  std::string nameSub;
  bool active = false;

  bool matches(const std::string& p, int scenario, int att,
               const std::string& scenarioName) const {
    if (!active || point != p) return false;
    if (scn >= 0 && scn != scenario) return false;
    if (attempt >= 0 && attempt != att) return false;
    if (!nameSub.empty() &&
        scenarioName.find(nameSub) == std::string::npos)
      return false;
    return true;
  }
};

FaultSpec parseFault(const char* env) {
  FaultSpec f;
  if (!env || !*env) return f;
  std::string s(env);
  const std::size_t at = s.find('@');
  if (at == std::string::npos) return f;
  f.kind = s.substr(0, at);
  std::string rest = s.substr(at + 1);
  std::size_t colon;
  while ((colon = rest.rfind(':')) != std::string::npos) {
    const std::string filter = rest.substr(colon + 1);
    rest.resize(colon);
    if (filter.rfind("scn=", 0) == 0)
      f.scn = std::atoi(filter.c_str() + 4);
    else if (filter.rfind("attempt=", 0) == 0)
      f.attempt = std::atoi(filter.c_str() + 8);
    else if (filter.rfind("name=", 0) == 0)
      f.nameSub = filter.substr(5);
  }
  f.point = rest;
  f.active = !f.kind.empty() && !f.point.empty();
  return f;
}

// Frames from the heartbeat thread and the main thread interleave at frame
// granularity, never byte granularity.
std::mutex gWriteMu;

void writeAll(const std::string& bytes) {
  std::lock_guard<std::mutex> lock(gWriteMu);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        write(STDOUT_FILENO, bytes.data() + off, bytes.size() - off);
    if (n <= 0) {
      if (errno == EINTR) continue;
      _exit(1);  // dispatcher hung up; nothing useful left to do
    }
    off += static_cast<std::size_t>(n);
  }
}

class Heartbeat {
 public:
  explicit Heartbeat(int periodMs) : periodMs_(periodMs) {
    if (periodMs_ > 0) thread_ = std::thread([this] { loop(); });
  }
  ~Heartbeat() { stop(); }
  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (done_) return;
      done_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void loop() {
    const std::string frame =
        tc::farmproto::encodeFrame(FrameType::kHeartbeat, "");
    std::unique_lock<std::mutex> lock(mu_);
    while (!done_) {
      lock.unlock();
      writeAll(frame);
      lock.lock();
      cv_.wait_for(lock, std::chrono::milliseconds(periodMs_),
                   [this] { return done_; });
    }
  }

  int periodMs_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

[[noreturn]] void freezeForever() {
  for (;;) pause();
}

/// Process-level fault points. `hb` may be null (not started yet).
void enactProcessFault(const FaultSpec& fault, const std::string& point,
                       int scn, int attempt, const std::string& name,
                       Heartbeat* hb) {
  if (!fault.matches(point, scn, attempt, name)) return;
  if (fault.kind == "abort") std::abort();
  if (fault.kind == "sigkill") {
    raise(SIGKILL);
  } else if (fault.kind == "hang") {
    if (hb) hb->stop();  // silent freeze: heartbeat detection territory
    freezeForever();
  } else if (fault.kind == "sleep") {
    const char* ms = std::getenv("TC_FARM_FAULT_SLEEP_MS");
    usleep(1000u * static_cast<unsigned>(ms && *ms ? std::atoi(ms) : 2000));
  }
}

/// Frame-level fault points: damage the encoded result frame.
/// Layout: [header 12B][payload][crc 4B].
std::string damageFrame(const FaultSpec& fault, std::string frame, int scn,
                        int attempt, const std::string& name) {
  const std::size_t payloadLen = frame.size() - 16;
  struct Region {
    const char* name;
    std::size_t begin, end;
  };
  const Region regions[] = {
      {"header", 0, 12},
      {"payload", 12, 12 + payloadLen},
      {"crc", 12 + payloadLen, frame.size()},
  };
  for (const Region& r : regions) {
    if (!fault.matches(r.name, scn, attempt, name)) continue;
    const std::size_t mid = r.begin + (r.end - r.begin) / 2;
    if (fault.kind == "truncate")
      frame.resize(mid);
    else if (fault.kind == "bitflip")
      frame[mid] = static_cast<char>(frame[mid] ^ 0x10);
  }
  return frame;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --snapshot <file> --scenario <index> [--attempt <n>]"
               " [--heartbeat-ms <ms>] [--pba-endpoints <n>]"
               " [--pba-max-paths <n>] [--pba-epsilon <ps>]"
               " [--pba-enum-cap <n>] [--pba-exhaustive]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string snapPath;
  int scenario = -1, attempt = 1, heartbeatMs = 100;
  tc::McmmOptions mcmm;
  mcmm.pool = nullptr;
  mcmm.intraScenario = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--snapshot") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      snapPath = v;
    } else if (arg == "--scenario") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      scenario = std::atoi(v);
    } else if (arg == "--attempt") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      attempt = std::atoi(v);
    } else if (arg == "--heartbeat-ms") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      heartbeatMs = std::atoi(v);
    } else if (arg == "--pba-endpoints") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      mcmm.pbaEndpoints = std::atoi(v);
    } else if (arg == "--pba-max-paths") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      mcmm.pba.maxPaths = std::atoi(v);
    } else if (arg == "--pba-epsilon") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      mcmm.pba.epsilon = std::atof(v);
    } else if (arg == "--pba-enum-cap") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      mcmm.pba.enumerationCap = std::atoi(v);
    } else if (arg == "--pba-exhaustive") {
      mcmm.pba.exhaustive = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (snapPath.empty() || scenario < 0) return usage(argv[0]);

  const FaultSpec fault = parseFault(std::getenv("TC_FARM_FAULT"));
  enactProcessFault(fault, "load", scenario, attempt, /*name=*/"", nullptr);

  tc::DiagnosticSink loadSink;
  auto snap = tc::readSnapshotFile(snapPath, &loadSink);
  if (!snap.ok()) {
    std::cerr << "goalposts_worker: snapshot load failed: "
              << snap.status().str() << "\n";
    return 3;
  }
  if (static_cast<std::size_t>(scenario) >= snap->scenarios.size()) {
    std::cerr << "goalposts_worker: scenario index " << scenario
              << " out of range (" << snap->scenarios.size()
              << " scenarios)\n";
    return 4;
  }

  const std::string scenarioName =
      snap->scenarios[static_cast<std::size_t>(scenario)].name;
  Heartbeat hb(heartbeatMs);
  enactProcessFault(fault, "run", scenario, attempt, scenarioName, &hb);

  tc::DiagnosticSink sink;
  const tc::ScenarioResult result = tc::runScenarioStandalone(
      *snap->netlist,
      snap->scenarios[static_cast<std::size_t>(scenario)], mcmm, sink);

  enactProcessFault(fault, "stream", scenario, attempt, scenarioName, &hb);
  std::string frame = tc::farmproto::encodeFrame(
      FrameType::kResult, tc::farmproto::encodeScenarioResult(result));
  frame = damageFrame(fault, std::move(frame), scenario, attempt,
                      scenarioName);
  if (fault.kind == "dupframe" &&
      fault.matches("stream", scenario, attempt, scenarioName))
    frame += frame;
  writeAll(frame);
  hb.stop();
  return 0;
}
