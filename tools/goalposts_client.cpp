/// \file goalposts_client.cpp
/// \brief Command-line client for the goalposts-server.
///
/// Sends requests from --cmd (one JSON object) or --script (a file of one
/// request per line; '#' comments and blank lines skipped) and prints
/// every response line to stdout. With --expect-ok the exit code reports
/// protocol health, which is what the CI server-integration job keys on.
///
///   goalposts_client --port-file /tmp/port --script drive.script --expect-ok
///
/// Exit codes: 0 ok, 1 a terminal response had ok=false (under
/// --expect-ok), 2 bad arguments, 3 connection/transport failure.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host ADDR] [--port N | --port-file PATH]\n"
               "          [--script FILE | --cmd JSON]... [--expect-ok]\n"
               "          [--connect-timeout MS]\n",
               argv0);
  return 2;
}

/// Poll for the server's port-file handshake (written tmp+rename, so a
/// successful parse is a complete port number).
int waitForPortFile(const std::string& path, int timeoutMs) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeoutMs);
  for (;;) {
    std::ifstream in(path);
    int port = 0;
    if (in && (in >> port) && port > 0) return port;
    if (std::chrono::steady_clock::now() >= deadline) return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string portFile;
  int port = 0;
  int connectTimeoutMs = 10000;
  bool expectOk = false;
  std::vector<std::string> requests;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = value("--host");
    } else if (arg == "--port") {
      port = std::atoi(value("--port"));
    } else if (arg == "--port-file") {
      portFile = value("--port-file");
    } else if (arg == "--connect-timeout") {
      connectTimeoutMs = std::atoi(value("--connect-timeout"));
    } else if (arg == "--expect-ok") {
      expectOk = true;
    } else if (arg == "--cmd") {
      requests.emplace_back(value("--cmd"));
    } else if (arg == "--script") {
      const char* path = value("--script");
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "cannot read script %s\n", path);
        return 2;
      }
      std::string line;
      while (std::getline(in, line)) {
        const std::size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos || line[first] == '#') continue;
        requests.push_back(line);
      }
    } else {
      return usage(argv[0]);
    }
  }
  if (requests.empty()) {
    std::fprintf(stderr, "nothing to send: give --cmd or --script\n");
    return usage(argv[0]);
  }
  if (port <= 0 && !portFile.empty()) {
    port = waitForPortFile(portFile, connectTimeoutMs);
    if (port <= 0) {
      std::fprintf(stderr, "timed out waiting for port file %s\n",
                   portFile.c_str());
      return 3;
    }
  }
  if (port <= 0) {
    std::fprintf(stderr, "no port: give --port or --port-file\n");
    return usage(argv[0]);
  }

  tc::serve::ServeClient client;
  tc::Status st = client.connect(host, port, connectTimeoutMs);
  if (!st.ok()) {
    std::fprintf(stderr, "connect: %s\n", st.message().c_str());
    return 3;
  }

  bool sawFailure = false;
  for (const std::string& reqText : requests) {
    auto parsed = tc::Json::parse(reqText);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad request %s: %s\n", reqText.c_str(),
                   parsed.status().message().c_str());
      return 2;
    }
    auto responses = client.call(parsed.value());
    if (!responses.ok()) {
      std::fprintf(stderr, "transport: %s\n",
                   responses.status().message().c_str());
      return 3;
    }
    for (const tc::Json& r : responses.value())
      std::printf("%s\n", r.dump().c_str());
    if (!responses.value().back()["ok"].asBool(false)) sawFailure = true;
    // `shutdown`/`quit` close the conversation server-side; stop cleanly.
    const std::string& cmd = parsed.value()["cmd"].asString();
    if (cmd == "shutdown" || cmd == "quit") break;
  }
  std::fflush(stdout);
  return (expectOk && sawFailure) ? 1 : 0;
}
