#!/usr/bin/env python3
"""Compare bench JSON results against checked-in baselines for the CI perf gate.

Two input formats are understood, auto-detected per file:

  * the repo's flat bench_json.h format:
      {"bench": "...", "wall_ms": 12.3,
       "metrics": [{"name": "...", "value": 1.0, "unit": "ps"}, ...]}
  * google-benchmark's reporter output (bench_sta_perf):
      {"context": {...}, "benchmarks": [{"name": "...", "real_time": ...}]}

Gating rules:

  * Wall-time metrics (unit ms/us/ns/s, or *_ms names) are compared after
    machine-speed normalization: the median current/baseline ratio across
    *all* time metrics estimates how much faster or slower this runner is
    than the one that recorded the baselines, and each metric is gated on
    its ratio relative to that median. A metric whose normalized ratio
    exceeds 1 + threshold (default 15%) fails the gate.
  * Speedup-style metrics (unit "x") are derived from times and reported
    but never gated.
  * Counter metrics (unit "count", or a ctr_ name prefix — the stable
    observability counters bench_json.h folds in) are exact-match when
    present on both sides. A counter missing from the baseline (just
    landed) only warns, so instrumenting a new subsystem never breaks the
    gate before its baseline is refreshed. A baseline counter missing from
    the current run is a hard failure: a kStable counter that stops being
    emitted means the instrumentation (or the code path it counted)
    silently disappeared, which is exactly the regression the gate exists
    to catch.
  * Everything else is a correctness field (violation counts, WNS in ps,
    bit-identical flags, ...): any divergence beyond 1e-6 relative
    tolerance fails, regardless of threshold. null (a non-finite value
    serialized by bench_json.h) only matches null.

Exit status is nonzero on any failure; a markdown diff is written with
--output for CI artifact upload. Refresh baselines with --update after an
intentional performance or QoR change.
"""

from __future__ import annotations

import argparse
import json
import shutil
import statistics
import sys
from pathlib import Path

TIME_UNITS = {"s": 1000.0, "ms": 1.0, "us": 1e-3, "ns": 1e-6}
CORRECTNESS_RTOL = 1e-6


class MetricsLoadError(Exception):
    """A baseline or result file that cannot be read as bench JSON."""


def load_metrics(path: Path):
    """Return {metric_name: (value_in_canonical_unit, kind)} for one file.

    kind is "time" (milliseconds), "derived" (never gated), "counter"
    (exact when present on both sides, absence warns) or "correctness"
    (exact). value may be None for serialized non-finites.

    Raises MetricsLoadError (not a bare traceback) when the file is
    unreadable, not JSON, or not shaped like either supported format — a
    truncated artifact upload or a hand-edited baseline should fail the
    gate with a message naming the file, not crash the comparison.
    """
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        raise MetricsLoadError(f"{path}: cannot read: {e}") from e
    except json.JSONDecodeError as e:
        raise MetricsLoadError(f"{path}: malformed JSON: {e}") from e
    if not isinstance(data, dict):
        raise MetricsLoadError(
            f"{path}: top-level JSON value is {type(data).__name__}, "
            f"expected an object")
    out = {}
    try:
        return _parse_metrics(data, out)
    except (AttributeError, KeyError, TypeError) as e:
        raise MetricsLoadError(
            f"{path}: not bench JSON (missing or mistyped field: "
            f"{e})") from e


def _parse_metrics(data, out):
    if "benchmarks" in data:  # google-benchmark reporter
        for b in data["benchmarks"]:
            if b.get("run_type") == "aggregate":
                continue
            scale = TIME_UNITS.get(b.get("time_unit", "ns"), 1e-6)
            out[b["name"]] = (b["real_time"] * scale, "time")
        return out
    for m in data.get("metrics", []):
        name, value, unit = m["name"], m["value"], m.get("unit", "")
        if unit in TIME_UNITS or name.endswith("_ms"):
            scale = TIME_UNITS.get(unit, 1.0)
            out[name] = (None if value is None else value * scale, "time")
        elif unit in ("x", "req/s", "info") or name.endswith("_speedup"):
            # Speedups, throughputs, and explicitly-informational values
            # are derived from (or too noisy to stand in for) the time
            # metrics that carry the gate.
            out[name] = (value, "derived")
        elif unit == "count" or name.startswith("ctr_"):
            out[name] = (value, "counter")
        else:
            out[name] = (value, "correctness")
    # Whole-process wall time includes correctness cross-checks and JSON
    # I/O; report it but do not gate on it.
    if "wall_ms" in data:
        out["wall_ms"] = (data["wall_ms"], "derived")
    return out


def values_match(a, b):
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, bool) or isinstance(b, bool):
        return a == b
    denom = max(abs(a), abs(b), 1e-12)
    return abs(a - b) <= CORRECTNESS_RTOL * denom


def fmt(v):
    if v is None:
        return "null"
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", type=Path, required=True)
    ap.add_argument("--results-dir", type=Path, required=True)
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed normalized wall-time regression (0.15=15%%)")
    ap.add_argument("--output", type=Path, default=None,
                    help="write a markdown diff report here")
    ap.add_argument("--update", action="store_true",
                    help="copy current results over the baselines and exit")
    args = ap.parse_args()

    result_files = sorted(args.results_dir.glob("*.json"))
    if args.update:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        for f in result_files:
            shutil.copy(f, args.baseline_dir / f.name)
            print(f"baseline updated: {args.baseline_dir / f.name}")
        return 0

    baseline_files = sorted(args.baseline_dir.glob("*.json"))
    if not baseline_files:
        print(f"no baselines in {args.baseline_dir}", file=sys.stderr)
        return 2

    rows = []        # (bench, metric, baseline, current, note)
    failures = []
    time_pairs = []  # (bench, metric, base_ms, cur_ms)

    for bf in baseline_files:
        rf = args.results_dir / bf.name
        if not rf.exists():
            failures.append(f"{bf.name}: no result produced by this run")
            continue
        try:
            base = load_metrics(bf)
            cur = load_metrics(rf)
        except MetricsLoadError as e:
            print(f"error: {e}", file=sys.stderr)
            failures.append(str(e))
            continue
        for name, (bval, kind) in base.items():
            if name not in cur:
                if kind == "counter":
                    rows.append((bf.stem, name, bval, None,
                                 "COUNTER MISSING"))
                    failures.append(
                        f"{bf.name}:{name}: stable counter missing from "
                        f"current run (instrumentation or the code path it "
                        f"counted disappeared)")
                else:
                    failures.append(f"{bf.name}:{name}: metric disappeared")
        for name in cur:
            if name not in base:
                rows.append((bf.stem, name, None, cur[name][0],
                             "new metric (refresh baseline with --update)"))
        for name, (bval, kind) in sorted(base.items()):
            if name not in cur:
                continue
            cval, _ = cur[name]
            if kind == "time":
                if bval and cval:
                    time_pairs.append((bf.stem, name, bval, cval))
                else:
                    rows.append((bf.stem, name, bval, cval, "skipped (null)"))
            elif kind == "derived":
                rows.append((bf.stem, name, bval, cval, "informational"))
            elif kind == "counter":
                ok = values_match(bval, cval)
                rows.append((bf.stem, name, bval, cval,
                             "ok" if ok else "COUNTER DIVERGENCE"))
                if not ok:
                    failures.append(
                        f"{bf.stem}:{name}: counter diverged "
                        f"(baseline {fmt(bval)}, current {fmt(cval)})")
            else:
                ok = values_match(bval, cval)
                rows.append((bf.stem, name, bval, cval,
                             "ok" if ok else "CORRECTNESS DIVERGENCE"))
                if not ok:
                    failures.append(
                        f"{bf.stem}:{name}: correctness field diverged "
                        f"(baseline {fmt(bval)}, current {fmt(cval)})")

    # Machine-speed normalization across every time metric of every bench.
    if time_pairs:
        median_ratio = statistics.median(c / b for _, _, b, c in time_pairs)
        for bench, name, bval, cval in time_pairs:
            norm = (cval / bval) / median_ratio
            note = f"normalized x{norm:.3f}"
            if norm > 1.0 + args.threshold:
                note += f" REGRESSION (> +{args.threshold:.0%})"
                failures.append(
                    f"{bench}:{name}: wall-time regression x{norm:.3f} "
                    f"normalized ({fmt(bval)} -> {fmt(cval)} ms, "
                    f"runner median ratio x{median_ratio:.3f})")
            rows.append((bench, name, bval, cval, note))
    else:
        median_ratio = None

    lines = ["# Bench perf gate", ""]
    if median_ratio is not None:
        lines.append(f"Runner speed ratio vs baseline recorder: "
                     f"x{median_ratio:.3f} (median over "
                     f"{len(time_pairs)} time metrics)")
        lines.append("")
    lines.append("| bench | metric | baseline | current | status |")
    lines.append("|---|---|---|---|---|")
    for bench, name, bval, cval, note in rows:
        lines.append(f"| {bench} | {name} | {fmt(bval)} | {fmt(cval)} "
                     f"| {note} |")
    lines.append("")
    if failures:
        lines.append(f"## FAILED ({len(failures)})")
        lines.extend(f"- {f}" for f in failures)
    else:
        lines.append("## PASSED")
    report = "\n".join(lines) + "\n"

    print(report)
    if args.output:
        args.output.write_text(report)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
