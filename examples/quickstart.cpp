/// \file quickstart.cpp
/// \brief Five-minute tour of the goalposts API:
///   1. characterize (or load from cache) a standard-cell library,
///   2. build a small netlist by hand,
///   3. run graph-based STA and print a path report,
///   4. swap a cell and watch the slack move.

#include <cstdio>

#include "liberty/builder.h"
#include "network/netlist.h"
#include "sta/engine.h"
#include "sta/report.h"

using namespace tc;

int main() {
  // 1. A library at the typical corner (cached on disk after first build).
  auto lib = characterizedLibrary(LibraryPvt{ProcessCorner::kTT, 0.9, 25.0});
  std::printf("library %s: %d cells\n", lib->name().c_str(),
              lib->cellCount());

  // 2. A two-flop pipeline with a little logic in between:
  //    clk -> [launch] -> INV -> NAND2 -> [capture]
  Netlist nl(lib);
  const int dff = lib->variant("DFF", VtClass::kSvt, 1);
  const int inv = lib->variant("INV", VtClass::kSvt, 1);
  const int nand = lib->variant("NAND2", VtClass::kSvt, 1);

  const PortId clk = nl.addPort("clk", true);
  const NetId clkNet = nl.addNet("clk");
  nl.connectPortToNet(clk, clkNet);
  nl.defineClock({"clk", clk, /*period=*/500.0, /*jitter=*/20.0, 0.0});

  const PortId din = nl.addPort("din", true);
  const NetId dinNet = nl.addNet("din");
  nl.connectPortToNet(din, dinNet);
  const PortId sel = nl.addPort("sel", true);
  const NetId selNet = nl.addNet("sel");
  nl.connectPortToNet(sel, selNet);

  const InstId launch = nl.addInstance("launch", dff);
  nl.connectInput(launch, 0, dinNet);
  nl.connectInput(launch, 1, clkNet);
  const NetId q = nl.addNet("q");
  nl.connectOutput(launch, q);

  const InstId u1 = nl.addInstance("u1", inv);
  nl.connectInput(u1, 0, q);
  const NetId n1 = nl.addNet("n1");
  nl.connectOutput(u1, n1);

  const InstId u2 = nl.addInstance("u2", nand);
  nl.connectInput(u2, 0, n1);
  nl.connectInput(u2, 1, selNet);
  const NetId n2 = nl.addNet("n2");
  nl.connectOutput(u2, n2);

  const InstId capture = nl.addInstance("capture", dff);
  nl.connectInput(capture, 0, n2);
  nl.connectInput(capture, 1, clkNet);
  const NetId qo = nl.addNet("qo");
  nl.connectOutput(capture, qo);
  const PortId dout = nl.addPort("dout", false);
  nl.connectPortToNet(dout, qo);

  nl.validate();

  // 3. STA at the typical corner with flat OCV derates.
  Scenario sc;
  sc.lib = lib;
  sc.name = "quickstart_tt";
  StaEngine sta(nl, sc);
  sta.run();
  std::fputs(timingSummary(sta).c_str(), stdout);
  for (const auto& ep : sta.endpoints()) {
    if (ep.flop >= 0 && nl.instance(ep.flop).name == "capture") {
      std::fputs(pathReport(sta, ep, Check::kSetup).c_str(), stdout);
    }
  }

  // 4. ECO: upsize the NAND2 and re-analyze.
  nl.swapCell(u2, lib->variant("NAND2", VtClass::kLvt, 4));
  StaEngine sta2(nl, sc);
  sta2.run();
  std::printf("\nafter swapping u2 to NAND2_X4_LVT: setup WNS %.1f -> %.1f "
              "ps\n",
              sta.wns(Check::kSetup), sta2.wns(Check::kSetup));
  return 0;
}
