/// \file closure_flow.cpp
/// \brief End-to-end block implementation flow: generate a synthetic SoC
/// block, floorplan and place it, probe the achievable frequency, then run
/// the Fig.-1 closure loop against a setup and a hold scenario and report
/// the iteration scoreboard, final timing, and the power/area bill.

#include <cstdio>

#include "liberty/builder.h"
#include "network/netgen.h"
#include "opt/closure.h"
#include "place/placement.h"
#include "power/power.h"
#include "sta/report.h"
#include "util/table.h"

using namespace tc;

int main() {
  auto lib = characterizedLibrary(LibraryPvt{});

  BlockProfile profile = profileC5315();
  Netlist nl = generateBlock(lib, profile);
  const Floorplan fp = Floorplan::forDesign(nl, 0.65);
  placeDesign(nl, fp);
  std::printf("block %s: %d instances, %d nets; floorplan %d rows x %d "
              "sites, HPWL %.0f um\n",
              profile.name.c_str(), nl.instanceCount(), nl.netCount(),
              fp.numRows, fp.sitesPerRow, totalHpwl(nl));

  Scenario setup;
  setup.lib = lib;
  setup.name = "setup_typ";
  setup.inputDelay = 250.0;
  Scenario hold = setup;
  hold.name = "hold_fast";
  hold.clockUncertaintyHold = 35.0;

  // Probe and pick a target 10% beyond the as-placed speed.
  {
    nl.clocks().front().period = 4000.0;
    StaEngine probe(nl, setup);
    probe.run();
    const Ps critical = 4000.0 - probe.wns(Check::kSetup);
    nl.clocks().front().period = 0.90 * critical;
    std::printf("as-placed critical %.0f ps; target period %.0f ps\n\n",
                critical, nl.clocks().front().period);
  }

  ClosureLoop loop(nl, setup, hold, fp);
  ClosureConfig cfg;
  cfg.iterations = 5;
  cfg.fixMinIaAfterSwaps = true;
  const ClosureResult res = loop.run(cfg);

  TextTable t("closure scoreboard");
  t.setHeader({"iter", "setup WNS", "#setup", "hold WNS", "#DRV", "edits"});
  for (const auto& it : res.iterations) {
    const int edits = it.vtSwaps + it.resizes + it.buffers +
                      it.ndrPromotions + it.usefulSkews + it.holdBuffers;
    t.addRow({std::to_string(it.iteration),
              TextTable::num(it.before.setupWns, 1),
              std::to_string(it.before.setupViolations),
              TextTable::num(it.before.holdWns, 1),
              std::to_string(it.before.maxTransViolations +
                             it.before.maxCapViolations),
              std::to_string(edits)});
  }
  t.addRow({"final", TextTable::num(res.final.setupWns, 1),
            std::to_string(res.final.setupViolations),
            TextTable::num(res.final.holdWns, 1),
            std::to_string(res.final.maxTransViolations +
                           res.final.maxCapViolations),
            "-"});
  t.print();

  StaEngine finalSta(nl, setup);
  finalSta.run();
  std::puts("\nworst remaining setup path:");
  const auto worst = worstEndpoints(finalSta, Check::kSetup, 1);
  if (!worst.empty())
    std::fputs(pathReport(finalSta, worst[0], Check::kSetup).c_str(), stdout);

  const PowerReport pr = analyzePower(nl);
  std::printf("\npower: %.1f uW total (%.2f leakage, %.1f clock); area %.0f "
              "um2\n",
              pr.total(), pr.leakage, pr.dynamicClock, pr.area);
  std::printf("design %s\n", res.closed ? "CLOSED" : "not fully closed");
  return 0;
}
