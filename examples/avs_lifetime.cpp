/// \file avs_lifetime.cpp
/// \brief A product's 10-year life under adaptive voltage scaling: the AVS
/// controller raises the core supply only as BTI aging demands, which in
/// turn accelerates the aging — the closed loop of Sec. 3.3. Prints the
/// voltage/aging/power trajectory and compares two signoff choices.

#include <cstdio>

#include "liberty/builder.h"
#include "network/netgen.h"
#include "signoff/avs.h"
#include "util/table.h"

using namespace tc;

int main() {
  auto lib = characterizedLibrary(LibraryPvt{}, /*quick=*/true);
  Netlist nl = generateBlock(lib, profileTiny());

  const DelayScaler scaler(0.9, 105.0);
  AvsConfig cfg;
  cfg.lifetimeYears = 10.0;
  cfg.temp = 105.0;

  // Mission: 700ps budget; the implementation runs it in 640ps when fresh.
  const Ps budget = 700.0;
  const Ps freshDelay = 640.0;
  const auto life = simulateAvsLifetime(nl, freshDelay, budget, scaler, cfg);

  TextTable t("AVS trajectory over a 10-year mission (fresh delay " +
              TextTable::num(freshDelay, 0) + " ps, budget " +
              TextTable::num(budget, 0) + " ps)");
  t.setHeader({"age (yr)", "VDD (V)", "BTI dVt (mV)", "power (uW)"});
  for (const auto& pt : life.points) {
    t.addRow({TextTable::num(pt.years, 2), TextTable::num(pt.vdd, 3),
              TextTable::num(pt.dvt * 1000.0, 1),
              TextTable::num(pt.power, 1)});
  }
  t.addFootnote(life.feasible ? "feasible across life"
                              : "INFEASIBLE: AVS hit Vmax");
  t.addFootnote("lifetime-average power: " +
                TextTable::num(life.avgPower, 1) + " uW");
  t.print();
  std::puts("");

  // The signoff question (Fig. 9): what if the implementation had carried
  // more / less fresh headroom?
  TextTable s("fresh-headroom sensitivity (same netlist, same budget)");
  s.setHeader({"fresh delay (ps)", "headroom", "avg power (uW)",
               "end-of-life VDD (V)", "feasible"});
  for (double frac : {0.97, 0.91, 0.85, 0.75, 0.65}) {
    const auto r =
        simulateAvsLifetime(nl, frac * budget, budget, scaler, cfg);
    s.addRow({TextTable::num(frac * budget, 0),
              TextTable::pct(1.0 - frac, 0), TextTable::num(r.avgPower, 1),
              TextTable::num(r.points.back().vdd, 3),
              r.feasible ? "yes" : "NO"});
  }
  s.addFootnote("too little headroom: the regulator compensates with "
                "voltage for 10 years (energy) or runs out (infeasible); "
                "the headroom itself was bought with area upstream");
  s.print();
  return 0;
}
