/// \file mcmm_signoff.cpp
/// \brief Multi-corner multi-mode signoff walk-through (Sec. 2.3 / 3.2):
/// enumerate the corner universe, prune to dominant views, run STA at each
/// surviving view, then compare signoff strategies — slow-corner vs
/// typical-plus-flat-margin vs tightened BEOL corners.

#include <cstdio>
#include <map>

#include "liberty/builder.h"
#include "network/netgen.h"
#include "signoff/corners.h"
#include "signoff/margin.h"
#include "signoff/tbc.h"
#include "util/table.h"

using namespace tc;

int main() {
  BlockProfile profile = profileTiny();
  profile.clockPeriod = 1400.0;

  // 1. The corner universe at 16nm and its pruned subset.
  const CornerUniverse universe = CornerUniverse::socUniverse(16);
  std::printf("corner universe at 16nm: %ld views\n", universe.totalViews());
  const auto setupViews = pruneForSetup(universe);
  std::printf("pruned to %zu dominant setup views\n\n", setupViews.size());

  // 2. STA at a few representative views. Each view needs a library at its
  //    PVT; characterization is cached on disk, so the first run pays and
  //    later runs load. Use the func-mode views only, mapped onto the
  //    supplies we characterize.
  auto libAt = [](ProcessCorner pc, Volt v, Celsius t) {
    return characterizedLibrary(LibraryPvt{pc, v, t}, /*quick=*/true);
  };
  struct View {
    const char* name;
    Scenario sc;
  };
  std::vector<View> views;
  {
    Scenario s;
    s.name = "func_tt_0.90V_25C_typ";
    s.lib = libAt(ProcessCorner::kTT, 0.9, 25.0);
    views.push_back({"typical", s});
  }
  {
    Scenario s;
    s.name = "func_ssg_0.81V_125C_Cw";
    s.lib = libAt(ProcessCorner::kSSG, 0.81, 125.0);
    s.beol = BeolCorner::kCworst;
    views.push_back({"slow / Cw", s});
  }
  {
    Scenario s;
    s.name = "func_ssg_0.81V_m30C_RCw";
    s.lib = libAt(ProcessCorner::kSSG, 0.81, -30.0);
    s.beol = BeolCorner::kRCworst;
    views.push_back({"cold / RCw (temp-inversion twin)", s});
  }

  Netlist nl = generateBlock(views[0].sc.lib, profile);
  TextTable t("per-view timing (" + profile.name + ", T=" +
              TextTable::num(profile.clockPeriod, 0) + " ps)");
  t.setHeader({"view", "setup WNS (ps)", "#setup", "hold WNS (ps)"});
  std::map<std::string, StaEngine*> engines;
  std::vector<std::unique_ptr<StaEngine>> owned;
  for (auto& v : views) {
    owned.push_back(std::make_unique<StaEngine>(nl, v.sc));
    owned.back()->run();
    engines[v.name] = owned.back().get();
    t.addRow({v.name, TextTable::num(owned.back()->wns(Check::kSetup), 1),
              std::to_string(owned.back()->violationCount(Check::kSetup)),
              TextTable::num(owned.back()->wns(Check::kHold), 1)});
  }
  t.print();
  std::puts("");

  // 3. Signoff strategies: full slow-corner signoff vs typical + margin.
  const auto cmp = compareSignoffStrategies(
      *engines["typical"], *engines["slow / Cw"], defaultMarginRug());
  TextTable st("signoff strategy comparison");
  st.setHeader({"strategy", "violations", "margin carried (ps)"});
  st.addRow({"sign off at slow corner",
             std::to_string(cmp.slowCornerViolations), "-"});
  st.addRow({"typical + flat margin",
             std::to_string(cmp.typicalFlatViolations),
             TextTable::num(cmp.flatMargin, 0)});
  st.addRow({"typical + detangled margin",
             std::to_string(cmp.typicalDetangledViolations),
             TextTable::num(cmp.detangled, 0)});
  st.addFootnote("AVS-era strategy (Sec. 1.3): close setup at typical and "
                 "carry an explicit margin for what is not modeled");
  st.print();
  std::puts("");

  // 4. Tightened BEOL corners on the typical view.
  TbcConfig tcfg;
  tcfg.numPaths = 60;
  tcfg.mc.samples = 1500;
  const TbcAnalysis tbc = analyzeTbc(*engines["typical"], tcfg);
  std::printf("TBC: %d of %zu analyzed paths eligible for tightened "
              "corners; BEOL margin beyond 3-sigma drops %.0f -> %.0f ps\n",
              tbc.eligible, tbc.paths.size(), tbc.totalPessimismCbc,
              tbc.totalPessimismTbc);
  return 0;
}
