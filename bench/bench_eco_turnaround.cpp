/// \file bench_eco_turnaround.cpp
/// \brief ECO turnaround (paper Comments 1 and 3): "the ability to handle
/// even a few additional functional ECOs or constraints changes within a
/// 60-day tapeout march can be the difference between market success and
/// failure", and signoff/ECO tools that are "congestion- and legal
/// location-aware, and scale well onto hundreds of threads".
///
/// This bench measures the single-machine analog: incremental timing update
/// after in-place ECOs (Vt swaps / sizing) versus full re-analysis, with a
/// correctness cross-check that both produce identical WNS/TNS.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_json.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "sta/engine.h"
#include "util/rng.h"
#include "util/table.h"

using namespace tc;

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_eco_turnaround", argc, argv);
  auto L = characterizedLibrary(LibraryPvt{});

  std::puts("== ECO turnaround: incremental vs full timing update ==\n");
  TextTable t("per-ECO timing-update cost (averaged over 40 random ECOs)");
  t.setHeader({"block", "instances", "full STA (ms)", "incremental (ms)",
               "speedup", "WNS match", "TNS match"});

  for (const BlockProfile& p :
       {profileTiny(), profileC5315(), profileAes()}) {
    Netlist nl = generateBlock(L, p);
    Scenario sc;
    sc.lib = L;
    StaEngine inc(nl, sc);
    inc.run();

    Rng rng(2024);
    const int kEcos = 40;
    double incMs = 0.0, fullMs = 0.0;
    bool wnsMatch = true, tnsMatch = true;
    for (int e = 0; e < kEcos; ++e) {
      // Random in-place ECO: one Vt or drive swap.
      InstId victim = -1;
      int cand = -1;
      for (int tries = 0; tries < 200 && cand < 0; ++tries) {
        victim = static_cast<InstId>(rng.below(
            static_cast<std::uint64_t>(nl.instanceCount())));
        const Cell& c = nl.cellOf(victim);
        if (c.isSequential || nl.instance(victim).isClockTreeBuffer)
          continue;
        const VtClass vt = static_cast<VtClass>(rng.below(4));
        cand = L->variant(c.footprint, vt, c.drive);
        if (cand == nl.instance(victim).cellIndex) cand = -1;
      }
      if (cand < 0) continue;
      nl.swapCell(victim, cand);

      const auto t0 = std::chrono::steady_clock::now();
      inc.updateAfterEco(inc.netsAffectedBySwap(victim));
      const auto t1 = std::chrono::steady_clock::now();
      StaEngine full(nl, sc);
      full.run();
      const auto t2 = std::chrono::steady_clock::now();

      incMs += std::chrono::duration<double, std::milli>(t1 - t0).count();
      fullMs += std::chrono::duration<double, std::milli>(t2 - t1).count();
      if (std::abs(inc.wns(Check::kSetup) - full.wns(Check::kSetup)) > 1e-6)
        wnsMatch = false;
      if (std::abs(inc.tns(Check::kSetup) - full.tns(Check::kSetup)) > 1e-4)
        tnsMatch = false;
    }
    incMs /= kEcos;
    fullMs /= kEcos;
    t.addRow({p.name, std::to_string(nl.instanceCount()),
              TextTable::num(fullMs, 2), TextTable::num(incMs, 2),
              TextTable::num(fullMs / std::max(incMs, 1e-6), 1) + "x",
              wnsMatch ? "exact" : "MISMATCH",
              tnsMatch ? "exact" : "MISMATCH"});
  }
  t.addFootnote("incremental update recomputes only the ECO's forward cone "
                "(endpoint checks and required times are refreshed); "
                "topology ECOs (buffering) rebuild the graph");
  t.print();
  return 0;
}
