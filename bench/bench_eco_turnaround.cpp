/// \file bench_eco_turnaround.cpp
/// \brief ECO turnaround (paper Comments 1 and 3): "the ability to handle
/// even a few additional functional ECOs or constraints changes within a
/// 60-day tapeout march can be the difference between market success and
/// failure", and signoff/ECO tools that are "congestion- and legal
/// location-aware, and scale well onto hundreds of threads".
///
/// This bench measures the single-machine analog: incremental timing update
/// after an in-place ECO (a single Vt/drive swap — the netlist mutation
/// hooks mark the dirty frontier, no manual invalidation) versus a full
/// from-scratch re-analysis. Correctness is gated bitwise: any divergence
/// in WNS/TNS, violation counts, per-endpoint slacks, or the quarantine
/// count exits nonzero, so CI fails on a wrong answer, not just a slow one.

#include <chrono>
#include <cstdio>

#include "bench_json.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "sta/engine.h"
#include "util/rng.h"
#include "util/table.h"

using namespace tc;

namespace {

/// Bitwise comparison of everything a signoff report reads.
bool identicalResults(const StaEngine& a, const StaEngine& b) {
  if (a.wns(Check::kSetup) != b.wns(Check::kSetup)) return false;
  if (a.wns(Check::kHold) != b.wns(Check::kHold)) return false;
  if (a.tns(Check::kSetup) != b.tns(Check::kSetup)) return false;
  if (a.tns(Check::kHold) != b.tns(Check::kHold)) return false;
  if (a.violationCount(Check::kSetup) != b.violationCount(Check::kSetup))
    return false;
  if (a.violationCount(Check::kHold) != b.violationCount(Check::kHold))
    return false;
  if (a.nanQuarantineCount() != b.nanQuarantineCount()) return false;
  const auto& ea = a.endpoints();
  const auto& eb = b.endpoints();
  if (ea.size() != eb.size()) return false;
  for (std::size_t i = 0; i < ea.size(); ++i)
    if (ea[i].setupSlack != eb[i].setupSlack ||
        ea[i].holdSlack != eb[i].holdSlack)
      return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_eco_turnaround", argc, argv);
  auto L = characterizedLibrary(LibraryPvt{});

  std::puts("== ECO turnaround: incremental vs full timing update ==\n");
  TextTable t("per-ECO timing-update cost (averaged over 40 random ECOs)");
  t.setHeader({"block", "instances", "full STA (ms)", "incremental (ms)",
               "speedup", "avg frontier", "results"});

  bool allMatch = true;
  for (const BlockProfile& p :
       {profileTiny(), profileC5315(), profileAes()}) {
    Netlist nl = generateBlock(L, p);
    Scenario sc;
    sc.lib = L;
    StaEngine inc(nl, sc);
    inc.run();

    Rng rng(2024);
    const int kEcos = 40;
    int measured = 0;
    double incMs = 0.0, fullMs = 0.0, frontier = 0.0;
    bool match = true;
    for (int e = 0; e < kEcos; ++e) {
      // Random in-place ECO: one Vt or drive swap. swapCell notifies the
      // registered engine, which marks the swap's fanin/fanout frontier.
      InstId victim = -1;
      int cand = -1;
      for (int tries = 0; tries < 200 && cand < 0; ++tries) {
        victim = static_cast<InstId>(rng.below(
            static_cast<std::uint64_t>(nl.instanceCount())));
        const Cell& c = nl.cellOf(victim);
        if (c.isSequential || nl.instance(victim).isClockTreeBuffer)
          continue;
        const VtClass vt = static_cast<VtClass>(rng.below(4));
        cand = L->variant(c.footprint, vt, c.drive);
        if (cand == nl.instance(victim).cellIndex) cand = -1;
      }
      if (cand < 0) continue;
      nl.swapCell(victim, cand);

      const auto t0 = std::chrono::steady_clock::now();
      inc.updateTiming();
      const auto t1 = std::chrono::steady_clock::now();
      StaEngine full(nl, sc);
      full.run();
      const auto t2 = std::chrono::steady_clock::now();

      ++measured;
      incMs += std::chrono::duration<double, std::milli>(t1 - t0).count();
      fullMs += std::chrono::duration<double, std::milli>(t2 - t1).count();
      frontier += inc.lastUpdateStats().forwardRecomputed;
      if (!identicalResults(inc, full)) match = false;
    }
    incMs /= measured;
    fullMs /= measured;
    frontier /= measured;
    const double speedup = fullMs / std::max(incMs, 1e-6);
    allMatch = allMatch && match;

    t.addRow({p.name, std::to_string(nl.instanceCount()),
              TextTable::num(fullMs, 3), TextTable::num(incMs, 3),
              TextTable::num(speedup, 1) + "x", TextTable::num(frontier, 0),
              match ? "bit-identical" : "MISMATCH"});

    report.metric(std::string(p.name) + "_full_ms", fullMs, "ms");
    report.metric(std::string(p.name) + "_incremental_ms", incMs, "ms");
    report.metric(std::string(p.name) + "_speedup", speedup, "x");
    report.metric(std::string(p.name) + "_avg_frontier", frontier,
                  "vertices");
    report.metric(std::string(p.name) + "_bit_identical", match ? 1 : 0);
  }
  t.addFootnote("incremental update recomputes only the ECO's forward cone "
                "(endpoint checks and required times follow the changed "
                "set); topology ECOs (buffering) rebuild the graph");
  t.print();
  if (!allMatch) {
    std::fprintf(stderr,
                 "FAIL: incremental timing diverged from full retime\n");
    return 1;
  }
  return 0;
}
