/// \file bench_fig05_sadp.cpp
/// \brief Reproduces Fig. 5: self-aligned double patterning (SID-SADP) CD
/// variability.
///
/// (c) The four patterning solutions for a BEOL wire and their CD sigma
///     composition (mandrel/mandrel, spacer/spacer, mandrel/block,
///     spacer/block) — printed with the exact variance formulas.
/// (b) Line-end extensions and floating fill wires forced by rectangular
///     cut-mask shapes "unpredictably increasing grounded and coupling
///     capacitances" — quantified as the added-capacitance distribution
///     over sampled nets, and propagated to wire-delay spread.

#include <cstdio>

#include "bench_json.h"
#include "interconnect/rctree.h"
#include "interconnect/sadp.h"
#include "interconnect/wire.h"
#include "util/stats.h"
#include "util/table.h"

using namespace tc;

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_fig05_sadp", argc, argv);
  SadpModel m;  // default 10nm-class edge sigmas

  {
    TextTable t("Fig. 5(c) -- CD sigma per SID-SADP patterning solution");
    t.setHeader({"case", "formula", "sigma_CD (nm)", "sigma_CD / CD",
                 "dR/R 1-sigma", "dCc/Cc 1-sigma"});
    const char* formulas[] = {
        "s2 = sM^2",
        "s2 = sM^2 + 2 sS^2",
        "s2 = (sM/2)^2 + sMB^2 + (sB/2)^2",
        "s2 = (sM/2)^2 + sS^2 + sMB^2 + (sB/2)^2",
    };
    int i = 0;
    for (SadpCase c : allSadpCases()) {
      t.addRow({toString(c), formulas[i++], TextTable::num(m.cdSigmaNm(c), 3),
                TextTable::pct(m.widthSigmaFrac(c), 2),
                TextTable::pct(m.rSigmaFrac(c), 2),
                TextTable::pct(m.ccSigmaFrac(c), 2)});
    }
    t.addFootnote("edge sigmas: mandrel=" + TextTable::num(m.sigmaMandrelNm, 2) +
                  "nm spacer=" + TextTable::num(m.sigmaSpacerNm, 2) +
                  "nm block=" + TextTable::num(m.sigmaBlockNm, 2) +
                  "nm mandrel-block overlay=" +
                  TextTable::num(m.sigmaMandrelBlockNm, 2) + "nm, CD=" +
                  TextTable::num(m.nominalCdNm, 0) + "nm");
    t.addFootnote(
        "paper shape: block-mask-defined edges dominate; spacer/block is the "
        "worst case");
    t.print();
    std::puts("");
  }

  {
    // Fig. 5(b): cut-mask induced capacitance on sampled nets.
    TextTable t(
        "Fig. 5(b) -- line-end extension + floating-fill capacitance per net "
        "(Monte Carlo, 20000 nets)");
    t.setHeader({"wirelength (um)", "terminals", "mean added C (fF)",
                 "sigma (fF)", "p99 (fF)", "mean / wire C"});
    const WireLayer layer = BeolStack::forNode(techNode(10)).layer(2);
    for (double len : {10.0, 30.0, 80.0, 200.0}) {
      Rng rng(77);
      SampleSet s;
      for (int i = 0; i < 20000; ++i)
        s.add(m.sampleCutMaskCap(len, 3, rng));
      const double wireC = (layer.cgPerUm + layer.ccPerUm) * len;
      t.addRow({TextTable::num(len, 0), "3", TextTable::num(s.mean(), 3),
                TextTable::num(s.stddev(), 3),
                TextTable::num(s.quantile(0.99), 3),
                TextTable::pct(s.mean() / wireC, 2)});
    }
    t.addFootnote(
        "the added capacitance is net-specific and layout-dependent -- the "
        "'unpredictable' term the paper flags");
    t.print();
    std::puts("");
  }

  {
    // Propagation to timing: wire delay spread of a 100um M2 wire whose CD
    // varies per patterning case (bimodal-ish across the case mix).
    TextTable t(
        "Fig. 5 (derived) -- 100um M2 wire delay under SADP CD variation");
    t.setHeader({"case", "R scale 1-sigma", "delay mean (ps)",
                 "delay sigma (ps)", "sigma/mean"});
    const WireLayer layer = BeolStack::forNode(techNode(10)).layer(2);
    const double len = 100.0;
    const Ff cLoad = 3.0;
    for (SadpCase c : allSadpCases()) {
      Rng rng(5);
      SampleSet s;
      for (int i = 0; i < 8000; ++i) {
        const double dw = rng.normal(0.0, m.widthSigmaFrac(c));
        const double r = layer.rPerUm * len * (1.0 - dw);  // R ~ 1/W
        const double cap =
            (layer.cgPerUm * (1.0 + 0.6 * dw) + layer.ccPerUm * (1.0 + 1.6 * dw)) *
            len;
        s.add(r * (0.5 * cap + cLoad));  // Elmore of a lumped pi
      }
      t.addRow({toString(c), TextTable::pct(m.rSigmaFrac(c), 2),
                TextTable::num(s.mean(), 2), TextTable::num(s.stddev(), 2),
                TextTable::pct(s.stddev() / s.mean(), 2)});
    }
    t.print();
  }
  return 0;
}
