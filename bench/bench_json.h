#pragma once
/// \file bench_json.h
/// \brief CI-consumable bench output: every bench_* binary accepts
/// `--json <path>` and, when given, writes a small machine-readable result
/// file next to its human-readable tables. CI uploads these as artifacts,
/// seeding the perf trajectory (BENCH_*.json at the repo root is the
/// tracked history; everything else is ignored by .gitignore).
///
/// Usage:
///   int main(int argc, char** argv) {
///     tc::bench::JsonReport report("bench_foo", argc, argv);
///     ...
///     report.metric("wns_ps", wns, "ps");
///   }                       // total wall_ms recorded + file written on exit
///
/// The format is deliberately flat so a shell + jq pipeline can trend it:
///   {"bench": "...", "wall_ms": 12.3,
///    "metrics": [{"name": "...", "value": 1.0, "unit": "ps"}, ...]}
///
/// Two observability hooks ride along:
///  - `--trace <path>` enables runtime tracing for the whole bench and
///    exports a Chrome trace (chrome://tracing / Perfetto) on exit;
///  - stable registry counters (see util/metrics.h) are folded into the
///    JSON as "ctr_<name>" metrics with unit "count", so bench_compare.py
///    gates on counter regressions (cache hit rates, frontier sizes) the
///    same way it gates on wall time. Noisy counters are excluded.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "util/metrics.h"
#include "util/trace.h"

namespace tc::bench {

class JsonReport {
 public:
  JsonReport(std::string benchName, int argc, char** argv)
      : bench_(std::move(benchName)),
        start_(std::chrono::steady_clock::now()) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") path_ = argv[i + 1];
      if (std::string(argv[i]) == "--trace") tracePath_ = argv[i + 1];
    }
    if (!tracePath_.empty()) tc::traceSetEnabled(true);
  }

  ~JsonReport() { write(); }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  bool enabled() const { return !path_.empty(); }

  /// Record one named value. Call order is preserved in the output.
  void metric(const std::string& name, double value,
              const std::string& unit = "") {
    metrics_.push_back({name, value, unit});
  }

  /// Flush now (also runs from the destructor; second call is a no-op).
  void write() {
    if (written_) return;
    written_ = true;
    if (!tracePath_.empty()) {
      tc::traceExportChrome(tracePath_);
      tc::traceSetEnabled(false);
    }
    if (path_.empty()) return;
    // Fold the stable counters the bench's workload drove; gauges and
    // histograms summarize distributions, not totals, and noisy counters
    // would flake an exact-match gate — both stay out of the bench file.
    for (const auto& s : tc::MetricsRegistry::global().snapshot()) {
      if (s.kind != tc::MetricSnapshot::Kind::kCounter) continue;
      if (s.stability != tc::MetricStability::kStable) continue;
      metrics_.push_back({"ctr_" + s.name, s.value, "count"});
    }
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", path_.c_str());
      return;
    }
    const double wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    std::fprintf(f, "{\"bench\": \"%s\", \"wall_ms\": %.3f, \"metrics\": [",
                 bench_.c_str(), wallMs);
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "%s{\"name\": \"%s\", \"value\": %s, \"unit\": \"%s\"}",
                   i ? ", " : "", metrics_[i].name.c_str(),
                   jsonNumber(metrics_[i].value).c_str(),
                   metrics_[i].unit.c_str());
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
  }

  /// JSON has no nan/inf literals: a bench metric that degenerates to a
  /// non-finite value (empty design -> WNS = inf) serializes as null so the
  /// file stays machine-parseable; finite values keep full %.9g precision.
  static std::string jsonNumber(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
  }

 private:
  struct Metric {
    std::string name;
    double value;
    std::string unit;
  };

  std::string bench_;
  std::string path_;
  std::string tracePath_;
  std::vector<Metric> metrics_;
  std::chrono::steady_clock::time_point start_;
  bool written_ = false;
};

}  // namespace tc::bench
