/// \file bench_monitor_tracking.cpp
/// \brief Critical-path-mimicking monitors (paper Sec. 4 futures; after the
/// DDRO work [3] and tunable sensors [5]).
///
/// AVS (Sec. 3.3) closes its loop through a monitor, so the monitor's
/// tracking error across (V, T, aging) is additional AVS margin. This
/// bench synthesizes a design-dependent ring oscillator (DDRO) from the
/// design's worst path — quantized to a realistic 6-flavor stage menu —
/// and compares its tracking of the true path composition against a
/// generic all-SVT inverter RO over the full (V, T, dVt) grid.

#include <algorithm>
#include <cstdio>

#include "bench_json.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "signoff/monitor.h"
#include "sta/report.h"
#include "util/table.h"

using namespace tc;

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_monitor_tracking", argc, argv);
  auto L = characterizedLibrary(LibraryPvt{});
  BlockProfile p = profileC5315();
  Netlist nl = generateBlock(L, p);
  // Mix the Vt population (as a closed design would be): critical cone LVT,
  // the rest HVT-recovered.
  {
    Rng rng(3);
    for (InstId i = 0; i < nl.instanceCount(); ++i) {
      const Cell& c = nl.cellOf(i);
      if (c.isSequential || nl.instance(i).isClockTreeBuffer) continue;
      const VtClass vt = rng.chance(0.3)
                             ? VtClass::kLvt
                             : (rng.chance(0.5) ? VtClass::kSvt
                                                : VtClass::kHvt);
      const int cand = L->variant(c.footprint, vt, c.drive);
      if (cand >= 0) nl.swapCell(i, cand);
    }
  }
  Scenario sc;
  sc.lib = L;
  StaEngine eng(nl, sc);
  eng.run();
  const auto worst = worstEndpoints(eng, Check::kSetup, 1);
  if (worst.empty()) return 1;

  const MonitorDesign truth = pathComposition(eng, worst[0].vertex);
  const MonitorDesign ddro = synthesizeDdro(eng, worst[0].vertex);
  const MonitorDesign generic = genericRingOscillator(
      static_cast<int>(truth.stages.size()));

  std::printf(
      "worst path: %zu combinational stages; DDRO quantized to the %zu-"
      "flavor monitor menu\n\n",
      truth.stages.size(), monitorStageMenu().size());

  const TrackingResult rd = evaluateTracking(ddro, truth);
  const TrackingResult rg = evaluateTracking(generic, truth);

  {
    TextTable t("monitor tracking error across (V, T, aging)");
    t.setHeader({"monitor", "mean error", "max error", "grid points"});
    t.addRow({"generic INV ring oscillator",
              TextTable::num(rg.meanErrorPct, 2) + "%",
              TextTable::num(rg.maxErrorPct, 2) + "%",
              std::to_string(rg.points.size())});
    t.addRow({"DDRO (path-mimicking)",
              TextTable::num(rd.meanErrorPct, 2) + "%",
              TextTable::num(rd.maxErrorPct, 2) + "%",
              std::to_string(rd.points.size())});
    t.addFootnote("tracking error is AVS guardband: the controller must "
                  "margin the supply by the worst mismatch between what the "
                  "monitor reports and what the critical path does");
    t.print();
    std::puts("");
  }

  {
    TextTable t("worst tracking points, generic RO (where it lies most)");
    t.setHeader({"VDD (V)", "T (C)", "dVt (mV)", "path scale",
                 "monitor scale", "error"});
    std::vector<TrackingPoint> pts = rg.points;
    std::sort(pts.begin(), pts.end(),
              [](const TrackingPoint& a, const TrackingPoint& b) {
                return a.errorPct > b.errorPct;
              });
    for (std::size_t i = 0; i < 6 && i < pts.size(); ++i) {
      t.addRow({TextTable::num(pts[i].vdd, 2), TextTable::num(pts[i].temp, 0),
                TextTable::num(pts[i].dvt * 1000, 0),
                TextTable::num(pts[i].truthScale, 3),
                TextTable::num(pts[i].monitorScale, 3),
                TextTable::num(pts[i].errorPct, 2) + "%"});
    }
    t.addFootnote("the generic RO under-reacts at low voltage (critical "
                  "paths carry HVT/stacked gates with steeper low-V "
                  "sensitivity) -- precisely where AVS operates");
    t.print();
  }
  return 0;
}
