/// \file bench_fig08_tbc.cpp
/// \brief Reproduces Fig. 8 (after Chan-Dobre-Kahng [2]): the pessimism
/// metric alpha = 3sigma / delta_d(corner) for setup-critical paths at the
/// Cw and RCw conventional BEOL corners, the threshold classification that
/// selects paths for tightened BEOL corners (TBCs), and the resulting
/// reduction in timing violations / fix effort.

#include <algorithm>
#include <cstdio>

#include "bench_json.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "place/placement.h"
#include "signoff/tbc.h"
#include "util/table.h"

using namespace tc;

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_fig08_tbc", argc, argv);
  auto L = characterizedLibrary(LibraryPvt{});
  BlockProfile p = profileC5315();
  Netlist nl = generateBlock(L, p);
  // Placement matters here: the Fig. 8 scatter needs both gate-dominated
  // (short-wire) and wire-dominated (long-route) paths in the population.
  const Floorplan fp = Floorplan::forDesign(nl, 0.65);
  placeDesign(nl, fp);

  Scenario sc;
  sc.lib = L;
  sc.name = "typ";
  // Retune the clock so the analyzed paths sit just above closure at the
  // typical corner: that is the regime where the choice of BEOL margin
  // (CBC vs TBC vs statistical) decides who violates.
  {
    StaEngine probe(nl, sc);
    probe.run();
    nl.clocks().front().period -= probe.wns(Check::kSetup) - 25.0;
  }
  StaEngine eng(nl, sc);
  eng.run();

  TbcConfig cfg;
  cfg.numPaths = 250;
  cfg.mc.samples = 4000;
  // Placed paths concentrate on one or two metal layers, so the per-layer
  // decorrelation benefit is moderate: tighten to 2.4 sigma and accept
  // paths whose dominant-corner alpha guarantees coverage at that k.
  cfg.tightenedSigma = 2.4;
  cfg.thresholdAcw = cfg.thresholdArcw = 0.05;
  const TbcAnalysis a = analyzeTbc(eng, cfg);

  {
    // Fig 8(a): the alpha-vs-normalized-delta scatter, binned as a table.
    TextTable t(
        "Fig. 8(a) -- pessimism metric alpha vs normalized corner delta "
        "(250 setup-critical paths)");
    t.setHeader({"ndelta bucket", "paths@Cw", "mean alpha@Cw", "paths@RCw",
                 "mean alpha@RCw"});
    const double edges[] = {0.0, 0.01, 0.02, 0.04, 0.08, 1.0};
    for (int b = 0; b < 5; ++b) {
      int nCw = 0, nRcw = 0;
      double aCw = 0.0, aRcw = 0.0;
      for (const auto& path : a.paths) {
        if (path.normDeltaCw >= edges[b] && path.normDeltaCw < edges[b + 1]) {
          ++nCw;
          aCw += path.alphaCw;
        }
        if (path.normDeltaRcw >= edges[b] &&
            path.normDeltaRcw < edges[b + 1]) {
          ++nRcw;
          aRcw += path.alphaRcw;
        }
      }
      char bucket[48];
      std::snprintf(bucket, sizeof bucket, "[%.2f, %.2f)", edges[b],
                    edges[b + 1]);
      t.addRow({bucket, std::to_string(nCw),
                nCw ? TextTable::num(aCw / nCw, 3) : "-",
                std::to_string(nRcw),
                nRcw ? TextTable::num(aRcw / nRcw, 3) : "-"});
    }
    t.addFootnote("paper shape: small-delta paths carry large alpha "
                  "pessimism; large-delta paths approach (or exceed) alpha=1");
    t.print();
    std::puts("");
  }

  {
    // Cross-corner domination (the red/blue dots of Fig 8a).
    int cwDominant = 0, rcwDominant = 0, alphaAbove1Cw = 0,
        coveredByOther = 0;
    for (const auto& path : a.paths) {
      if (path.deltaCw >= path.deltaRcw)
        ++cwDominant;
      else
        ++rcwDominant;
      if (path.alphaCw > 1.0) {
        ++alphaAbove1Cw;
        if (path.alphaRcw < 1.0) ++coveredByOther;
      }
    }
    TextTable t("Fig. 8(a) -- corner domination across the path set");
    t.setHeader({"metric", "count"});
    t.addRow({"paths with larger delta at Cw", std::to_string(cwDominant)});
    t.addRow({"paths with larger delta at RCw", std::to_string(rcwDominant)});
    t.addRow({"paths with alpha>1 at Cw (Cw underestimates!)",
              std::to_string(alphaAbove1Cw)});
    t.addRow({"...of those, dominated (alpha<1) at RCw",
              std::to_string(coveredByOther)});
    t.addFootnote("paper: \"we must sign off at both corners to capture the "
                  "impact of interconnect variation\"");
    t.print();
    std::puts("");
  }

  {
    // Fig 8(b): TBC classification + safety + violation comparison.
    const auto cmp = compareViolations(a, eng, cfg);
    TextTable t("Fig. 8(b) -- tightened BEOL corner (TBC) classification");
    t.setHeader({"metric", "value"});
    t.addRow({"analyzed paths", std::to_string(a.paths.size())});
    t.addRow({"TBC-eligible (ndelta < A at both corners, coverage-safe)",
              std::to_string(a.eligible)});
    t.addRow({"eligible with tightened corner >= 3-sigma (safety)",
              std::to_string(a.eligibleCovered) + " / " +
                  std::to_string(a.eligible)});
    t.addRow({"total margin demanded beyond 3-sigma, CBC (ps)",
              TextTable::num(a.totalPessimismCbc, 1)});
    t.addRow({"total margin demanded beyond 3-sigma, TBC (ps)",
              TextTable::num(a.totalPessimismTbc, 1)});
    t.addRow({"violations under CBC margins",
              std::to_string(cmp.violationsCbc)});
    t.addRow({"violations under TBC margins",
              std::to_string(cmp.violationsTbc)});
    t.addRow({"violations under the statistical (3-sigma) requirement",
              std::to_string(cmp.violationsStatistical)});
    t.addFootnote("paper/[2]: TBC substantially reduces timing violations "
                  "and fix/closure effort without losing coverage");
    t.print();
  }
  return 0;
}
