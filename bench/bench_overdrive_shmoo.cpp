/// \file bench_overdrive_shmoo.cpp
/// \brief Overdrive/underdrive signoff (after [4]; paper footnote 3: the
/// 16/14nm logic supply scales 0.46-1.25 V, exploding modes and corners;
/// Sec. 1: "whether a part is binned" shapes closure strategy).
///
/// A closed block is shmooed across four characterized supply points: per
/// point, the maximum passing frequency (binary-searched full STA) and the
/// power at that operating point. Then the [4] question: for each
/// frequency bin, which supply ships the part cheapest?

#include <cstdio>

#include "bench_json.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "opt/closure.h"
#include "signoff/overdrive.h"
#include "util/table.h"

using namespace tc;

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_overdrive_shmoo", argc, argv);
  // Lib group: four supply points of the same process/temperature.
  std::vector<std::shared_ptr<const Library>> libs = {
      characterizedLibrary(LibraryPvt{ProcessCorner::kTT, 0.55, 25.0}),
      characterizedLibrary(LibraryPvt{ProcessCorner::kTT, 0.70, 25.0}),
      characterizedLibrary(LibraryPvt{ProcessCorner::kTT, 0.90, 25.0}),
      characterizedLibrary(LibraryPvt{ProcessCorner::kTT, 1.05, 25.0}),
  };

  BlockProfile p = profileC5315();
  Netlist nl = generateBlock(libs[2], p);
  Scenario sc;
  sc.lib = libs[2];
  sc.inputDelay = 200.0;
  // Close at nominal first.
  {
    nl.clocks().front().period = 4000.0;
    StaEngine probe(nl, sc);
    probe.run();
    nl.clocks().front().period = 0.95 * (4000.0 - probe.wns(Check::kSetup));
    ClosureLoop loop(nl, sc);
    ClosureConfig cfg;
    cfg.iterations = 4;
    cfg.enableHoldFix = false;
    loop.run(cfg);
  }
  const Ps basePeriod = nl.clocks().front().period;

  std::puts("== Voltage-frequency shmoo (overdrive/underdrive signoff, "
            "[4]) ==\n");
  const auto shmoo = voltageFrequencyShmoo(nl, sc, libs, basePeriod);
  TextTable t("per-supply operating points (" + p.name + ", closed at " +
              TextTable::num(1000.0 / basePeriod, 2) + " GHz nominal)");
  t.setHeader({"VDD (V)", "min period (ps)", "Fmax (GHz)",
               "power @ Fmax (uW)", "power @ base freq (uW)"});
  for (const auto& pt : shmoo) {
    t.addRow({TextTable::num(pt.vdd, 2), TextTable::num(pt.minPeriod, 0),
              TextTable::num(pt.fMaxGhz, 3), TextTable::num(pt.power, 0),
              TextTable::num(pt.powerAtBase, 0)});
  }
  t.addFootnote("underdrive trades frequency for quadratic dynamic-power "
                "savings; overdrive buys frequency at a steep energy cost "
                "-- the binning economics of Sec. 1");
  t.print();
  std::puts("");

  TextTable b("cheapest supply per frequency bin");
  b.setHeader({"bin (GHz)", "chosen VDD (V)", "power at bin (uW)"});
  for (double f : {0.3, 0.6, 0.9, 1.2, 1.5}) {
    const int idx = cheapestSupplyForFrequency(shmoo, f);
    if (idx < 0) {
      b.addRow({TextTable::num(f, 2), "unreachable", "-"});
    } else {
      const auto& pt = shmoo[static_cast<std::size_t>(idx)];
      b.addRow({TextTable::num(f, 2), TextTable::num(pt.vdd, 2),
                TextTable::num(pt.power * (f / pt.fMaxGhz), 0)});
    }
  }
  b.print();
  return 0;
}
