/// \file bench_dynamic_ir.cpp
/// \brief Dynamic IR-drop aware timing — the "-dynamic" signoff analysis of
/// the paper's Comment 1 and the "Dynamic IR" care-about (Figs. 2/3, first
/// material at 28nm).
///
/// Switching power is binned over the placement into a rail grid; the
/// resulting local droop slows each region's cells through the device-level
/// voltage sensitivity, and timing is re-run. The bench also shows the
/// footnote-5 decomposition angle: how much of a flat "IR margin" the
/// explicit analysis replaces.

#include <cstdio>

#include "bench_json.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "opt/closure.h"
#include "place/placement.h"
#include "signoff/ir.h"
#include "util/table.h"

using namespace tc;

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_dynamic_ir", argc, argv);
  auto L = characterizedLibrary(LibraryPvt{});
  BlockProfile p = profileC7552();
  p.clockPeriod = 700.0;  // fast clock: high switching power density
  Netlist nl = generateBlock(L, p);
  const Floorplan fp = Floorplan::forDesign(nl, 0.72);
  placeDesign(nl, fp);

  Scenario sc;
  sc.lib = L;
  sc.inputDelay = 200.0;
  {
    nl.clocks().front().period = 4000.0;
    StaEngine probe(nl, sc);
    probe.run();
    nl.clocks().front().period = 4000.0 - probe.wns(Check::kSetup) + 30.0;
  }

  std::puts("== Dynamic IR-aware timing (\"-dynamic\") ==\n");

  const IrDroopMap map = computeIrDroop(nl);
  {
    TextTable t("rail droop map (" + std::to_string(map.nx) + " x " +
                std::to_string(map.ny) + " tiles)");
    t.setHeader({"metric", "value"});
    t.addRow({"worst tile droop (mV)", TextTable::num(map.worstDroopMv, 2)});
    t.addRow({"mean tile droop (mV)", TextTable::num(map.meanDroopMv, 2)});
    t.print();
    std::puts("");
  }

  const DelayScaler scaler(L->pvt().vdd, L->pvt().temp);
  StaEngine eng(nl, sc);
  eng.run();
  const IrTimingResult r = applyIrAwareTiming(eng, map, scaler);

  {
    TextTable t("timing with and without the dynamic-IR analysis");
    t.setHeader({"metric", "quiet rails", "-dynamic"});
    t.addRow({"setup WNS (ps)", TextTable::num(r.setupWnsBefore, 1),
              TextTable::num(r.setupWnsAfter, 1)});
    t.addRow({"hold WNS (ps)", TextTable::num(r.holdWnsBefore, 1),
              TextTable::num(r.holdWnsAfter, 1)});
    t.addRow({"instances derated", "-",
              std::to_string(r.instancesDerated)});
    t.addRow({"worst cell slowdown", "-",
              TextTable::num(r.worstDeratePct, 2) + "%"});
    const Ps cost = r.setupWnsBefore - r.setupWnsAfter;
    t.addFootnote("explicit IR analysis costs " + TextTable::num(cost, 1) +
                  " ps of WNS here -- the amount a flat 'dynamic IR droop "
                  "margin' (footnote 5's rug lists 22 ps) would otherwise "
                  "have to cover for every path, everywhere");
    t.print();
  }
  return 0;
}
