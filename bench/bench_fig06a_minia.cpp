/// \file bench_fig06a_minia.cpp
/// \brief Reproduces Fig. 6(a) / Sec. 2.4 (after Kahng-Lee [24]): minimum
/// implant area (MinIA) violations created by post-placement Vt-swap, and
/// their repair.
///
/// A placed block is leakage-optimized by timing-blind Vt mixing (the
/// classic "Vt-swap first" step of Fig. 1), which creates narrow implant
/// islands. The [24]-style minimal-perturbation fixer (merge / vt-align /
/// ECO-move) is compared against the naive commercial-like baseline
/// (unconditional vt alignment). Paper claim: the proposed methods reduce
/// MinIA violations by up to 100% while satisfying timing/power
/// constraints, with small placement perturbation.

#include <cstdio>

#include "bench_json.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "opt/transforms.h"
#include "place/minia.h"
#include "power/power.h"
#include "sta/engine.h"
#include "util/table.h"

using namespace tc;

namespace {

struct Outcome {
  MinIaFixReport rep;
  MicroWatt leakAfter = 0.0;
  Ps wnsAfter = 0.0;
};

/// Build a *timing-driven* Vt mix on a placed copy of the block (critical
/// cells pushed toward ULVT, relaxed cells recovered toward HVT -- exactly
/// the optimization state in which MinIA islands appear), then fix.
Outcome runFixer(std::shared_ptr<const Library> L, const BlockProfile& p,
                 const Floorplan& fp, bool naive) {
  Netlist nl = generateBlock(L, p);
  placeDesign(nl, fp);
  Scenario sc;
  sc.lib = L;
  sc.inputDelay = 200.0;  // fixed set_input_delay
  // Retune the clock so the shaped design sits just at closure: that is
  // where a timing-oblivious Vt-align visibly breaks the design.
  {
    nl.clocks().front().period = 8000.0;
    StaEngine probe(nl, sc);
    probe.run();
    nl.clocks().front().period =
        0.94 * (8000.0 - probe.wns(Check::kSetup));
  }
  // Timing-driven Vt shaping: speed up the critical cone, recover leakage
  // everywhere else.
  {
    StaEngine eng(nl, sc);
    eng.run();
    RepairConfig rc;
    rc.maxEdits = 100000;
    rc.slackTarget = 40.0;
    vtSwapFix(nl, eng, rc);
    vtSwapFix(nl, eng, rc);  // two steps toward ULVT on critical cells
    rc.leakageSlackFloor = 150.0;
    leakageRecovery(nl, eng, rc);
  }

  StaEngine eng(nl, sc);
  eng.run();

  RowOccupancy occ(nl, fp);
  Outcome out;
  if (naive) {
    out.rep = fixMinIaNaive(nl, occ, fp, 3);
  } else {
    MinIaFixConfig cfg;
    cfg.minSites = 3;
    out.rep = fixMinIa(nl, occ, fp, &eng, cfg);
  }
  out.leakAfter = analyzePower(nl).leakage;
  StaEngine eng2(nl, sc);
  eng2.run();
  out.wnsAfter = eng2.wns(Check::kSetup);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_fig06a_minia", argc, argv);
  auto L = characterizedLibrary(LibraryPvt{});

  std::puts(
      "== Fig. 6(a) / Sec. 2.4: MinIA violations from post-placement "
      "Vt-swap, and their repair ([24]) ==\n");

  TextTable t("MinIA fixing: minimal-perturbation [24] vs naive vt-align");
  t.setHeader({"block", "fixer", "viol before", "viol after", "fixed",
               "vt swaps", "merges", "moves", "displacement (sites)",
               "leakage delta (uW)", "WNS after (ps)"});
  for (const BlockProfile& p : {profileTiny(), profileC5315()}) {
    const Floorplan fp = Floorplan::forDesign(generateBlock(L, p), 0.66);
    for (bool naive : {false, true}) {
      const Outcome o = runFixer(L, p, fp, naive);
      const double fixedPct =
          o.rep.violationsBefore
              ? 100.0 * (o.rep.violationsBefore - o.rep.violationsAfter) /
                    o.rep.violationsBefore
              : 100.0;
      t.addRow({p.name, naive ? "naive vt-align" : "[24]-style",
                std::to_string(o.rep.violationsBefore),
                std::to_string(o.rep.violationsAfter),
                TextTable::num(fixedPct, 1) + "%",
                std::to_string(o.rep.vtSwaps), std::to_string(o.rep.merges),
                std::to_string(o.rep.moves),
                TextTable::num(o.rep.displacementSites, 0),
                TextTable::num(o.rep.leakageDelta, 4),
                TextTable::num(o.wnsAfter, 1)});
    }
  }
  t.addFootnote("paper/[24]: up to 100% of MinIA violations removed while "
                "satisfying timing/power, with minimal placement "
                "perturbation; the naive baseline fixes by unconditional Vt "
                "alignment (leakage/timing oblivious)");
  t.addFootnote("Sec. 2.4: this interference \"weakens or even obviates\" "
                "the placement-independent Vt-swap step of Fig. 1");
  t.print();
  return 0;
}
