/// \file bench_fig09_avs_aging.cpp
/// \brief Reproduces Fig. 9 (after Chan-Chan-Kahng [1]): the tradeoff of
/// average power over a 10-year lifetime versus area, among circuit
/// implementations signed off at different BTI aging corners, assuming DC
/// BTI stress and AVS.
///
/// Each of the four profile-matched circuits (c5315, c7552, AES, MPEG2) is
/// implemented (closure-sized) at 7 assumed-aging signoff corners; each
/// implementation is then lifetime-simulated under the closed AVS loop
/// (voltage raised only as aging demands — which itself accelerates aging).
/// Under-margined corners force high lifetime voltage (power up, possibly
/// infeasible); over-margined corners carry permanent area/cap overhead.

#include <cstdio>

#include "bench_json.h"
#include "liberty/builder.h"
#include "opt/closure.h"
#include "signoff/avs.h"
#include "util/table.h"

using namespace tc;

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_fig09_avs_aging", argc, argv);
  auto L = characterizedLibrary(LibraryPvt{});
  // 7 signoff corners: assumed DC-stress aging the implementation margins
  // for (corner 1 = no aging margin ... corner 7 = 20 years).
  const std::vector<double> corners{0.0, 0.5, 2.0, 5.0, 10.0, 15.0, 20.0};

  AvsConfig cfg;
  cfg.lifetimeYears = 10.0;
  cfg.temp = 105.0;

  std::puts(
      "== Fig. 9: lifetime-average power vs area across BTI aging signoff "
      "corners (DC stress, AVS) ==\n");

  for (BlockProfile p :
       {profileC5315(), profileC7552(), profileAes(), profileMpeg2()}) {
    // Calibrate the mission clock to the block's *optimized* speed: close a
    // probe copy hard, then budget 18% on top — corner 1 (no aging margin)
    // closes trivially, corner 7 (20-year margin) must really work.
    {
      Netlist probeNl = generateBlock(L, p);
      Scenario psc;
      psc.lib = L;
      psc.inputDelay = 150.0;
      probeNl.clocks().front().period = 8000.0;
      {
        StaEngine pre(probeNl, psc);
        pre.run();
        probeNl.clocks().front().period =
            0.90 * (8000.0 - pre.wns(Check::kSetup));
      }
      ClosureLoop loop(probeNl, psc);
      ClosureConfig ccfg;
      ccfg.iterations = 4;
      ccfg.enableHoldFix = false;
      ccfg.repair.maxEdits = 400;
      const ClosureResult r = loop.run(ccfg);
      const Ps dOpt =
          probeNl.clocks().front().period - r.final.setupWns;
      p.clockPeriod = 1.18 * dOpt;
    }
    const auto results = agingSignoffStudy(L, p, corners, cfg);
    // Normalize to the 10-year corner (index 4), as the paper normalizes
    // to 100%.
    const auto& ref = results[4];
    TextTable t("Fig. 9 -- " + p.name);
    t.setHeader({"corner", "assumed aging", "dVt assumed (mV)", "area (%)",
                 "lifetime power (%)", "feasible"});
    for (const auto& r : results) {
      t.addRow({std::to_string(r.corner),
                TextTable::num(r.assumedYears, 1) + " yr",
                TextTable::num(r.assumedDvt * 1000.0, 1),
                TextTable::num(100.0 * r.area / ref.area, 1),
                TextTable::num(100.0 * r.avgLifetimePower /
                                   ref.avgLifetimePower,
                               1),
                r.feasible ? "yes" : "NO"});
    }
    t.addFootnote("paper shape: interior optimum -- underestimating aging "
                  "raises lifetime energy (AVS runs hot); overestimating "
                  "burns area (pessimistic sizing)");
    t.print();
    std::puts("");
  }
  return 0;
}
