/// \file bench_sta_scale.cpp
/// \brief The 10k -> 100k -> 1M instance scale ladder for the SoA timing
/// engine. Each rung generates a profileScaled() block, runs a full GBA
/// pass (cold rc extraction included), then times repropagate() — the
/// forward arrival sweep plus the backward required pull on warm caches —
/// which is exactly the level-sweep work the arena refactor targets. At
/// the 10k and 100k rungs the same sweeps are raced against the pinned
/// pre-refactor AoS propagator (tests/aos_reference.h) and verified
/// bitwise word-for-word, so the reported speedup is an honest
/// same-arithmetic comparison, not a guess; the bench exits 1 on any
/// mismatched bit.
///
/// CI runs the default rungs (10k + 100k) against the checked-in baseline
/// via tools/bench_compare.py: sweep times are gated at the normalized
/// +15% threshold, WNS/violation counts are exact-match correctness
/// fields, and the stable ctr_* counters (rc cache hits/misses) ride
/// along exact-match. The 1M rung (`--rung 1m`) is nightly-only — it
/// proves the arena layout and the batched sweep survive a million
/// instances under ASan, and its metrics are informational.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "aos_reference.h"
#include "bench_json.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "sta/engine.h"
#include "util/table.h"

using namespace tc;

namespace {

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::uint64_t bitsOf(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

/// Word-for-word bitwise comparison of the engine's arena state against
/// the AoS oracle. Returns the number of mismatched words (0 = identical).
long verifyBitwise(const StaEngine& eng, const aosref::AosPropagator& ref) {
  long bad = 0;
  const TimingGraph& g = eng.graph();
  for (VertexId v = 0; v < g.vertexCount(); ++v) {
    const aosref::Vt& r = ref.at(v);
    for (int m = 0; m < 2; ++m)
      for (int tr = 0; tr < 2; ++tr) {
        const Mode mode = static_cast<Mode>(m);
        if (bitsOf(eng.arrivalRaw(v, mode, tr)) != bitsOf(r.arr[m][tr]))
          ++bad;
        if (bitsOf(eng.slewRaw(v, mode, tr)) != bitsOf(r.slew[m][tr])) ++bad;
        if (bitsOf(eng.varRaw(v, mode, tr)) != bitsOf(r.var[m][tr])) ++bad;
      }
    for (int tr = 0; tr < 2; ++tr)
      if (bitsOf(eng.requiredRaw(v, tr)) != bitsOf(ref.required(v, tr)))
        ++bad;
  }
  return bad;
}

struct Rung {
  const char* label;   ///< metric prefix, e.g. "r10k"
  int target;          ///< instance target for profileScaled()
  int sweepIters;      ///< repropagate() timing repetitions (median)
  bool raceAos;        ///< race + bitwise-verify the AoS oracle
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_sta_scale", argc, argv);

  std::string rungArg = "default";
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--rung") rungArg = argv[i + 1];

  const Rung r10k{"r10k", 10'000, 5, true};
  const Rung r100k{"r100k", 100'000, 3, true};
  // The 1M rung never races the AoS oracle: the point of the nightly leg
  // is that the arena + batched sweep complete under ASan at that scale,
  // and one oracle pass would double an already long sanitized run.
  const Rung r1m{"r1m", 1'000'000, 1, false};

  std::vector<Rung> rungs;
  if (rungArg == "default") {
    rungs = {r10k, r100k};
  } else if (rungArg == "10k") {
    rungs = {r10k};
  } else if (rungArg == "100k") {
    rungs = {r100k};
  } else if (rungArg == "1m") {
    rungs = {r1m};
  } else if (rungArg == "all") {
    rungs = {r10k, r100k, r1m};
  } else {
    std::fprintf(stderr,
                 "bench_sta_scale: unknown --rung '%s' "
                 "(want 10k|100k|1m|all)\n",
                 rungArg.c_str());
    return 2;
  }

  auto L = characterizedLibrary(LibraryPvt{});

  std::puts("== SoA timing engine: instance scale ladder ==\n");
  TextTable t("Full run + warm level sweeps per rung (LVF, serial)");
  t.setHeader({"rung", "instances", "levels", "netgen (ms)", "full run (ms)",
               "sweep (ms)", "Minst/s", "AoS sweep (ms)", "speedup",
               "WNS (ps)", "setup viol"});

  bool anyMismatch = false;
  for (const Rung& rung : rungs) {
    const std::string px = std::string(rung.label) + "_";

    const auto tGen = std::chrono::steady_clock::now();
    const BlockProfile p = profileScaled(rung.target);
    const Netlist nl = generateBlock(L, p);
    const double genMs = msSince(tGen);

    Scenario sc;
    sc.lib = L;
    sc.derate.mode = DerateMode::kLvf;

    const auto tRun = std::chrono::steady_clock::now();
    StaEngine eng(nl, sc);
    eng.run();
    const double runMs = msSince(tRun);

    // Warm-cache sweep isolation: repropagate() re-derives every arrival
    // and required from scratch, so each iteration does the full forward +
    // backward level-sweep work and nothing else.
    std::vector<double> sweeps;
    for (int i = 0; i < rung.sweepIters; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      eng.repropagate();
      sweeps.push_back(msSince(t0));
    }
    const double sweepMs = median(sweeps);
    const double minstPerS =
        nl.instanceCount() / sweepMs / 1000.0;  // (inst/ms)/1000 = M/s

    double aosMs = 0.0, speedup = 0.0;
    if (rung.raceAos) {
      aosref::AosPropagator ref(eng);
      const auto t0 = std::chrono::steady_clock::now();
      ref.runForward();
      ref.runBackward();
      aosMs = msSince(t0);
      speedup = aosMs / sweepMs;
      const long bad = verifyBitwise(eng, ref);
      if (bad != 0) {
        std::fprintf(stderr,
                     "bench_sta_scale: %s: %ld words differ between the "
                     "SoA engine and the AoS oracle\n",
                     rung.label, bad);
        anyMismatch = true;
      }
      report.metric(px + "bitwise_equal", bad == 0 ? 1.0 : 0.0);
    }

    t.addRow({rung.label, std::to_string(nl.instanceCount()),
              std::to_string(eng.graph().levelCount()),
              TextTable::num(genMs, 0), TextTable::num(runMs, 0),
              TextTable::num(sweepMs, 1), TextTable::num(minstPerS, 2),
              rung.raceAos ? TextTable::num(aosMs, 1) : "-",
              rung.raceAos ? TextTable::num(speedup, 2) + "x" : "-",
              TextTable::num(eng.wns(Check::kSetup), 1),
              std::to_string(eng.violationCount(Check::kSetup))});

    report.metric(px + "instances", nl.instanceCount(), "count");
    report.metric(px + "levels", eng.graph().levelCount(), "count");
    report.metric(px + "netgen_ms", genMs, "ms");
    report.metric(px + "full_run_ms", runMs, "ms");
    report.metric(px + "sweep_ms", sweepMs, "ms");
    report.metric(px + "sweep_minst_per_s", minstPerS, "info");
    if (rung.raceAos) {
      report.metric(px + "aos_sweep_ms", aosMs, "ms");
      report.metric(px + "sweep_speedup", speedup, "x");
    }
    report.metric(px + "wns_ps", eng.wns(Check::kSetup), "ps");
    report.metric(px + "setup_violations", eng.violationCount(Check::kSetup),
                  "count");
  }

  t.addFootnote("sweep = repropagate(): forward arrival + backward required "
                "level sweeps on warm rc caches (median of repeats)");
  t.addFootnote("AoS sweep = the pinned pre-refactor per-vertex-struct "
                "propagator on the same design, verified bit-identical");
  t.print();

  return anyMismatch ? 1 : 0;
}
