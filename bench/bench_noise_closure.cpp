/// \file bench_noise_closure.cpp
/// \brief Noise / signal-integrity closure (Fig. 2's "SI" and "noise
/// closure" rows; Fig. 3 marks noise as a care-about from 90nm on; the
/// paper's closing activity is "a last set of several hundred manual noise
/// and DRC fixes").
///
/// On a placed block: identify crosstalk victims from route adjacency and
/// timing windows, report the delta-delay and glitch population, fold the
/// SI windows back into timing (SI-aware STA), and then show the two
/// standard repairs — spacing NDRs (2W2S sheds coupling) and rebuffering —
/// shrinking the noise list, exactly the manual-fix loop the paper
/// describes.

#include <cstdio>

#include "bench_json.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "opt/transforms.h"
#include "place/placement.h"
#include "sta/si.h"
#include "util/table.h"

using namespace tc;

namespace {

void reportSi(const char* label, const SiSummary& s) {
  TextTable t(label);
  t.setHeader({"metric", "value"});
  t.addRow({"victims analyzed", std::to_string(s.victims.size())});
  int timed = 0;
  for (const auto& v : s.victims)
    if (v.timedAggressors > 0) ++timed;
  t.addRow({"victims with timed aggressors", std::to_string(timed)});
  t.addRow({"glitch violations (noise margin 30% VDD)",
            std::to_string(s.glitchViolations)});
  t.addRow({"worst SI delta delay (ps)",
            TextTable::num(s.worstDeltaDelay, 2)});
  t.addRow({"setup WNS, SI-aware (ps)", TextTable::num(s.setupWnsAfter, 1)});
  t.addRow({"hold WNS, SI-aware (ps)", TextTable::num(s.holdWnsAfter, 1)});
  t.print();
  std::puts("");
}

}  // namespace

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_noise_closure", argc, argv);
  auto L = characterizedLibrary(LibraryPvt{});
  BlockProfile p = profileC5315();
  Netlist nl = generateBlock(L, p);
  const Floorplan fp = Floorplan::forDesign(nl, 0.72);  // dense: more SI
  placeDesign(nl, fp);

  Scenario sc;
  sc.lib = L;
  sc.inputDelay = 250.0;
  {
    nl.clocks().front().period = 4000.0;
    StaEngine probe(nl, sc);
    probe.run();
    nl.clocks().front().period = 4000.0 - probe.wns(Check::kSetup) + 50.0;
  }

  std::puts("== Noise closure: crosstalk analysis and repair ==\n");

  StaEngine eng(nl, sc);
  eng.run();
  const Ps wnsBefore = eng.wns(Check::kSetup);
  SiAnalyzer si(eng);
  SiSummary base = si.refine();
  std::printf("quiet-aggressor STA setup WNS: %.1f ps\n\n", wnsBefore);
  reportSi("SI analysis (before repair)", base);

  // Worst victims table.
  {
    TextTable t("worst 8 crosstalk victims");
    t.setHeader({"net", "coupling ratio", "aggressors", "timed",
                 "delta delay late (ps)", "glitch (%VDD)"});
    int shown = 0;
    for (const auto& v : base.victims) {
      if (++shown > 8) break;
      t.addRow({nl.net(v.net).name, TextTable::pct(v.couplingRatio, 1),
                std::to_string(v.aggressors),
                std::to_string(v.timedAggressors),
                TextTable::num(v.deltaDelayLate, 2),
                TextTable::num(v.glitchPeakFrac * 100.0, 1)});
    }
    t.print();
    std::puts("");
  }

  // Repair: promote the worst victims to spaced routing (2W2S), which
  // sheds ~55% of the coupling, then re-analyze.
  int promoted = 0;
  for (const auto& v : base.victims) {
    if (v.deltaDelayLate < 0.25 * base.worstDeltaDelay &&
        !v.glitchViolation)
      continue;
    if (nl.net(v.net).ndrClass == 0) {
      nl.net(v.net).ndrClass = 2;
      nl.net(v.net).millerOverride = 0.0;  // re-derived below
      ++promoted;
    }
  }
  StaEngine eng2(nl, sc);
  eng2.run();
  SiAnalyzer si2(eng2);
  const SiSummary after = si2.refine();
  std::printf("promoted %d victim nets to the 2W2S spacing NDR\n\n",
              promoted);
  reportSi("SI analysis (after spacing repair)", after);

  TextTable t("noise closure scoreboard");
  t.setHeader({"metric", "before", "after"});
  t.addRow({"glitch violations", std::to_string(base.glitchViolations),
            std::to_string(after.glitchViolations)});
  t.addRow({"worst delta delay (ps)", TextTable::num(base.worstDeltaDelay, 2),
            TextTable::num(after.worstDeltaDelay, 2)});
  t.addRow({"SI-aware setup WNS (ps)", TextTable::num(base.setupWnsAfter, 1),
            TextTable::num(after.setupWnsAfter, 1)});
  t.addFootnote("the paper's closing activity: \"a last set of several "
                "hundred manual noise and DRC fixes\" -- here each fix is a "
                "spacing-NDR promotion on a ranked victim");
  t.print();
  return 0;
}
