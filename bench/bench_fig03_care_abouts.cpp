/// \file bench_fig03_care_abouts.cpp
/// \brief Reproduces Fig. 3: the evolution of timing-closure care-abouts
/// mapped against technology nodes (90nm -> 7nm), rendered as the matrix of
/// which concern becomes material at which node, plus the per-node physical
/// drivers (supply range, BEOL resistance, patterning) this framework
/// actually models.

#include <cstdio>
#include <string>

#include "bench_json.h"
#include "device/tech.h"
#include "util/table.h"

using namespace tc;

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_fig03_care_abouts", argc, argv);
  const auto& nodes = technologyTimeline();

  {
    TextTable t("Fig. 3 -- timing closure care-abouts vs technology node");
    std::vector<std::string> header{"concern"};
    for (const auto& n : nodes) header.push_back(n.name);
    t.setHeader(header);
    for (int c = 0; c < static_cast<int>(CareAbout::kCount); ++c) {
      const auto concern = static_cast<CareAbout>(c);
      std::vector<std::string> row{toString(concern)};
      for (const auto& n : nodes) {
        bool active = false;
        for (CareAbout a : activeConcerns(n))
          if (a == concern) active = true;
        bool introduced = false;
        for (CareAbout a : n.newConcerns)
          if (a == concern) introduced = true;
        row.push_back(introduced ? "NEW" : (active ? "x" : ""));
      }
      t.addRow(row);
    }
    t.addFootnote("NEW = first node where the concern becomes material; "
                  "x = carried forward (concerns accumulate, none retire)");
    t.print();
    std::puts("");
  }

  {
    TextTable t("Per-node physical drivers (as modeled by this framework)");
    t.setHeader({"node", "VDD nom (V)", "VDD range (V)", "M2 R scale",
                 "DP layers", "MinIA (sites)", "FinFET"});
    for (const auto& n : nodes) {
      t.addRow({n.name, TextTable::num(n.vddNominal, 2),
                TextTable::num(n.vddMin, 2) + " - " +
                    TextTable::num(n.vddMax, 2),
                TextTable::num(n.wireResScale, 2),
                std::to_string(n.doublePatternedLayers),
                n.minImplantWidthSites
                    ? std::to_string(n.minImplantWidthSites)
                    : "-",
                n.finfet ? "yes" : "no"});
    }
    t.addFootnote("16/14nm: core logic supply scalable 0.46-1.25V (paper "
                  "footnote 3) -- the corner-explosion driver");
    t.print();
  }
  return 0;
}
