/// \file bench_fig10_flexflop.cpp
/// \brief Reproduces Fig. 10 and the Sec. 3.4 margin-recovery result
/// (after Kahng-Lee [23]).
///
/// (i)/(ii) c2q delay vs setup time and vs hold time, from transient
/// simulation of the master-slave flop: c2q "rapidly increases when the
/// setup or hold time is decreased", the region discarded by the fixed 10%
/// pushout criterion.
/// (iii) the setup-vs-hold tradeoff at a fixed c2q budget.
/// Then: flexible-flop margin recovery on a setup-critical block — the
/// paper reports up to 130ps worst-slack gain in a 65nm library; the shape
/// target here is a clearly positive WNS gain.

#include <cstdio>

#include "bench_json.h"
#include "device/latch.h"
#include "liberty/builder.h"
#include "liberty/interdep.h"
#include "network/netgen.h"
#include "opt/closure.h"
#include "signoff/flexflop.h"
#include "sta/engine.h"
#include "util/table.h"

using namespace tc;

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_fig10_flexflop", argc, argv);
  LatchConditions lc;  // 0.9V / 25C SVT flop
  LatchSim sim(lc);
  const Ps c2q0 = sim.nominalClockToQ();
  const InterdepFlopModel model = fitInterdepModel(sim);

  {
    TextTable t("Fig. 10(i) -- c2q delay vs setup time (hold generous)");
    t.setHeader({"setup time (ps)", "c2q (ps, transient sim)",
                 "c2q (ps, fitted surface)", "pushout vs nominal"});
    for (Ps s = 60.0; s >= model.sMin - 2.0; s -= 4.0) {
      const LatchResult r = sim.capture(s, 300.0);
      if (!r.captured) {
        t.addRow({TextTable::num(s, 1), "capture FAILS", "-", "-"});
        break;
      }
      t.addRow({TextTable::num(s, 1), TextTable::num(r.clockToQ, 2),
                TextTable::num(model.clockToQ(s, 300.0), 2),
                TextTable::pct(r.clockToQ / c2q0 - 1.0, 1)});
    }
    t.addFootnote("nominal c2q = " + TextTable::num(c2q0, 2) +
                  " ps; conventional (10% pushout) setup = " +
                  TextTable::num(model.conventionalSetup(0.10), 2) + " ps");
    t.print();
    std::puts("");
  }

  {
    TextTable t("Fig. 10(ii) -- c2q delay vs hold time (setup generous)");
    t.setHeader({"hold time (ps)", "c2q (ps, transient sim)", "pushout"});
    for (Ps h = 40.0; h >= model.hMin - 2.0; h -= 4.0) {
      const LatchResult r = sim.capture(300.0, h);
      if (!r.captured) {
        t.addRow({TextTable::num(h, 1), "capture FAILS", "-"});
        break;
      }
      t.addRow({TextTable::num(h, 1), TextTable::num(r.clockToQ, 2),
                TextTable::pct(r.clockToQ / c2q0 - 1.0, 1)});
    }
    t.print();
    std::puts("");
  }

  {
    const Ps suConv = model.conventionalSetup(0.10);
    const Ps hConv = model.conventionalHold(0.10);
    TextTable t(
        "Fig. 10(iii) -- setup vs hold tradeoff at fixed c2q budgets");
    const auto col = [](Ps v) { return TextTable::num(v, 2); };
    t.setHeader({"c2q budget", "setup@hold=" + col(hConv + 20.0),
                 "setup@hold=" + col(hConv), "hold@setup=" + col(suConv + 10),
                 "hold@setup=" + col(suConv - 2.0)});
    for (double stretch : {1.12, 1.20, 1.30, 1.45}) {
      const Ps b = c2q0 * stretch;
      t.addRow({TextTable::num(stretch, 2) + " x c2q0",
                col(model.setupForC2q(b, hConv + 20.0)),
                col(model.setupForC2q(b, hConv)),
                col(model.holdForC2q(b, suConv + 10.0)),
                col(model.holdForC2q(b, suConv - 2.0))});
    }
    t.addFootnote("conventional point: setup=" + col(suConv) + " hold=" +
                  col(hConv) + " at c2q=1.10 x c2q0");
    t.addFootnote("smaller setup demands larger hold (and vice versa) on an "
                  "iso-c2q contour -- the interdependence conventional "
                  "fixed-point characterization discards");
    t.print();
    std::puts("");
  }

  {
    // [23]-style margin recovery. Realistic deployment: the design is first
    // pushed near closure by the Fig. 1 loop, then the clock is retuned to
    // the achieved frequency (WNS ~ -15ps) — the regime where squeezing
    // "free" margin out of flop boundaries is what ships the part.
    auto L = characterizedLibrary(LibraryPvt{});
    TextTable t(
        "Sec. 3.4 -- flexible flip-flop margin recovery ([23]) near "
        "closure");
    t.setHeader({"block", "tuned period (ps)", "WNS before (ps)",
                 "WNS after (ps)", "WNS gain (ps)", "TNS before",
                 "TNS after", "adjusted flops", "sweeps"});
    for (const BlockProfile& profile :
         {profileTiny(), profileC5315(), profileC7552()}) {
      BlockProfile p = profile;
      Netlist nl = generateBlock(L, p);
      Scenario sc;
      sc.lib = L;
      {
        ClosureLoop loop(nl, sc);
        ClosureConfig ccfg;
        ccfg.iterations = 4;
        ccfg.enableHoldFix = false;
        ccfg.repair.maxEdits = 400;
        loop.run(ccfg);
      }
      // Retune the clock so the block sits 15ps short of closure.
      {
        StaEngine probe(nl, sc);
        probe.run();
        nl.clocks().front().period -= probe.wns(Check::kSetup) + 15.0;
      }
      StaEngine eng(nl, sc);
      eng.run();
      FlexFlopConfig fcfg;
      fcfg.maxIterations = 20;
      fcfg.maxC2qStretch = 1.8;
      fcfg.minImprovement = 0.1;
      const FlexFlopResult res = recoverFlexFlopMargin(eng, fcfg);
      t.addRow({p.name, TextTable::num(nl.clocks().front().period, 0),
                TextTable::num(res.wnsBefore, 1),
                TextTable::num(res.wnsAfter, 1),
                TextTable::num(res.wnsGain(), 1),
                TextTable::num(res.tnsBefore, 0),
                TextTable::num(res.tnsAfter, 0),
                std::to_string(res.adjustedFlops),
                std::to_string(res.iterations)});
    }
    t.addFootnote("paper/[23]: worst timing slack increased by up to 130ps "
                  "(65nm library, larger flop time constants); shape "
                  "target here is a clearly positive WNS gain");
    t.print();
  }
  return 0;
}
