/// \file bench_corner_explosion.cpp
/// \brief Reproduces the Sec. 2.3 "corner super-explosion" accounting: how
/// the number of signoff views multiplies across nodes (modes x V x T x
/// process x BEOL corners x async cross-corners), and how much a dominance-
/// based pruning (the "central engineering team" subset) recovers — at the
/// cost the paper warns about.

#include <cstdio>

#include "signoff/corners.h"
#include "util/table.h"

using namespace tc;

int main() {
  {
    TextTable t("Sec. 2.3 -- signoff view counts by node");
    t.setHeader({"node", "modes", "voltages", "temps", "process", "BEOL",
                 "async pairs", "total views", "pruned setup", "pruned hold"});
    for (int nm : {28, 20, 16, 10}) {
      const CornerUniverse u = CornerUniverse::socUniverse(nm);
      const auto setup = pruneForSetup(u);
      const auto hold = pruneForHold(u);
      t.addRow({std::to_string(nm) + "nm", std::to_string(u.modes.size()),
                std::to_string(u.voltages.size()),
                std::to_string(u.temps.size()),
                std::to_string(u.process.size()),
                std::to_string(u.beol.size()),
                std::to_string(u.asyncDomainPairs),
                std::to_string(u.totalViews()),
                std::to_string(setup.size()), std::to_string(hold.size())});
    }
    t.addFootnote(
        "paper: hundreds of scenarios at leading-edge products; the pruned "
        "subset trades schedule against coverage risk");
    t.print();
    std::puts("");
  }

  {
    const CornerUniverse u = CornerUniverse::socUniverse(16);
    const auto setup = pruneForSetup(u);
    TextTable t("Dominant setup views retained at 16nm (device-model-scored)");
    t.setHeader({"view", "FO4-ish stage delay score (ps)"});
    for (const auto& v : setup)
      t.addRow({v.name(), TextTable::num(viewDelayScore(v), 2)});
    t.addFootnote(
        "per mode: the slowest (V,T,P) view, its temperature-inversion twin, "
        "each at both Cw and RCw (gate- vs wire-dominated paths)");
    t.print();
  }
  return 0;
}
