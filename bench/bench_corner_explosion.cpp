/// \file bench_corner_explosion.cpp
/// \brief The Sec. 2.3 "corner super-explosion", twice over: first the
/// accounting (how signoff view counts multiply across nodes and what
/// dominance pruning recovers), then the *cost* — the pruned view set run
/// through full STA, serial versus the parallel MCMM runtime, which is the
/// wall-clock side of the explosion a signoff team actually pays.
///
/// Third act: the same pruned view set through the crash-isolated process
/// farm (src/signoff/farm.h) raced against the in-process runtime — the
/// deployment shape a signoff team actually uses, paying fork/snapshot/IPC
/// overhead for fault isolation. The race is gated in CI: the farm result
/// must stay bit-identical with zero quarantines.
///
/// Flags: --serial            run only the serial reference
///        --threads N         pool width for the parallel run (default 8)
///        --farm-workers N    farm process count (default: --threads)
///        --no-farm           skip the farm race
///        --gates N           synthetic block size (default 3000)
///        --json <path>       machine-readable results (CI artifact)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "bench_json.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "signoff/corners.h"
#include "signoff/farm.h"
#include "util/table.h"

using namespace tc;

namespace {

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// The pruned dominant views of the 16nm universe, mapped onto Scenarios
/// (quick-characterized libraries; distinct PVTs are shared through the
/// characterization cache).
std::vector<Scenario> scenariosFromPrunedViews() {
  const CornerUniverse u = CornerUniverse::socUniverse(16);
  std::vector<ViewDef> views;
  // One mode's setup views (worst + temperature-inversion twin, Cw/RCw)
  // plus the hold views: the per-mode libraries are identical, so "func"
  // stands in for every mode without changing the timing work per view.
  CornerUniverse funcOnly = u;
  funcOnly.modes = {"func"};
  for (const ViewDef& v : pruneForSetup(funcOnly)) views.push_back(v);
  for (const ViewDef& v : pruneForHold(funcOnly)) views.push_back(v);
  ViewDef typical;
  typical.mode = "func";
  views.push_back(typical);

  std::vector<Scenario> out;
  for (ViewDef v : views) {
    // Deep-underdrive views (16nm vddMin = 0.46V) sit below where the
    // transient characterizer settles; walk the supply up until the
    // library characterizes, keeping the view name honest.
    std::shared_ptr<const Library> lib;
    for (; v.vdd <= 1.3; v.vdd += 0.05) {
      try {
        lib = characterizedLibrary(LibraryPvt{v.process, v.vdd, v.temp},
                                   /*quick=*/true);
        break;
      } catch (const std::runtime_error&) {
      }
    }
    if (!lib) continue;
    Scenario sc;
    sc.name = v.name();
    sc.lib = std::move(lib);
    sc.beol = v.beol;
    sc.techNm = 16;
    out.push_back(sc);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_corner_explosion", argc, argv);
  bool serialOnly = false;
  bool farmRace = true;
  int threads = 8;
  int farmWorkers = -1;
  int gates = 3000;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--serial")) serialOnly = true;
    if (!std::strcmp(argv[i], "--no-farm")) farmRace = false;
    if (!std::strcmp(argv[i], "--threads") && i + 1 < argc)
      threads = std::atoi(argv[i + 1]);
    if (!std::strcmp(argv[i], "--farm-workers") && i + 1 < argc)
      farmWorkers = std::atoi(argv[i + 1]);
    if (!std::strcmp(argv[i], "--gates") && i + 1 < argc)
      gates = std::atoi(argv[i + 1]);
  }
  if (farmWorkers <= 0) farmWorkers = threads;

  {
    TextTable t("Sec. 2.3 -- signoff view counts by node");
    t.setHeader({"node", "modes", "voltages", "temps", "process", "BEOL",
                 "async pairs", "total views", "pruned setup", "pruned hold"});
    for (int nm : {28, 20, 16, 10}) {
      const CornerUniverse u = CornerUniverse::socUniverse(nm);
      const auto setup = pruneForSetup(u);
      const auto hold = pruneForHold(u);
      t.addRow({std::to_string(nm) + "nm", std::to_string(u.modes.size()),
                std::to_string(u.voltages.size()),
                std::to_string(u.temps.size()),
                std::to_string(u.process.size()),
                std::to_string(u.beol.size()),
                std::to_string(u.asyncDomainPairs),
                std::to_string(u.totalViews()),
                std::to_string(setup.size()), std::to_string(hold.size())});
      if (nm == 16) {
        report.metric("total_views_16nm",
                      static_cast<double>(u.totalViews()));
        report.metric("pruned_setup_16nm", static_cast<double>(setup.size()));
      }
    }
    t.addFootnote(
        "paper: hundreds of scenarios at leading-edge products; the pruned "
        "subset trades schedule against coverage risk");
    t.print();
    std::puts("");
  }

  {
    const CornerUniverse u = CornerUniverse::socUniverse(16);
    const auto setup = pruneForSetup(u);
    TextTable t("Dominant setup views retained at 16nm (device-model-scored)");
    t.setHeader({"view", "FO4-ish stage delay score (ps)"});
    for (const auto& v : setup)
      t.addRow({v.name(), TextTable::num(viewDelayScore(v), 2)});
    t.addFootnote(
        "per mode: the slowest (V,T,P) view, its temperature-inversion twin, "
        "each at both Cw and RCw (gate- vs wire-dominated paths)");
    t.print();
    std::puts("");
  }

  // --- The explosion at wall-clock: pruned views through full STA ---------
  const std::vector<Scenario> scenarios = scenariosFromPrunedViews();
  BlockProfile profile = profileTiny();
  profile.numGates = gates;
  profile.numFlops = std::max(gates / 12, 8);
  profile.levels = 16;
  profile.clockPeriod = 1200.0;
  const Netlist nl = generateBlock(scenarios.front().lib, profile);

  McmmRunner runner(nl, scenarios);

  const auto t0 = std::chrono::steady_clock::now();
  const McmmResult serial = runner.run(McmmOptions{});  // no pool
  const double serialMs = msSince(t0);

  // Per-scenario wall clock, captured before any later run() overwrites
  // the side channel. The spread is what farm scheduling actually fights:
  // the slowest view decides the pass, and a spread of 2-3x across views
  // is what makes straggler re-dispatch worth its duplicates.
  const std::vector<double> perScenarioMs = runner.scenarioElapsedMs();

  TextTable t("pruned 16nm views through full STA (" +
              std::to_string(gates) + " gates)");
  t.setHeader({"view", "setup WNS (ps)", "#setup", "hold WNS (ps)", "#hold",
               "wall (ms)"});
  for (std::size_t i = 0; i < serial.scenarios.size(); ++i) {
    const auto& s = serial.scenarios[i];
    t.addRow({s.scenario, TextTable::num(s.setupWns, 1),
              std::to_string(s.setupViolations), TextTable::num(s.holdWns, 1),
              std::to_string(s.holdViolations),
              i < perScenarioMs.size() ? TextTable::num(perScenarioMs[i], 1)
                                       : "-"});
  }
  t.print();

  std::printf("\nserial MCMM: %zu scenarios in %.1f ms\n", scenarios.size(),
              serialMs);
  if (!perScenarioMs.empty()) {
    std::vector<double> sorted = perScenarioMs;
    std::sort(sorted.begin(), sorted.end());
    const double minMs = sorted.front();
    const double maxMs = sorted.back();
    const double medianMs = sorted[sorted.size() / 2];
    std::printf("per-scenario wall clock: min %.1f / median %.1f / max %.1f "
                "ms  (spread %.2fx over median)\n",
                minMs, medianMs, maxMs, maxMs / medianMs);
    report.metric("scenario_min_ms", minMs, "ms");
    report.metric("scenario_median_ms", medianMs, "ms");
    report.metric("scenario_max_ms", maxMs, "ms");
    report.metric("scenario_spread", maxMs / medianMs, "x");
  }
  report.metric("scenarios", static_cast<double>(scenarios.size()));
  report.metric("gates", static_cast<double>(gates));
  report.metric("serial_ms", serialMs, "ms");
  report.metric("setup_wns_ps", serial.wns(Check::kSetup), "ps");
  report.metric("setup_tns_ps", serial.tns(Check::kSetup), "ps");
  report.metric("hold_wns_ps", serial.wns(Check::kHold), "ps");

  if (!serialOnly) {
    ThreadPool pool(threads);
    McmmOptions opt;
    opt.pool = &pool;
    const auto t1 = std::chrono::steady_clock::now();
    const McmmResult parallel = runner.run(opt);
    const double parallelMs = msSince(t1);

    // The parallel runtime must be a pure accelerator: identical numbers.
    bool identical = parallel.scenarios.size() == serial.scenarios.size();
    for (std::size_t i = 0; identical && i < parallel.scenarios.size(); ++i)
      identical = parallel.scenarios[i].setupWns == serial.scenarios[i].setupWns &&
                  parallel.scenarios[i].holdWns == serial.scenarios[i].holdWns &&
                  parallel.scenarios[i].setupTns == serial.scenarios[i].setupTns;
    std::printf("parallel MCMM (%d threads): %.1f ms  ->  %.2fx speedup, "
                "results %s\n",
                threads, parallelMs, serialMs / parallelMs,
                identical ? "bit-identical" : "MISMATCH");
    report.metric("threads", threads);
    report.metric("parallel_ms", parallelMs, "ms");
    report.metric("speedup", serialMs / parallelMs, "x");
    report.metric("identical", identical ? 1.0 : 0.0);
    if (!identical) return 1;
  }

  if (!serialOnly && farmRace) {
    // The same views through worker *processes*: snapshot handoff, fork,
    // frames over pipes. Overhead buys crash isolation — the race keeps
    // that overhead honest, and the identity + quarantine checks are the
    // CI gate on the farm's determinism contract.
    FarmOptions fopt;
    fopt.workers = farmWorkers;
    FarmStats stats;
    const auto t2 = std::chrono::steady_clock::now();
    const McmmResult farm = runMcmmFarm(nl, scenarios, fopt, &stats);
    const double farmMs = msSince(t2);

    bool identical = farm.scenarios.size() == serial.scenarios.size();
    for (std::size_t i = 0; identical && i < farm.scenarios.size(); ++i)
      identical = farm.scenarios[i].setupWns == serial.scenarios[i].setupWns &&
                  farm.scenarios[i].holdWns == serial.scenarios[i].holdWns &&
                  farm.scenarios[i].setupTns == serial.scenarios[i].setupTns;
    std::printf("farm MCMM (%d worker processes): %.1f ms  ->  %.2fx vs "
                "serial, %d attempts, %d quarantined, results %s\n",
                farmWorkers, farmMs, serialMs / farmMs,
                stats.attemptsLaunched, stats.quarantined,
                identical ? "bit-identical" : "MISMATCH");
    report.metric("farm_workers", farmWorkers);
    report.metric("farm_ms", farmMs, "ms");
    report.metric("farm_speedup", serialMs / farmMs, "x");
    report.metric("farm_identical", identical ? 1.0 : 0.0);
    report.metric("farm_quarantined", static_cast<double>(stats.quarantined));
    if (!identical || stats.quarantined != 0) return 1;
  }
  return 0;
}
