/// \file bench_corner_explosion.cpp
/// \brief The Sec. 2.3 "corner super-explosion", twice over: first the
/// accounting (how signoff view counts multiply across nodes and what
/// dominance pruning recovers), then the *cost* — the pruned view set run
/// through full STA, serial versus the parallel MCMM runtime, which is the
/// wall-clock side of the explosion a signoff team actually pays.
///
/// Flags: --serial            run only the serial reference
///        --threads N         pool width for the parallel run (default 8)
///        --gates N           synthetic block size (default 3000)
///        --json <path>       machine-readable results (CI artifact)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "bench_json.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "signoff/corners.h"
#include "util/table.h"

using namespace tc;

namespace {

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// The pruned dominant views of the 16nm universe, mapped onto Scenarios
/// (quick-characterized libraries; distinct PVTs are shared through the
/// characterization cache).
std::vector<Scenario> scenariosFromPrunedViews() {
  const CornerUniverse u = CornerUniverse::socUniverse(16);
  std::vector<ViewDef> views;
  // One mode's setup views (worst + temperature-inversion twin, Cw/RCw)
  // plus the hold views: the per-mode libraries are identical, so "func"
  // stands in for every mode without changing the timing work per view.
  CornerUniverse funcOnly = u;
  funcOnly.modes = {"func"};
  for (const ViewDef& v : pruneForSetup(funcOnly)) views.push_back(v);
  for (const ViewDef& v : pruneForHold(funcOnly)) views.push_back(v);
  ViewDef typical;
  typical.mode = "func";
  views.push_back(typical);

  std::vector<Scenario> out;
  for (ViewDef v : views) {
    // Deep-underdrive views (16nm vddMin = 0.46V) sit below where the
    // transient characterizer settles; walk the supply up until the
    // library characterizes, keeping the view name honest.
    std::shared_ptr<const Library> lib;
    for (; v.vdd <= 1.3; v.vdd += 0.05) {
      try {
        lib = characterizedLibrary(LibraryPvt{v.process, v.vdd, v.temp},
                                   /*quick=*/true);
        break;
      } catch (const std::runtime_error&) {
      }
    }
    if (!lib) continue;
    Scenario sc;
    sc.name = v.name();
    sc.lib = std::move(lib);
    sc.beol = v.beol;
    sc.techNm = 16;
    out.push_back(sc);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_corner_explosion", argc, argv);
  bool serialOnly = false;
  int threads = 8;
  int gates = 3000;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--serial")) serialOnly = true;
    if (!std::strcmp(argv[i], "--threads") && i + 1 < argc)
      threads = std::atoi(argv[i + 1]);
    if (!std::strcmp(argv[i], "--gates") && i + 1 < argc)
      gates = std::atoi(argv[i + 1]);
  }

  {
    TextTable t("Sec. 2.3 -- signoff view counts by node");
    t.setHeader({"node", "modes", "voltages", "temps", "process", "BEOL",
                 "async pairs", "total views", "pruned setup", "pruned hold"});
    for (int nm : {28, 20, 16, 10}) {
      const CornerUniverse u = CornerUniverse::socUniverse(nm);
      const auto setup = pruneForSetup(u);
      const auto hold = pruneForHold(u);
      t.addRow({std::to_string(nm) + "nm", std::to_string(u.modes.size()),
                std::to_string(u.voltages.size()),
                std::to_string(u.temps.size()),
                std::to_string(u.process.size()),
                std::to_string(u.beol.size()),
                std::to_string(u.asyncDomainPairs),
                std::to_string(u.totalViews()),
                std::to_string(setup.size()), std::to_string(hold.size())});
      if (nm == 16) {
        report.metric("total_views_16nm",
                      static_cast<double>(u.totalViews()));
        report.metric("pruned_setup_16nm", static_cast<double>(setup.size()));
      }
    }
    t.addFootnote(
        "paper: hundreds of scenarios at leading-edge products; the pruned "
        "subset trades schedule against coverage risk");
    t.print();
    std::puts("");
  }

  {
    const CornerUniverse u = CornerUniverse::socUniverse(16);
    const auto setup = pruneForSetup(u);
    TextTable t("Dominant setup views retained at 16nm (device-model-scored)");
    t.setHeader({"view", "FO4-ish stage delay score (ps)"});
    for (const auto& v : setup)
      t.addRow({v.name(), TextTable::num(viewDelayScore(v), 2)});
    t.addFootnote(
        "per mode: the slowest (V,T,P) view, its temperature-inversion twin, "
        "each at both Cw and RCw (gate- vs wire-dominated paths)");
    t.print();
    std::puts("");
  }

  // --- The explosion at wall-clock: pruned views through full STA ---------
  const std::vector<Scenario> scenarios = scenariosFromPrunedViews();
  BlockProfile profile = profileTiny();
  profile.numGates = gates;
  profile.numFlops = std::max(gates / 12, 8);
  profile.levels = 16;
  profile.clockPeriod = 1200.0;
  const Netlist nl = generateBlock(scenarios.front().lib, profile);

  McmmRunner runner(nl, scenarios);

  const auto t0 = std::chrono::steady_clock::now();
  const McmmResult serial = runner.run(McmmOptions{});  // no pool
  const double serialMs = msSince(t0);

  TextTable t("pruned 16nm views through full STA (" +
              std::to_string(gates) + " gates)");
  t.setHeader({"view", "setup WNS (ps)", "#setup", "hold WNS (ps)", "#hold"});
  for (const auto& s : serial.scenarios)
    t.addRow({s.scenario, TextTable::num(s.setupWns, 1),
              std::to_string(s.setupViolations), TextTable::num(s.holdWns, 1),
              std::to_string(s.holdViolations)});
  t.print();

  std::printf("\nserial MCMM: %zu scenarios in %.1f ms\n", scenarios.size(),
              serialMs);
  report.metric("scenarios", static_cast<double>(scenarios.size()));
  report.metric("gates", static_cast<double>(gates));
  report.metric("serial_ms", serialMs, "ms");
  report.metric("setup_wns_ps", serial.wns(Check::kSetup), "ps");
  report.metric("setup_tns_ps", serial.tns(Check::kSetup), "ps");
  report.metric("hold_wns_ps", serial.wns(Check::kHold), "ps");

  if (!serialOnly) {
    ThreadPool pool(threads);
    McmmOptions opt;
    opt.pool = &pool;
    const auto t1 = std::chrono::steady_clock::now();
    const McmmResult parallel = runner.run(opt);
    const double parallelMs = msSince(t1);

    // The parallel runtime must be a pure accelerator: identical numbers.
    bool identical = parallel.scenarios.size() == serial.scenarios.size();
    for (std::size_t i = 0; identical && i < parallel.scenarios.size(); ++i)
      identical = parallel.scenarios[i].setupWns == serial.scenarios[i].setupWns &&
                  parallel.scenarios[i].holdWns == serial.scenarios[i].holdWns &&
                  parallel.scenarios[i].setupTns == serial.scenarios[i].setupTns;
    std::printf("parallel MCMM (%d threads): %.1f ms  ->  %.2fx speedup, "
                "results %s\n",
                threads, parallelMs, serialMs / parallelMs,
                identical ? "bit-identical" : "MISMATCH");
    report.metric("threads", threads);
    report.metric("parallel_ms", parallelMs, "ms");
    report.metric("speedup", serialMs / parallelMs, "x");
    report.metric("identical", identical ? 1.0 : 0.0);
    if (!identical) return 1;
  }
  return 0;
}
