/// \file bench_hierarchical_etm.cpp
/// \brief Flat vs ETM-based hierarchical analysis (paper Comment 3).
///
/// Each block is abstracted once into an extracted timing model; top-level
/// what-if questions (retargeted clock, extra input delay from a longer
/// top route) are then answered from the models in microseconds. The bench
/// reports the abstraction ratio, per-question cost for flat vs ETM, and
/// the prediction error (exact for flat-derate scenarios).

#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_json.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "signoff/etm.h"
#include "util/table.h"

using namespace tc;

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_hierarchical_etm", argc, argv);
  auto L = characterizedLibrary(LibraryPvt{});

  std::puts("== Flat vs ETM-based hierarchical analysis ==\n");
  TextTable t("per-block abstraction and what-if cost");
  t.setHeader({"block", "flat vertices", "model arcs", "compression",
               "flat what-if (ms)", "ETM what-if (us)", "max pred err (ps)"});

  for (const BlockProfile& p :
       {profileTiny(), profileC5315(), profileC7552(), profileAes()}) {
    Netlist nl = generateBlock(L, p);
    Scenario sc;
    sc.lib = L;
    sc.inputDelay = 200.0;
    StaEngine eng(nl, sc);
    eng.run();
    const TimingModel m = extractTimingModel(eng, p.name);

    // 12 top-level what-if questions: period/input-delay retargets.
    const Ps dTs[] = {-120.0, -40.0, 60.0, 200.0};
    const Ps dIns[] = {-80.0, 0.0, 120.0};
    double flatMs = 0.0;
    double etmUs = 0.0;
    double maxErr = 0.0;
    for (Ps dT : dTs) {
      for (Ps dIn : dIns) {
        nl.clocks().front().period = m.refPeriod + dT;
        Scenario sc2 = sc;
        sc2.inputDelay = m.refInputDelay + dIn;
        const auto t0 = std::chrono::steady_clock::now();
        StaEngine flat(nl, sc2);
        flat.run();
        const auto t1 = std::chrono::steady_clock::now();
        const Ps pred =
            m.predictSetupWns(m.refPeriod + dT, m.refInputDelay + dIn);
        const auto t2 = std::chrono::steady_clock::now();
        flatMs += std::chrono::duration<double, std::milli>(t1 - t0).count();
        etmUs += std::chrono::duration<double, std::micro>(t2 - t1).count();
        maxErr = std::max(maxErr,
                          std::abs(pred - flat.wns(Check::kSetup)));
      }
    }
    nl.clocks().front().period = m.refPeriod;
    const int n = 12;
    t.addRow({p.name, std::to_string(m.flatVertexCount),
              std::to_string(m.modelArcCount()),
              TextTable::num(static_cast<double>(m.flatVertexCount) /
                                 m.modelArcCount(),
                             0) + "x",
              TextTable::num(flatMs / n, 2), TextTable::num(etmUs / n, 2),
              TextTable::num(maxErr, 3)});
  }
  t.addFootnote("paper Comment 3: top- vs block-level coordination and "
                "flat vs ETM-based analysis shape the 60-day tapeout "
                "march; the model answers retarget questions exactly "
                "(flat-OCV scenarios) at ~10^5 less cost");
  t.print();
  return 0;
}
