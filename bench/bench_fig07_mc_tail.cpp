/// \file bench_fig07_mc_tail.cpp
/// \brief Reproduces Fig. 7: the asymmetry of the Monte Carlo path-delay
/// distribution — the "setup long tail" that motivates *separate* sigma
/// values for late (setup) and early (hold) analysis, i.e. LVF over the
/// relative-margin OCV formats.
///
/// A deep pipeline path is compiled to a PathModel and sampled under local
/// Vt mismatch (asymmetric per-stage LVF sigmas) plus decorrelated BEOL
/// layer variation. The table reports moments, one-sided sigmas, quantiles
/// and the 3-sigma predictions of each modeling standard against the MC
/// golden — the paper's claim being that LVF tracks Monte Carlo better
/// than AOCV/POCV.

#include <cmath>
#include <cstdio>

#include "bench_json.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "sta/engine.h"
#include "sta/mc.h"
#include "sta/report.h"
#include "util/table.h"

using namespace tc;

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_fig07_mc_tail", argc, argv);
  // Low supply accentuates the non-Gaussian tail (paper cites the
  // low-voltage study of Rithe et al. [27]).
  auto libNom = characterizedLibrary(LibraryPvt{ProcessCorner::kTT, 0.9, 25.0});
  auto libLow = characterizedLibrary(LibraryPvt{ProcessCorner::kTT, 0.7, 25.0});
  auto libNtv =
      characterizedLibrary(LibraryPvt{ProcessCorner::kTT, 0.55, 25.0});

  for (auto [label, L] :
       {std::pair<const char*, std::shared_ptr<const Library>>{"0.9V", libNom},
        {"0.7V", libLow},
        {"0.55V (near-threshold)", libNtv}}) {
    Netlist nl = generatePipeline(L, 1, 12, 2200.0);
    Scenario sc;
    sc.lib = L;
    sc.derate.mode = DerateMode::kLvf;
    StaEngine eng(nl, sc);
    eng.run();

    // The single-lane path into capture0.
    const EndpointTiming* cap = nullptr;
    for (const auto& ep : eng.endpoints())
      if (ep.flop >= 0 && nl.instance(ep.flop).name == "capture0") cap = &ep;
    if (!cap) continue;

    MonteCarloTiming mc(eng);
    const PathModel pm = mc.compilePath(cap->vertex, cap->setupTrans);
    McOptions opt;
    opt.samples = 50000;
    const SampleSet s = mc.run(pm, opt);

    char title[96];
    std::snprintf(title, sizeof title,
                  "Fig. 7 -- MC path delay distribution, 12-stage path, %s "
                  "(50k samples)",
                  label);
    TextTable t(title);
    t.setHeader({"metric", "value"});
    t.addRow({"stages", std::to_string(pm.depth())});
    t.addRow({"nominal (zero-sigma) delay (ps)", TextTable::num(pm.nominal, 2)});
    t.addRow({"MC mean (ps)", TextTable::num(s.mean(), 2)});
    t.addRow({"MC sigma (ps)", TextTable::num(s.stddev(), 3)});
    t.addRow({"skewness g1", TextTable::num(s.skewness(), 3)});
    t.addRow({"sigma_early (below-mean RMS, ps)",
              TextTable::num(s.sigmaBelowMean(), 3)});
    t.addRow({"sigma_late (above-mean RMS, ps)",
              TextTable::num(s.sigmaAboveMean(), 3)});
    t.addRow({"late/early sigma ratio",
              TextTable::num(s.sigmaAboveMean() / s.sigmaBelowMean(), 3)});
    t.addRow({"p0.135% (early 3-sigma point, ps)",
              TextTable::num(s.quantile(0.00135), 2)});
    t.addRow({"p99.865% (late 3-sigma point, ps)",
              TextTable::num(s.quantile(0.99865), 2)});
    t.addFootnote("paper shape: setup (late) tail longer than the hold "
                  "(early) tail -> separate LVF sigmas are warranted");
    t.print();

    // Histogram of the distribution.
    const double lo = s.quantile(0.0005);
    const double hi = s.quantile(0.9995);
    const auto h = s.histogram(lo, hi, 25);
    std::size_t peak = 1;
    for (auto c : h) peak = std::max(peak, c);
    std::puts("  distribution (delay ps | count):");
    for (std::size_t b = 0; b < h.size(); ++b) {
      const double x = lo + (hi - lo) * (static_cast<double>(b) + 0.5) / 25.0;
      std::printf("  %8.1f | %-50s %zu\n", x,
                  asciiBar(static_cast<double>(h[b]),
                           static_cast<double>(peak), 48)
                      .c_str(),
                  h[b]);
    }

    // Modeling-ladder accuracy vs the MC golden: predicted late 3-sigma
    // delay per standard.
    const double mc3 = s.quantile(0.99865);
    double lvfVar = 0.0;
    double pocvVar = 0.0;
    for (const auto& st : pm.stages) {
      lvfVar += st.sigmaLate * st.sigmaLate;
      const double r = 0.5 * (st.sigmaLate + st.sigmaEarly) /
                       std::max(st.gateDelay, 1e-9);
      pocvVar += (r * st.gateDelay) * (r * st.gateDelay);
    }
    const double lvf3 = pm.nominal + 3.0 * std::sqrt(lvfVar);
    const double pocv3 = pm.nominal + 3.0 * std::sqrt(pocvVar);
    const auto& aocv = L->aocv();
    const double aocv3 = pm.nominal * aocv.late(pm.depth());
    const double flat3 = pm.nominal * 1.08;

    TextTable acc("late 3-sigma delay: model predictions vs MC golden (" +
                  std::string(label) + ")");
    acc.setHeader({"model", "3-sigma delay (ps)", "error vs MC"});
    acc.addRow({"Monte Carlo (golden)", TextTable::num(mc3, 2), "-"});
    acc.addRow({"LVF (per-arc asym. sigma)", TextTable::num(lvf3, 2),
                TextTable::pct(lvf3 / mc3 - 1.0, 2)});
    acc.addRow({"POCV (one ratio per cell)", TextTable::num(pocv3, 2),
                TextTable::pct(pocv3 / mc3 - 1.0, 2)});
    acc.addRow({"AOCV (depth table)", TextTable::num(aocv3, 2),
                TextTable::pct(aocv3 / mc3 - 1.0, 2)});
    acc.addRow({"flat OCV 8%", TextTable::num(flat3, 2),
                TextTable::pct(flat3 / mc3 - 1.0, 2)});
    acc.addFootnote("paper: LVF-based analysis has greater accuracy than "
                    "AOCV/POCV w.r.t. Monte Carlo SPICE [32]");
    acc.print();
    std::puts("");
  }
  return 0;
}
