/// \file bench_fig04_mis.cpp
/// \brief Reproduces Fig. 4: multi-input vs single-input switching arc
/// delays of a NAND2 cell with an FO3 load, at nominal supply and at 80% of
/// nominal.
///
/// Protocol, as in the paper: a ramp transition is applied at IN; for MIS a
/// second ramp with the same direction and slew is applied at IN1, and the
/// IN1 arrival offset is swept to find the *minimum* arc delay, which is
/// taken as the MIS delay. For SIS, IN1 is held at the non-controlling
/// level.
///
/// Paper shape targets: MIS delay < ~50% of SIS when the inputs fall
/// (parallel PMOS pull-up doubles the charging current) — "critical to
/// model correctly in hold signoff" — and MIS delay > ~10% above SIS when
/// the inputs rise (series NMOS stack weakens).

#include <algorithm>
#include <cstdio>

#include "bench_json.h"
#include "device/stage.h"
#include "util/table.h"

using namespace tc;

namespace {

struct MisPoint {
  double sisDelay = 0.0;
  double misDelay = 0.0;
  double bestOffset = 0.0;
};

MisPoint measure(bool inputRising, Ps slew, Volt vdd) {
  Stage nand = Stage::make(StageKind::kNand, 2, VtClass::kSvt, 1.0);
  SimConditions cond;
  cond.vdd = vdd;
  cond.temp = 25.0;
  // FO3 load: three X1 NAND2 input pins.
  cond.load = 3.0 * nand.inputCap();

  MisPoint p;
  const auto sis = simulateArc(nand, 0, inputRising, slew, cond);
  p.sisDelay = sis.delay50;

  // Sweep the IN1 arrival offset across the interaction window (|offset|
  // up to the transition time). The delay is measured from the *later*
  // arriving input — the STA-consistent reference (arrival = max of input
  // arrivals + arc delay). Falling inputs exercise the parallel pull-up:
  // the MIS delay is the minimum over offsets. Rising inputs exercise the
  // series stack: the signoff-relevant extreme is the maximum slow-down.
  bool first = true;
  const Ps window = std::max(slew, 20.0);
  for (Ps offset = -window; offset <= window; offset += window / 16.0) {
    std::vector<InputWave> waves(2);
    for (int i = 0; i < 2; ++i) {
      auto& w = waves[static_cast<std::size_t>(i)];
      w.v0 = inputRising ? 0.0 : vdd;
      w.v1 = inputRising ? vdd : 0.0;
      w.start = 150.0 + (i == 1 ? offset : 0.0);
      w.slew = slew;
    }
    const int laterInput = offset > 0.0 ? 1 : 0;
    const auto r = simulateStage(nand, waves, cond, laterInput);
    if (!r.completed) continue;
    // Parallel case: with one input far ahead the output fires before the
    // reference input even moves — that is an ordinary arrival-time effect,
    // not an MIS arc delay. Keep the causal (positive-delay) region.
    if (!inputRising && r.delay50 <= 0.0) continue;
    const bool better = first || (inputRising ? r.delay50 > p.misDelay
                                              : r.delay50 < p.misDelay);
    if (better) {
      p.misDelay = r.delay50;
      p.bestOffset = offset;
      first = false;
    }
  }
  return p;
}

void runAtSupply(Volt vdd, Volt vddNominal) {
  char title[128];
  std::snprintf(title, sizeof title,
                "Fig. 4(b) -- NAND2 FO3 arc delay, VDD = %.2fV (%.0f%% of "
                "nominal)",
                vdd, 100.0 * vdd / vddNominal);
  TextTable t(title);
  t.setHeader({"input slew (ps)", "direction", "SIS delay (ps)",
               "MIS delay (ps)", "MIS/SIS", "offset@extreme (ps)"});
  for (Ps slew : {15.0, 30.0, 60.0, 120.0, 200.0}) {
    const MisPoint fall = measure(/*inputRising=*/false, slew, vdd);
    t.addRow({TextTable::num(slew, 0), "fall (out rise)",
              TextTable::num(fall.sisDelay, 2),
              TextTable::num(fall.misDelay, 2),
              TextTable::num(fall.misDelay / fall.sisDelay, 3),
              TextTable::num(fall.bestOffset, 0)});
    const MisPoint rise = measure(/*inputRising=*/true, slew, vdd);
    t.addRow({TextTable::num(slew, 0), "rise (out fall)",
              TextTable::num(rise.sisDelay, 2),
              TextTable::num(rise.misDelay, 2),
              TextTable::num(rise.misDelay / rise.sisDelay, 3),
              TextTable::num(rise.bestOffset, 0)});
  }
  t.addFootnote(
      "paper shape: falling-input MIS/SIS well below 1 (down to <0.5 at "
      "large slew); rising-input MIS/SIS above 1 (>1.1)");
  t.print();
  std::puts("");
}

}  // namespace

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_fig04_mis", argc, argv);
  std::puts(
      "== Fig. 4: multi-input switching (MIS) vs single-input switching "
      "(SIS), NAND2 + FO3 ==\n");
  const Volt nominal = 0.9;
  runAtSupply(nominal, nominal);
  runAtSupply(0.8 * nominal, nominal);
  return 0;
}
