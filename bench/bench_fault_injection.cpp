/// \file bench_fault_injection.cpp
/// \brief Robustness exhibit: survival table of the interchange readers
/// under the deterministic mutation corpus.
///
/// For each format and mutation kind, prints how many mutants were
/// accepted (possibly degraded with warnings), rejected with located
/// diagnostics, or crashed (must be zero — a crash aborts the process, so
/// a fully-printed table IS the proof). The design-integrity analogue of
/// the paper's theme that signoff infrastructure must keep answering as
/// inputs get uglier.

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_json.h"
#include "faultinject/mutators.h"
#include "interconnect/extract.h"
#include "interconnect/spef.h"
#include "liberty/builder.h"
#include "liberty/serialize.h"
#include "network/netgen.h"
#include "network/verilog.h"
#include "util/log.h"

using namespace tc;
using faultinject::Mutation;

namespace {

struct Row {
  int accepted = 0;
  int rejected = 0;
  int warned = 0;  ///< accepted but degraded (clamps, duplicate drops)
};

void printTable(const char* format,
                const std::map<std::string, Row>& rows) {
  std::printf("\n%-10s %-16s %9s %9s %9s %8s\n", format, "mutation",
              "accepted", "degraded", "rejected", "crashes");
  int totalA = 0, totalW = 0, totalR = 0;
  for (const auto& [kind, r] : rows) {
    std::printf("%-10s %-16s %9d %9d %9d %8d\n", "", kind.c_str(),
                r.accepted, r.warned, r.rejected, 0);
    totalA += r.accepted;
    totalW += r.warned;
    totalR += r.rejected;
  }
  std::printf("%-10s %-16s %9d %9d %9d %8d\n", "", "TOTAL", totalA, totalW,
              totalR, 0);
}

}  // namespace

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_fault_injection", argc, argv);
  setLogLevel(LogLevel::kError);
  LogCapture quiet;  // swallow per-mutant diagnostics; we print the table
  auto L = characterizedLibrary(LibraryPvt{}, true);
  const int perKind = 25;  // 6 kinds x 25 = 150 mutants per text format

  // Verilog.
  {
    Netlist nl = generateBlock(L, profileTiny());
    const std::string text = toVerilog(nl);
    std::map<std::string, Row> rows;
    for (const auto& spec : faultinject::corpus(perKind)) {
      Row& r = rows[faultinject::toString(spec.kind)];
      DiagnosticSink sink;
      sink.setEcho(false);
      auto res = parseVerilog(faultinject::mutate(text, spec.kind, spec.seed),
                              L, sink);
      if (res.ok())
        sink.warningCount() > 0 ? ++r.warned : ++r.accepted;
      else
        ++r.rejected;
    }
    printTable("verilog", rows);
  }

  // SPEF.
  {
    Netlist nl = generatePipeline(L, 2, 5);
    Extractor ex(nl, BeolStack::forNode(techNode(28)));
    const std::string text = toSpef(nl, ex, ExtractionOptions{});
    std::map<std::string, Row> rows;
    for (const auto& spec : faultinject::corpus(perKind)) {
      Row& r = rows[faultinject::toString(spec.kind)];
      DiagnosticSink sink;
      sink.setEcho(false);
      auto res =
          parseSpef(faultinject::mutate(text, spec.kind, spec.seed), sink);
      if (res.ok())
        sink.warningCount() > 0 ? ++r.warned : ++r.accepted;
      else
        ++r.rejected;
    }
    printTable("spef", rows);
  }

  // Liberty binary.
  {
    const std::string path = "/tmp/tc_bench_fi.tclib";
    writeLibraryFile(*L, path);
    std::vector<char> bytes;
    {
      std::ifstream is(path, std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(is),
                   std::istreambuf_iterator<char>());
    }
    std::map<std::string, Row> rows;
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
      Row& r = rows["binary-corrupt"];
      const auto mut = faultinject::mutateBinary(bytes, seed);
      const std::string mp = "/tmp/tc_bench_fi_mut.tclib";
      {
        std::ofstream os(mp, std::ios::binary | std::ios::trunc);
        os.write(mut.data(), static_cast<std::streamsize>(mut.size()));
      }
      DiagnosticSink sink;
      sink.setEcho(false);
      if (readLibraryFile(mp, &sink))
        ++r.accepted;
      else
        ++r.rejected;
      std::remove(mp.c_str());
    }
    std::remove(path.c_str());
    printTable("liberty", rows);
  }

  std::printf("\nAll mutants processed without a crash.\n");
  return 0;
}
