/// \file bench_ssta.cpp
/// \brief The SSTA flirtation (paper Sec. 3.1 / footnote 13): block-based
/// statistical STA "is a 'holy grail' used in production at IBM, [but]
/// seems to remain perpetually in the future" — among the barriers, "the
/// lack of benefit over emerging standards such as LVF".
///
/// This bench makes that argument quantitative on one design: per worst
/// endpoint, the 3-sigma slack from (a) LVF-based GBA (mean + RSS'd sigma
/// along the worst path), (b) full block-based SSTA (Clark-max Gaussian
/// propagation), and (c) the per-path Monte Carlo golden — plus runtimes.

#include <chrono>
#include <cstdio>

#include "bench_json.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "sta/mc.h"
#include "sta/report.h"
#include "sta/ssta.h"
#include "util/table.h"

using namespace tc;

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_ssta", argc, argv);
  auto L = characterizedLibrary(LibraryPvt{});
  BlockProfile p = profileC7552();
  Netlist nl = generateBlock(L, p);

  Scenario sc;
  sc.lib = L;
  sc.derate.mode = DerateMode::kLvf;
  sc.inputDelay = 200.0;

  const auto t0 = std::chrono::steady_clock::now();
  StaEngine eng(nl, sc);
  eng.run();
  const auto t1 = std::chrono::steady_clock::now();
  SstaAnalyzer ssta(eng);
  const auto sstaEps = ssta.run();
  const auto t2 = std::chrono::steady_clock::now();

  std::puts("== SSTA vs LVF vs Monte Carlo (the footnote-13 question) ==\n");
  {
    TextTable t("worst endpoints: 3-sigma setup slack per methodology");
    t.setHeader({"endpoint", "LVF GBA (ps)", "SSTA (ps)", "MC golden (ps)",
                 "LVF err vs MC", "SSTA err vs MC"});
    MonteCarloTiming mc(eng);
    int shown = 0;
    for (const auto& se : sstaEps) {
      if (se.flop < 0) continue;
      if (++shown > 8) break;
      // Matching deterministic endpoint.
      Ps lvfSlack = 0.0;
      const EndpointTiming* det = nullptr;
      for (const auto& ep : eng.endpoints())
        if (ep.vertex == se.vertex) det = &ep;
      if (!det) continue;
      lvfSlack = det->setupSlack;
      // MC golden on the worst path: slack distribution 0.135% quantile.
      const PathModel pm = mc.compilePath(se.vertex, det->setupTrans);
      McOptions opt;
      opt.samples = 8000;
      opt.sampleBeolLayers = false;  // gate mismatch only, like LVF/SSTA
      const SampleSet s = mc.run(pm, opt);
      // allowed = slack + key; the MC arrival at 3 sigma replaces the key:
      // arrival_MC = meanArrival - nominalPath + q99.865(path).
      const double meanArr =
          eng.timing(se.vertex).arr[0][det->setupTrans];
      const Ps allowed = det->setupSlack + det->dataLate;
      const Ps mcSlack =
          allowed - (meanArr - pm.nominal + s.quantile(0.99865));
      t.addRow({nl.instance(se.flop).name, TextTable::num(lvfSlack, 2),
                TextTable::num(se.slack3Sigma, 2),
                TextTable::num(mcSlack, 2),
                TextTable::num(lvfSlack - mcSlack, 2),
                TextTable::num(se.slack3Sigma - mcSlack, 2)});
    }
    t.addFootnote("LVF already carries per-arc asymmetric sigmas; SSTA "
                  "adds statistical path merging (Clark max) but loses the "
                  "asymmetry to its Gaussian assumption");
    t.print();
    std::puts("");
  }
  {
    TextTable t("methodology summary");
    t.setHeader({"metric", "LVF GBA", "SSTA"});
    t.addRow({"WNS (3-sigma, ps)",
              TextTable::num(eng.wns(Check::kSetup), 2),
              TextTable::num(ssta.wns3Sigma(), 2)});
    t.addRow({"runtime (ms)",
              TextTable::num(
                  std::chrono::duration<double, std::milli>(t1 - t0).count(),
                  1),
              TextTable::num(
                  std::chrono::duration<double, std::milli>(t2 - t1).count(),
                  1)});
    t.addFootnote("paper footnote 13 barriers: deployment complexity, "
                  "foundries' reluctance to commit statistics, and the "
                  "lack of benefit over LVF -- the two WNS columns above "
                  "are the 'lack of benefit' measured");
    t.print();
  }
  return 0;
}
