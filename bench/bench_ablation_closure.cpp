/// \file bench_ablation_closure.cpp
/// \brief Ablation of the Fig. 1 repair arsenal: the closure loop is run
/// with each transform knocked out in turn, quantifying what each of
/// MacDonald's ordered fixes (Vt-swap, sizing, buffering, NDR, useful
/// skew) actually contributes on the same block — and what it costs in
/// leakage/area. This is the evidence behind the paper's "apply simplest
/// optimizations first" ordering.

#include <cstdio>

#include "bench_json.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "opt/closure.h"
#include "place/placement.h"
#include "power/power.h"
#include "util/table.h"

using namespace tc;

namespace {

struct Knockout {
  const char* name;
  void (*apply)(ClosureConfig&);
};

ClosureResult runWith(const ClosureConfig& cfg, const Scenario& sc,
                      const BlockProfile& p, const Floorplan& fp,
                      Ps period, PowerReport* power) {
  auto L = sc.lib;
  Netlist nl = generateBlock(L, p);
  placeDesign(nl, fp);
  nl.clocks().front().period = period;
  ClosureLoop loop(nl, sc, std::nullopt, fp);
  const ClosureResult res = loop.run(cfg);
  if (power) *power = analyzePower(nl);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_ablation_closure", argc, argv);
  auto L = characterizedLibrary(LibraryPvt{});
  BlockProfile p = profileC5315();
  Scenario sc;
  sc.lib = L;
  sc.inputDelay = 250.0;

  // Shared floorplan + calibrated period (same for every arm).
  Netlist probeNl = generateBlock(L, p);
  const Floorplan fp = Floorplan::forDesign(probeNl, 0.65);
  placeDesign(probeNl, fp);
  probeNl.clocks().front().period = 4000.0;
  StaEngine probe(probeNl, sc);
  probe.run();
  const Ps period = 0.88 * (4000.0 - probe.wns(Check::kSetup));

  const Knockout arms[] = {
      {"full arsenal", [](ClosureConfig&) {}},
      {"no Vt-swap", [](ClosureConfig& c) { c.enableVtSwap = false; }},
      {"no sizing", [](ClosureConfig& c) { c.enableSizing = false; }},
      {"no buffering", [](ClosureConfig& c) { c.enableBuffering = false; }},
      {"no NDR", [](ClosureConfig& c) { c.enableNdr = false; }},
      {"no useful skew",
       [](ClosureConfig& c) { c.enableUsefulSkew = false; }},
      {"Vt-swap only", [](ClosureConfig& c) {
         c.enableSizing = c.enableBuffering = c.enableNdr =
             c.enableUsefulSkew = false;
       }},
  };

  std::printf("== Closure-transform ablation (c5315 profile, placed, "
              "target period %.0f ps) ==\n\n", period);
  TextTable t("final state after 5 iterations, per arm");
  t.setHeader({"arm", "setup WNS (ps)", "setup TNS (ps)", "#setup",
               "#DRV", "leakage (uW)", "area (um2)", "closed"});
  for (const auto& arm : arms) {
    ClosureConfig cfg;
    cfg.iterations = 5;
    cfg.stopWhenClean = false;
    cfg.repair.maxEdits = 300;
    arm.apply(cfg);
    PowerReport pw;
    const ClosureResult res = runWith(cfg, sc, p, fp, period, &pw);
    t.addRow({arm.name, TextTable::num(res.final.setupWns, 1),
              TextTable::num(res.final.setupTns, 0),
              std::to_string(res.final.setupViolations),
              std::to_string(res.final.maxTransViolations +
                             res.final.maxCapViolations),
              TextTable::num(pw.leakage, 2), TextTable::num(pw.area, 0),
              res.closed ? "yes" : "no"});
  }
  t.addFootnote("knock out one transform at a time; the WNS/TNS gap to the "
                "full arsenal is that transform's contribution, the "
                "leakage/area deltas its cost");
  t.addFootnote("paper/[30]: Vt-swap first because it is free in placement "
                "terms; buffering is indispensable for DRV storms; useful "
                "skew mops up the last endpoints");
  t.print();
  return 0;
}
