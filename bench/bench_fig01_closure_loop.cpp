/// \file bench_fig01_closure_loop.cpp
/// \brief Reproduces Fig. 1 (from MacDonald [30]): the scope and main steps
/// of top-level timing closure — five iterations, each running STA, breaking
/// down the failures, and repairing them in the recommended order (Vt-swap
/// first, then gate sizing, buffer insertion, NDR application, useful skew),
/// with the expectation that "top-level timing improves after each
/// iteration".
///
/// Run on a placed synthetic SoC block against a setup (slow-ish) and a
/// hold (fast) scenario — the minimal MCMM pair — with the 20nm-and-below
/// twist of Sec. 2.4 enabled: Vt swaps can create MinIA violations that the
/// minimal-perturbation fixer must clean after each iteration.
///
/// The loop is run twice from the same starting point: once rebuilding the
/// timer from scratch every iteration (legacy) and once with the
/// incremental timer driven by the netlist mutation hooks. The two must
/// produce bit-identical trajectories and final QoR (nonzero exit
/// otherwise); the STA wall-time ratio is the closure-loop payoff of the
/// incremental engine.

#include <cstdio>

#include "bench_json.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "opt/closure.h"
#include "place/placement.h"
#include "power/power.h"
#include "util/table.h"

using namespace tc;

namespace {

bool sameBreakdown(const FailureBreakdown& a, const FailureBreakdown& b) {
  return a.setupWns == b.setupWns && a.setupTns == b.setupTns &&
         a.setupViolations == b.setupViolations && a.holdWns == b.holdWns &&
         a.holdTns == b.holdTns && a.holdViolations == b.holdViolations &&
         a.maxTransViolations == b.maxTransViolations &&
         a.maxCapViolations == b.maxCapViolations;
}

bool sameTrajectory(const ClosureResult& a, const ClosureResult& b) {
  if (a.iterations.size() != b.iterations.size()) return false;
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    const IterationRecord& x = a.iterations[i];
    const IterationRecord& y = b.iterations[i];
    if (!sameBreakdown(x.before, y.before)) return false;
    if (x.vtSwaps != y.vtSwaps || x.resizes != y.resizes ||
        x.buffers != y.buffers || x.ndrPromotions != y.ndrPromotions ||
        x.usefulSkews != y.usefulSkews || x.pinSwaps != y.pinSwaps ||
        x.holdBuffers != y.holdBuffers ||
        x.minIaViolationsFixed != y.minIaViolationsFixed)
      return false;
  }
  return sameBreakdown(a.final, b.final) && a.closed == b.closed;
}

}  // namespace

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_fig01_closure_loop", argc, argv);
  auto L = characterizedLibrary(LibraryPvt{});
  BlockProfile p = profileC7552();
  Netlist nl = generateBlock(L, p);
  const Floorplan fp = Floorplan::forDesign(nl, 0.65);
  placeDesign(nl, fp);

  Scenario setup;
  setup.lib = L;
  setup.name = "setup_typ";
  setup.inputDelay = 250.0;  // fixed set_input_delay (period-independent)
  Scenario hold = setup;
  hold.name = "hold_fast";
  hold.clockUncertaintyHold = 40.0;

  // Probe the as-placed critical delay, then set an aggressive-but-closable
  // target: 12% faster than the unoptimized design runs.
  {
    nl.clocks().front().period = 4000.0;
    StaEngine probe(nl, setup);
    probe.run();
    const Ps critical = 4000.0 - probe.wns(Check::kSetup);
    nl.clocks().front().period = 0.88 * critical;
    std::printf("as-placed critical delay %.0f ps -> closure target period "
                "%.0f ps\n\n",
                critical, nl.clocks().front().period);
  }

  const PowerReport before = analyzePower(nl);

  ClosureConfig cfg;
  cfg.iterations = 5;
  cfg.stopWhenClean = false;
  cfg.repair.maxEdits = 350;
  cfg.fixMinIaAfterSwaps = true;

  // A/B: legacy full-rebuild timing vs the incremental timer, from the
  // same starting netlist.
  Netlist nlFull = nl;
  cfg.incrementalSta = false;
  ClosureLoop fullLoop(nlFull, setup, hold, fp);
  const ClosureResult resFull = fullLoop.run(cfg);

  cfg.incrementalSta = true;
  ClosureLoop loop(nl, setup, hold, fp);
  const ClosureResult res = loop.run(cfg);

  TextTable t(
      "Fig. 1 -- five-iteration timing closure loop (" + p.name +
      "-profile block, " + std::to_string(nl.instanceCount()) + " instances)");
  t.setHeader({"iter", "setup WNS", "setup TNS", "#setup", "hold WNS",
               "#hold", "#maxtrans", "#maxcap", "vt-swap", "size", "buffer",
               "NDR", "skew", "holdbuf", "MinIA fixed"});
  for (const auto& it : res.iterations) {
    t.addRow({std::to_string(it.iteration),
              TextTable::num(it.before.setupWns, 1),
              TextTable::num(it.before.setupTns, 0),
              std::to_string(it.before.setupViolations),
              TextTable::num(it.before.holdWns, 1),
              std::to_string(it.before.holdViolations),
              std::to_string(it.before.maxTransViolations),
              std::to_string(it.before.maxCapViolations),
              std::to_string(it.vtSwaps), std::to_string(it.resizes),
              std::to_string(it.buffers), std::to_string(it.ndrPromotions),
              std::to_string(it.usefulSkews), std::to_string(it.holdBuffers),
              std::to_string(it.minIaViolationsFixed)});
  }
  t.addRow({"final", TextTable::num(res.final.setupWns, 1),
            TextTable::num(res.final.setupTns, 0),
            std::to_string(res.final.setupViolations),
            TextTable::num(res.final.holdWns, 1),
            std::to_string(res.final.holdViolations),
            std::to_string(res.final.maxTransViolations),
            std::to_string(res.final.maxCapViolations), "-", "-", "-", "-",
            "-", "-", "-"});
  t.addFootnote(res.closed
                    ? "design CLOSED"
                    : "design not fully closed: the residual DRVs are the "
                      "paper's \"last set of several hundred manual noise "
                      "and DRC fixes\" tail");
  t.addFootnote("repair order per [30]: simplest optimizations first "
                "(Vt-swap, sizing, buffering, NDR, useful skew); iterations "
                "dominated by DRV storms run electrical cleanup only");
  t.print();

  const bool identical = sameTrajectory(resFull, res);
  const double staSpeedup = res.staMs > 0.0 ? resFull.staMs / res.staMs : 0.0;
  TextTable ab("STA engine A/B across the loop");
  ab.setHeader({"mode", "STA wall (ms)", "speedup", "trajectory"});
  ab.addRow({"full rebuild", TextTable::num(resFull.staMs, 1), "1.0x", "-"});
  ab.addRow({"incremental", TextTable::num(res.staMs, 1),
             TextTable::num(staSpeedup, 1) + "x",
             identical ? "bit-identical" : "DIVERGED"});
  ab.print();

  const PowerReport after = analyzePower(nl);
  TextTable cost("closure cost");
  cost.setHeader({"metric", "before", "after", "delta"});
  cost.addRow({"leakage (uW)", TextTable::num(before.leakage, 2),
               TextTable::num(after.leakage, 2),
               TextTable::pct(after.leakage / before.leakage - 1.0, 1)});
  cost.addRow({"total power (uW)", TextTable::num(before.total(), 1),
               TextTable::num(after.total(), 1),
               TextTable::pct(after.total() / before.total() - 1.0, 1)});
  cost.addRow({"area (um2)", TextTable::num(before.area, 0),
               TextTable::num(after.area, 0),
               TextTable::pct(after.area / before.area - 1.0, 1)});
  cost.print();

  report.metric("final_setup_wns_ps", res.final.setupWns, "ps");
  report.metric("final_setup_violations", res.final.setupViolations);
  report.metric("final_hold_violations", res.final.holdViolations);
  report.metric("final_drv_violations", res.final.maxTransViolations +
                                            res.final.maxCapViolations);
  report.metric("closed", res.closed ? 1 : 0);
  report.metric("sta_full_ms", resFull.staMs, "ms");
  report.metric("sta_incremental_ms", res.staMs, "ms");
  report.metric("sta_speedup", staSpeedup, "x");
  report.metric("trajectory_identical", identical ? 1 : 0);
  report.metric("leakage_delta_uw", after.leakage - before.leakage, "uW");

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: incremental closure trajectory diverged from the "
                 "full-rebuild loop\n");
    return 1;
  }
  return 0;
}
