/// \file bench_cts_skew.cpp
/// \brief Multi-corner clock skew (paper Sec. 1.2: MCMM clock network
/// synthesis where "each of hundreds of scenarios has different clock
/// insertion delay"; after the skew-variation objective of Han et al.
/// [10]).
///
/// A placed block starts with the generator's placement-blind clock tree;
/// placement-aware clock-tree optimization (geometric re-clustering +
/// buffer relocation) is then applied and the skew re-measured — at three
/// scenarios (typical, slow/hot, fast/cold) so the cross-corner
/// insertion-delay variation is visible as well.

#include <cstdio>
#include <memory>

#include "bench_json.h"
#include "liberty/builder.h"
#include "util/rng.h"
#include "network/netgen.h"
#include "opt/closure.h"
#include "opt/cts.h"
#include "place/placement.h"
#include "util/table.h"

using namespace tc;

namespace {

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  Scenario typ;
  typ.lib = characterizedLibrary(LibraryPvt{});
  typ.name = "typ_0.90V_25C";
  out.push_back(typ);
  Scenario slow;
  slow.lib = characterizedLibrary(LibraryPvt{ProcessCorner::kSSG, 0.81, 125.0});
  slow.name = "ssg_0.81V_125C";
  out.push_back(slow);
  Scenario fast;
  fast.lib = characterizedLibrary(LibraryPvt{ProcessCorner::kFFG, 0.99, -30.0});
  fast.name = "ffg_0.99V_-30C";
  out.push_back(fast);
  return out;
}

void report(const char* label, Netlist& nl,
            const std::vector<Scenario>& scs) {
  std::vector<std::unique_ptr<StaEngine>> engines;
  std::vector<const StaEngine*> raw;
  for (const auto& sc : scs) {
    engines.push_back(std::make_unique<StaEngine>(nl, sc));
    engines.back()->run();
    raw.push_back(engines.back().get());
  }
  TextTable t(label);
  t.setHeader({"scenario", "insertion min (ps)", "insertion max (ps)",
               "global skew (ps)", "worst leaf-local skew (ps)",
               "setup WNS (ps)", "hold WNS (ps)"});
  for (std::size_t s = 0; s < scs.size(); ++s) {
    const SkewReport r = measureClockSkew(*raw[s]);
    t.addRow({scs[s].name, TextTable::num(r.insertionMin, 1),
              TextTable::num(r.insertionMax, 1),
              TextTable::num(r.globalSkew, 1),
              TextTable::num(r.localSkewMax, 1),
              TextTable::num(raw[s]->wns(Check::kSetup), 1),
              TextTable::num(raw[s]->wns(Check::kHold), 1)});
  }
  const McmmSkew mc = skewAcrossScenarios(raw);
  t.addFootnote(
      "cross-corner insertion-delay variation (normalized, worst flop): " +
      TextTable::num(mc.worstCrossCornerVariation * 100.0, 2) + "%");
  t.addFootnote("launch/capture pairs are mostly intra-cluster, so the "
                "leaf-local skew column (and the WNS/hold it drives) is the "
                "timing-relevant one; global skew is insertion spread");
  t.print();
  std::puts("");
}

}  // namespace

int main(int argc, char** argv) {
  tc::bench::JsonReport jsonReport("bench_cts_skew", argc, argv);
  BlockProfile p = profileC5315();
  const auto scs = scenarios();
  Netlist nl = generateBlock(scs[0].lib, p);
  const Floorplan fp = Floorplan::forDesign(nl, 0.65);
  placeDesign(nl, fp);

  // Close the data paths first so the WNS columns reflect clock quality,
  // not unoptimized logic.
  {
    Scenario sc = scs[0];
    sc.inputDelay = 250.0;
    nl.clocks().front().period = 4000.0;
    StaEngine probe(nl, sc);
    probe.run();
    nl.clocks().front().period =
        0.95 * (4000.0 - probe.wns(Check::kSetup));
    ClosureLoop loop(nl, sc, std::nullopt, fp);
    ClosureConfig ccfg;
    ccfg.iterations = 4;
    ccfg.enableHoldFix = false;
    loop.run(ccfg);
  }

  // Simulate post-ECO churn: flops have been moved/re-clustered by months
  // of implementation, so the leaf clusters straddle the die. (A freshly
  // generated tree is co-located by the placer's clock-net pull and would
  // understate the problem.)
  {
    Rng rng(99);
    std::vector<InstId> flops;
    std::vector<NetId> leafNets;
    for (InstId i = 0; i < nl.instanceCount(); ++i) {
      if (!nl.isSequential(i)) continue;
      flops.push_back(i);
      leafNets.push_back(nl.instance(i).fanin[1]);
    }
    for (std::size_t i = flops.size(); i-- > 1;) {
      const std::size_t j = rng.below(i + 1);
      std::swap(leafNets[i], leafNets[j]);
    }
    for (std::size_t i = 0; i < flops.size(); ++i) {
      nl.disconnectInput(flops[i], 1);
      nl.connectInput(flops[i], 1, leafNets[i]);
    }
  }

  std::puts("== MCMM clock skew: churned clock clusters vs placement-aware "
            "clock-tree optimization ==\n");
  report("before CTO (post-churn clusters straddle the die)", nl, scs);

  RowOccupancy occ(nl, fp);
  const CtsResult res = optimizeClockTree(nl, &occ, &fp);
  std::printf("CTO: %d leaf buffers, %d flops re-clustered, %d buffers "
              "relocated, mean cluster radius %.1f um\n\n",
              res.leafBuffers, res.flopsReassigned, res.buffersMoved,
              res.meanClusterRadius);
  report("after geometric CTO (compaction only)", nl, scs);

  const int swaps = balanceClockTree(nl, scs[0], 4);
  std::printf("skew balancing: %d leaf-buffer resizes toward the median "
              "insertion delay\n\n", swaps);
  report("after CTO + skew balancing", nl, scs);
  return 0;
}
