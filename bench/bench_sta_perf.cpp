/// \file bench_sta_perf.cpp
/// \brief Engine microbenchmarks (google-benchmark): full GBA runs across
/// design sizes and derate modes, PBA recalculation cost, and MIS
/// refinement — the turnaround-time side of the paper's accuracy-vs-TAT
/// tradeoffs ("overheads in STA turnaround times", Sec. 1.3).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "liberty/builder.h"
#include "network/netgen.h"
#include "sta/engine.h"
#include "sta/mis.h"
#include "sta/pba.h"
#include "util/trace.h"

using namespace tc;

namespace {

std::shared_ptr<const Library> lib() {
  static auto L = characterizedLibrary(LibraryPvt{}, /*quick=*/true);
  return L;
}

Netlist& blockOfSize(int gates) {
  static std::map<int, Netlist> cache;
  auto it = cache.find(gates);
  if (it == cache.end()) {
    BlockProfile p = profileTiny();
    p.numGates = gates;
    p.numFlops = std::max(gates / 12, 8);
    p.levels = 16;
    it = cache.emplace(gates, generateBlock(lib(), p)).first;
  }
  return it->second;
}

void BM_GbaFullRun(benchmark::State& state) {
  Netlist& nl = blockOfSize(static_cast<int>(state.range(0)));
  Scenario sc;
  sc.lib = lib();
  for (auto _ : state) {
    StaEngine eng(nl, sc);
    eng.run();
    benchmark::DoNotOptimize(eng.wns(Check::kSetup));
  }
  state.SetItemsProcessed(state.iterations() * nl.instanceCount());
}
BENCHMARK(BM_GbaFullRun)->Arg(500)->Arg(2000)->Arg(8000);

void BM_GbaDerateModes(benchmark::State& state) {
  Netlist& nl = blockOfSize(2000);
  Scenario sc;
  sc.lib = lib();
  sc.derate.mode = static_cast<DerateMode>(state.range(0));
  for (auto _ : state) {
    StaEngine eng(nl, sc);
    eng.run();
    benchmark::DoNotOptimize(eng.wns(Check::kSetup));
  }
}
BENCHMARK(BM_GbaDerateModes)
    ->Arg(static_cast<int>(DerateMode::kFlatOcv))
    ->Arg(static_cast<int>(DerateMode::kAocv))
    ->Arg(static_cast<int>(DerateMode::kLvf));

void BM_PbaRecalcWorst100(benchmark::State& state) {
  Netlist& nl = blockOfSize(2000);
  Scenario sc;
  sc.lib = lib();
  sc.derate.mode = DerateMode::kLvf;
  StaEngine eng(nl, sc);
  eng.run();
  PbaAnalyzer pba(eng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pba.recalcWorst(100, Check::kSetup));
  }
}
BENCHMARK(BM_PbaRecalcWorst100);

void BM_MisRefine(benchmark::State& state) {
  Netlist& nl = blockOfSize(2000);
  Scenario sc;
  sc.lib = lib();
  for (auto _ : state) {
    StaEngine eng(nl, sc);
    eng.run();
    MisAnalyzer mis(eng);
    benchmark::DoNotOptimize(mis.refine());
  }
}
BENCHMARK(BM_MisRefine);

}  // namespace

// Same CI contract as the plain benches: `--json <path>` produces a JSON
// result file — here by translating into google-benchmark's own reporter
// flags before Initialize() consumes argv. `--trace <path>` records every
// span (characterization, netgen, per-level sweeps, PBA, MIS) across the
// whole run and exports one Chrome trace on exit.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string outFlag, fmtFlag, tracePath;
  for (std::size_t i = 1; i + 1 < args.size();) {
    if (std::string(args[i]) == "--json") {
      outFlag = std::string("--benchmark_out=") + args[i + 1];
      fmtFlag = "--benchmark_out_format=json";
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      args.push_back(outFlag.data());
      args.push_back(fmtFlag.data());
    } else if (std::string(args[i]) == "--trace") {
      tracePath = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else {
      ++i;
    }
  }
  if (!tracePath.empty()) tc::traceSetEnabled(true);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!tracePath.empty()) {
    tc::traceSetEnabled(false);
    if (!tc::traceExportChrome(tracePath)) return 1;
  }
  return 0;
}
