/// \file bench_fig06b_temp_inversion.cpp
/// \brief Reproduces Fig. 6(b) and the Sec. 2.3 gate-wire balance numbers.
///
/// Temperature reversal: below the reversal voltage Vtr the gate is slower
/// at LOW temperature; above Vtr it is slower at HIGH temperature — so
/// "when the signoff voltage is near Vtr, both low and high temperature
/// corners must be checked".
///
/// Gate-wire balance: at the foundry 20nm node, scaling the supply from
/// 0.7V to 1.2V cuts gate delay by ~50% while a 100um M3 wire delay moves
/// by only ~2% — which is why "pruning of corners is difficult" (different
/// paths go critical at different corners).

#include <cstdio>

#include "bench_json.h"
#include "device/stage.h"
#include "interconnect/rctree.h"
#include "interconnect/wire.h"
#include "util/table.h"

using namespace tc;

namespace {

double gateDelay(Volt vdd, Celsius temp, VtClass vt) {
  Stage inv = Stage::make(StageKind::kInverter, 1, vt, 1.0);
  SimConditions c;
  c.vdd = vdd;
  c.temp = temp;
  c.load = 4.0;
  const auto r = simulateArc(inv, 0, true, 40.0, c);
  return r.completed ? r.delay50 : -1.0;
}

double wireDelay(Volt /*vdd*/, Celsius temp) {
  // 100um on M3, 20nm stack; Elmore to the far end with a pin load. Wire
  // delay is voltage-independent but temperature-dependent (copper R).
  const WireLayer m3 = BeolStack::forNode(techNode(20)).layer(3);
  RcTree t;
  int at = 0;
  const int segs = 8;
  const double len = 100.0 / segs;
  for (int i = 0; i < segs; ++i) {
    const double r = m3.rPerUm * (1.0 + m3.rTempCoPerC * (temp - 25.0));
    at = t.addNode(at, r * len, (m3.cgPerUm + m3.ccPerUm) * len);
  }
  t.addCap(at, 2.0);
  return t.elmore(at);
}

}  // namespace

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_fig06b_temp_inversion", argc, argv);
  std::puts("== Fig. 6(b): temperature inversion ==\n");
  {
    TextTable t("HVT inverter delay vs supply at -30C / 25C / 125C");
    t.setHeader({"VDD (V)", "d(-30C) ps", "d(25C) ps", "d(125C) ps",
                 "slower corner"});
    double vtr = -1.0;
    bool coldWasSlower = true;
    for (Volt v = 0.50; v <= 1.2501; v += 0.05) {
      const double cold = gateDelay(v, -30.0, VtClass::kHvt);
      const double room = gateDelay(v, 25.0, VtClass::kHvt);
      const double hot = gateDelay(v, 125.0, VtClass::kHvt);
      const bool coldSlower = cold > hot;
      if (coldWasSlower && !coldSlower && vtr < 0.0) vtr = v;
      coldWasSlower = coldSlower;
      t.addRow({TextTable::num(v, 2), TextTable::num(cold, 2),
                TextTable::num(room, 2), TextTable::num(hot, 2),
                coldSlower ? "low-T" : "high-T"});
    }
    if (vtr > 0.0)
      t.addFootnote("temperature reversal point Vtr ~ " +
                    TextTable::num(vtr - 0.025, 2) + " V");
    t.addFootnote(
        "paper shape: below Vtr the low-temperature corner dominates; above "
        "it the high-temperature corner does");
    t.print();
    std::puts("");
  }

  {
    TextTable t(
        "Sec. 2.3 -- gate vs wire delay scaling with supply (20nm node)");
    t.setHeader({"metric", "0.7V", "1.2V", "delta"});
    const double g07 = gateDelay(0.7, 25.0, VtClass::kSvt);
    const double g12 = gateDelay(1.2, 25.0, VtClass::kSvt);
    const double w07 = wireDelay(0.7, 25.0);
    const double w12 = wireDelay(1.2, 25.0);
    t.addRow({"SVT gate delay (ps)", TextTable::num(g07, 2),
              TextTable::num(g12, 2), TextTable::pct(g12 / g07 - 1.0, 1)});
    t.addRow({"100um M3 wire delay (ps)", TextTable::num(w07, 2),
              TextTable::num(w12, 2), TextTable::pct(w12 / w07 - 1.0, 1)});
    t.addFootnote(
        "paper: gate delay drops ~50% from 0.7V to 1.2V; wire delay moves "
        "~2% (voltage-independent, temperature-dependent only)");
    t.addFootnote(
        "consequence (footnote 10): low-V critical paths are gate-dominated "
        "(Cw corner dominates); high-V paths are wire-dominated (RCw "
        "dominates) -- corner pruning is difficult");
    t.print();
  }
  return 0;
}
