/// \file bench_server_qps.cpp
/// \brief Serving-throughput exhibit for the goalposts-server (paper
/// Comment 3: signoff as a shared, always-warm service rather than a
/// per-run batch tool). Eight concurrent clients hammer a live server
/// over real sockets with a read-heavy query mix while one writer lands
/// ECO transactions; the bench reports sustained QPS and p50/p99 request
/// latency.
///
/// Correctness is gated, not assumed: after the load phase the final
/// published epoch is compared bitwise against a fresh from-scratch
/// StaEngine run on "base netlist + the full ECO log" — any divergence
/// exits nonzero, so CI fails on a wrong answer, not just a slow one.
///
/// Gate stability: socket scheduling makes the load phase nondeterministic
/// (per-thread interleaving, tail latencies on a small runner are scheduler
/// jitter), so everything bench_compare.py gates comes from a deterministic
/// single-client epilogue run after MetricsRegistry::resetAll — fixed
/// request script, fixed ECO count, fresh server. That covers the stable
/// `serve.*` counters AND the gated p50/p99 request latencies (serial
/// request-response: the protocol + query cost, not thread contention).
/// The concurrent phase still hard-gates correctness inside the bench
/// (client errors or oracle divergence exit nonzero); its QPS and
/// latencies are reported as informational.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "serve/client.h"
#include "serve/epoch.h"
#include "serve/server.h"
#include "signoff/snapshot.h"
#include "sta/engine.h"
#include "util/table.h"

using namespace tc;
using serve::EcoOp;
using serve::ServeClient;
using serve::Server;
using serve::ServeOptions;

namespace {

/// Same corner pair tools/goalposts_server serves for generated designs.
std::vector<Scenario> benchScenarios() {
  std::vector<Scenario> out;
  {
    Scenario s;
    s.name = "func_tt";
    s.lib = characterizedLibrary(LibraryPvt{ProcessCorner::kTT, 0.9, 25.0},
                                 /*quick=*/true);
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "func_ssg_cw";
    s.lib = characterizedLibrary(LibraryPvt{ProcessCorner::kSSG, 0.81, 125.0},
                                 /*quick=*/true);
    s.beol = BeolCorner::kCworst;
    s.derate.mode = DerateMode::kAocv;
    out.push_back(s);
  }
  return out;
}

DesignSnapshot benchSnapshot(const std::vector<Scenario>& scenarios) {
  Netlist nl = generateBlock(scenarios[0].lib, profileTiny());
  return makeSnapshot(nl, scenarios, /*includeSpef=*/false);
}

/// The writer's deterministic ECO stream: one Miller-factor nudge per
/// commit, cycling over the first nets. Always-valid, so every commit
/// publishes an epoch.
EcoOp millerOp(int commitIndex) {
  EcoOp op;
  op.kind = EcoOp::Kind::kSetMillerOverride;
  op.target = commitIndex % 8;
  op.dblArg = 1.0 + 0.05 * (commitIndex % 10);
  return op;
}

/// The read-side query mix (weights roughly: slack 50%, endpoints 25%,
/// histogram 12.5%, path 12.5%).
Json queryFor(int q) {
  Json req = Json::object();
  switch (q % 8) {
    case 0:
    case 1:
    case 2:
    case 3:
      req.set("cmd", "slack").set("design", "d");
      break;
    case 4:
    case 5:
      req.set("cmd", "endpoints").set("design", "d").set("scenario", 0)
          .set("k", 5);
      break;
    case 6:
      req.set("cmd", "histogram").set("design", "d").set("scenario", 1)
          .set("bins", 16);
      break;
    default:
      req.set("cmd", "path").set("design", "d").set("scenario", 0)
          .set("endpoint", q % 32);
      break;
  }
  return req;
}

bool identicalEngines(const StaEngine& a, const StaEngine& b) {
  if (a.wns(Check::kSetup) != b.wns(Check::kSetup)) return false;
  if (a.wns(Check::kHold) != b.wns(Check::kHold)) return false;
  if (a.tns(Check::kSetup) != b.tns(Check::kSetup)) return false;
  if (a.tns(Check::kHold) != b.tns(Check::kHold)) return false;
  const auto& ea = a.endpoints();
  const auto& eb = b.endpoints();
  if (ea.size() != eb.size()) return false;
  for (std::size_t i = 0; i < ea.size(); ++i)
    if (ea[i].setupSlack != eb[i].setupSlack ||
        ea[i].holdSlack != eb[i].holdSlack)
      return false;
  return true;
}

double percentile(std::vector<double>& sortedUs, double p) {
  if (sortedUs.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sortedUs.size() - 1));
  return sortedUs[idx];
}

}  // namespace

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_server_qps", argc, argv);
  int clients = 8;
  int requestsPerClient = 200;
  int ecoCommits = 12;
  int repeats = 3;  // best-of-N: tail latency of a local-socket bench is
                    // scheduler noise; the minimum is the stable statistic
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--clients") clients = std::atoi(argv[i + 1]);
    if (arg == "--requests") requestsPerClient = std::atoi(argv[i + 1]);
    if (arg == "--ecos") ecoCommits = std::atoi(argv[i + 1]);
    if (arg == "--repeats") repeats = std::atoi(argv[i + 1]);
  }

  std::vector<Scenario> scenarios = benchScenarios();

  std::puts("== goalposts-server sustained QPS under concurrent ECO ==\n");

  // ---- Load phase: real sockets, N readers, one writer. -------------------
  Server server{ServeOptions()};
  if (!server.addDesign("d", benchSnapshot(scenarios)).ok()) return 1;
  auto port = server.start();
  if (!port.ok()) {
    std::fprintf(stderr, "start: %s\n", port.status().message().c_str());
    return 1;
  }

  double qps = 0.0;
  double p50 = 0.0, p99 = 0.0;
  bool have = false;
  std::size_t totalRequests = 0;
  int commitIndex = 0;  // millerOp sequence continues across repeats
  for (int rep = 0; rep < repeats; ++rep) {
    std::vector<std::vector<double>> latUs(
        static_cast<std::size_t>(clients));
    std::vector<std::thread> readers;
    std::atomic<int> readerFailures{0};
    const auto loadStart = std::chrono::steady_clock::now();
    for (int c = 0; c < clients; ++c) {
      readers.emplace_back([&, c] {
        ServeClient cl;
        if (!cl.connect("127.0.0.1", port.value()).ok()) {
          readerFailures.fetch_add(1);
          return;
        }
        auto& lat = latUs[static_cast<std::size_t>(c)];
        lat.reserve(static_cast<std::size_t>(requestsPerClient));
        for (int q = 0; q < requestsPerClient; ++q) {
          const Json req = queryFor(q + c);
          const auto t0 = std::chrono::steady_clock::now();
          auto resp = cl.callOne(req);
          const auto t1 = std::chrono::steady_clock::now();
          if (!resp.ok() || !resp.value()["ok"].asBool(false)) {
            readerFailures.fetch_add(1);
            return;
          }
          lat.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
      });
    }
    std::thread writer([&] {
      ServeClient cl;
      if (!cl.connect("127.0.0.1", port.value()).ok()) {
        readerFailures.fetch_add(1);
        return;
      }
      for (int e = 0; e < ecoCommits; ++e) {
        Json req = Json::object();
        req.set("cmd", "eco").set("design", "d");
        Json ops = Json::array();
        ops.push(serve::toJson(millerOp(commitIndex + e)));
        req.set("ops", std::move(ops));
        auto resp = cl.call(req);
        if (!resp.ok() || !resp.value().back()["ok"].asBool(false)) {
          readerFailures.fetch_add(1);
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
    for (auto& t : readers) t.join();
    writer.join();
    commitIndex += ecoCommits;
    const double loadSec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      loadStart)
            .count();

    if (readerFailures.load() != 0) {
      std::fprintf(stderr, "FAIL: %d client(s) saw errors under load\n",
                   readerFailures.load());
      return 1;
    }

    std::vector<double> all;
    for (const auto& v : latUs) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    totalRequests += all.size();
    const double repQps = static_cast<double>(all.size()) / loadSec;
    const double repP50 = percentile(all, 0.50);
    const double repP99 = percentile(all, 0.99);
    if (!have) {
      qps = repQps;
      p50 = repP50;
      p99 = repP99;
      have = true;
    } else {
      qps = std::max(qps, repQps);
      p50 = std::min(p50, repP50);
      p99 = std::min(p99, repP99);
    }
  }

  // ---- Oracle: the final epoch must be bit-identical to a from-scratch
  // batch run of base + the full ECO log. --------------------------------
  bool oracleOk = true;
  {
    Netlist fresh = generateBlock(scenarios[0].lib, profileTiny());
    for (int e = 0; e < commitIndex; ++e) {
      const EcoOp op = millerOp(e);
      fresh.setMillerOverride(op.target, op.dblArg);
    }
    auto tip = server.design("d")->current();
    if (tip->epoch() != static_cast<std::uint64_t>(commitIndex)) {
      oracleOk = false;
    } else {
      for (std::size_t s = 0; oracleOk && s < scenarios.size(); ++s) {
        StaEngine ref(fresh, scenarios[s]);
        ref.run();
        oracleOk = identicalEngines(ref, tip->engine(s));
      }
    }
  }
  server.stop();
  if (!oracleOk) {
    std::fprintf(stderr,
                 "FAIL: served timing diverged from fresh batch oracle\n");
    return 1;
  }

  TextTable t("served QPS, 8 readers + 1 ECO writer (tiny block), best of " +
              std::to_string(repeats));
  t.setHeader({"clients", "requests", "ecos", "QPS", "p50 (us)", "p99 (us)",
               "oracle"});
  t.addRow({std::to_string(clients),
            std::to_string(totalRequests),
            std::to_string(commitIndex),
            std::to_string(static_cast<long>(qps)),
            std::to_string(static_cast<long>(p50)),
            std::to_string(static_cast<long>(p99)),
            "bit-identical"});
  t.print();

  // Concurrent-phase numbers are scheduler-dependent (on a small CI
  // runner, 17 threads share a core or two): informational, not gated.
  report.metric("qps", qps, "req/s");
  report.metric("concurrent_p50", p50, "info");
  report.metric("concurrent_p99", p99, "info");
  report.metric("oracle_bit_identical", oracleOk ? 1 : 0, "");

  // ---- Deterministic epilogue: fixed single-client script against a
  // fresh server. Serial request-response latency measures the protocol +
  // query cost itself, so its percentiles are gateable; the stable
  // serve.* counters folded into the JSON become scheduling-independent
  // too. ------------------------------------------------------------------
  MetricsRegistry::global().resetAll();
  double serialP50 = 0.0, serialP99 = 0.0, ecoMedianMs = 0.0;
  {
    Server det{ServeOptions()};
    if (!det.addDesign("d", benchSnapshot(scenarios)).ok()) return 1;
    auto dport = det.start();
    if (!dport.ok()) return 1;
    ServeClient cl;
    if (!cl.connect("127.0.0.1", dport.value()).ok()) return 1;
    // Query percentiles: min over rounds of a 2048-sample distribution.
    // With that many samples p99 is the 20th-worst, so isolated scheduler
    // spikes can't own it, and the min across rounds discards transiently
    // slow windows: what's left is the reproducible protocol + query cost.
    std::vector<double> ecoMs;
    int detCommit = 0;
    for (int round = 0; round < 5; ++round) {
      std::vector<double> serialUs;
      serialUs.reserve(2048);
      for (int loop = 0; loop < 64; ++loop) {
        for (int q = 0; q < 32; ++q) {
          const Json req = queryFor(q);
          const auto t0 = std::chrono::steady_clock::now();
          if (!cl.callOne(req).ok()) return 1;
          const auto t1 = std::chrono::steady_clock::now();
          serialUs.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
      }
      // ECO turnaround as served: commit round-trips are compute-bound
      // (incremental re-time of every scenario engine), so their median
      // is the most regression-sensitive latency this bench gates.
      for (int e = 0; e < 4; ++e) {
        Json req = Json::object();
        req.set("cmd", "eco").set("design", "d");
        Json ops = Json::array();
        ops.push(serve::toJson(millerOp(detCommit++)));
        req.set("ops", std::move(ops));
        const auto t0 = std::chrono::steady_clock::now();
        auto resp = cl.call(req);
        const auto t1 = std::chrono::steady_clock::now();
        if (!resp.ok() || !resp.value().back()["ok"].asBool(false)) return 1;
        ecoMs.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
      std::sort(serialUs.begin(), serialUs.end());
      const double roundP50 = percentile(serialUs, 0.50);
      const double roundP99 = percentile(serialUs, 0.99);
      if (round == 0) {
        serialP50 = roundP50;
        serialP99 = roundP99;
      } else {
        serialP50 = std::min(serialP50, roundP50);
        serialP99 = std::min(serialP99, roundP99);
      }
    }
    det.stop();
    std::sort(ecoMs.begin(), ecoMs.end());
    ecoMedianMs = percentile(ecoMs, 0.50);
  }
  report.metric("p50_us", serialP50, "us");
  report.metric("p99_us", serialP99, "us");
  report.metric("eco_commit_median_ms", ecoMedianMs, "ms");
  std::printf("serial (gated): p50 %.0f us  p99 %.0f us  eco %.2f ms\n",
              serialP50, serialP99, ecoMedianMs);
  // report's destructor folds the (now deterministic) stable counters.
  return 0;
}
