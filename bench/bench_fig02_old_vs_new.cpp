/// \file bench_fig02_old_vs_new.cpp
/// \brief Reproduces Fig. 2: the "old vs new" anatomy of timing closure.
/// Each "new" aspect the figure lists is exercised by this framework and
/// its measured effect on the same design is reported next to the "old"
/// baseline — one mode / NLDM / flat margins versus MCMM / LVF / MIS /
/// corner machinery / signoff-at-typical.

#include <cmath>
#include <cstdio>

#include "bench_json.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "signoff/corners.h"
#include "signoff/margin.h"
#include "signoff/yield.h"
#include "sta/mis.h"
#include "sta/pba.h"
#include "util/table.h"

using namespace tc;

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_fig02_old_vs_new", argc, argv);
  auto L = characterizedLibrary(LibraryPvt{});
  BlockProfile p = profileC5315();
  Netlist nl = generateBlock(L, p);

  std::puts("== Fig. 2: OLD vs NEW aspects of timing closure, measured ==\n");

  // OLD baseline: single mode, flat OCV, conventional corners. The clock is
  // tuned so the flat-OCV view sits just at closure -- the regime where the
  // "new" machinery visibly moves signoff outcomes.
  Scenario oldSc;
  oldSc.lib = L;
  oldSc.name = "old_flat";
  oldSc.derate.mode = DerateMode::kFlatOcv;
  {
    StaEngine probe(nl, oldSc);
    probe.run();
    nl.clocks().front().period -= probe.wns(Check::kSetup) - 5.0;
  }
  StaEngine oldEng(nl, oldSc);
  oldEng.run();

  // NEW: LVF modeling.
  Scenario lvfSc = oldSc;
  lvfSc.name = "new_lvf";
  lvfSc.derate.mode = DerateMode::kLvf;
  StaEngine lvfEng(nl, lvfSc);
  lvfEng.run();

  // NEW: MIS-aware refinement on top of LVF.
  StaEngine misEng(nl, lvfSc);
  misEng.run();
  MisAnalyzer mis(misEng);
  const auto overlaps = mis.refine();

  // NEW: PBA on the critical tail.
  PbaAnalyzer pba(lvfEng);
  const auto pbaRes = pba.recalcWorst(50, Check::kSetup);
  double pbaGain = 0.0;
  for (const auto& r : pbaRes) pbaGain = std::max(pbaGain, r.pessimismRemoved());

  // NEW: signoff at typical + flat margin (vs slow corner).
  auto slowLib =
      characterizedLibrary(LibraryPvt{ProcessCorner::kSSG, 0.81, 125.0});
  Scenario slowSc;
  slowSc.lib = slowLib;
  slowSc.name = "ssg_slow";
  StaEngine slowEng(nl, slowSc);
  slowEng.run();
  const auto strategies =
      compareSignoffStrategies(oldEng, slowEng, defaultMarginRug());

  TextTable t("old vs new, same design (" + p.name + " profile)");
  t.setHeader({"aspect", "OLD", "NEW", "measured effect"});
  t.addRow({"variation model", "flat OCV (+8%/-8%)", "LVF per-arc sigmas",
            "WNS " + TextTable::num(oldEng.wns(Check::kSetup), 1) + " -> " +
                TextTable::num(lvfEng.wns(Check::kSetup), 1) + " ps"});
  t.addRow({"violating endpoints", "-", "-",
            std::to_string(oldEng.violationCount(Check::kSetup)) + " -> " +
                std::to_string(lvfEng.violationCount(Check::kSetup))});
  {
    // Worst per-endpoint hold degradation from the MIS speed-up (the
    // parallel-stack derate is a hold hazard, Sec. 2.1).
    double worstDelta = 0.0;
    const auto& base = lvfEng.endpoints();
    const auto& mis = misEng.endpoints();
    for (std::size_t i = 0; i < base.size() && i < mis.size(); ++i) {
      if (base[i].vertex != mis[i].vertex) continue;
      if (!std::isfinite(base[i].holdSlack)) continue;
      worstDelta =
          std::min(worstDelta, mis[i].holdSlack - base[i].holdSlack);
    }
    t.addRow({"MIS", "SIS-only library", "window-overlap derates",
              std::to_string(overlaps.size()) +
                  " gates derated; worst endpoint hold slack moved " +
                  TextTable::num(worstDelta, 1) + " ps"});
  }
  t.addRow({"analysis style", "GBA everywhere", "PBA on critical tail",
            "up to " + TextTable::num(pbaGain, 1) +
                " ps pessimism removed on worst 50 paths"});
  t.addRow({"corners", "1 PVT view",
            std::to_string(CornerUniverse::socUniverse(16).totalViews()) +
                " views at 16nm",
            std::to_string(pruneForSetup(CornerUniverse::socUniverse(16))
                               .size()) +
                " survive dominance pruning (setup)"});
  t.addRow({"signoff criterion", "slow corner, flat margins",
            "typical + decomposed margin (AVS era)",
            "flat rug " + TextTable::num(flatSum(defaultMarginRug()), 0) +
                " ps -> detangled " +
                TextTable::num(detangledMargin(defaultMarginRug()), 0) +
                " ps"});
  t.addRow({"slow-corner coverage", "sign off at SSG directly",
            "typical + " + TextTable::num(strategies.flatMargin, 0) +
                " ps flat margin",
            std::to_string(strategies.slowCornerViolations) + " vs " +
                std::to_string(strategies.typicalFlatViolations) +
                " violations (flat) / " +
                std::to_string(strategies.typicalDetangledViolations) +
                " (detangled)"});
  t.addRow({"goalposts", "absolute slack", "slack at a sigma tail",
            "parametric timing yield = " +
                TextTable::num(designTimingYield(lvfEng) * 100.0, 2) + "%"});
  t.addFootnote("Lutkemeyer (footnote 7): the game is new, the goalposts "
                "(absolute slack) are old -- the yield row shows the view "
                "the goalposts ignore");
  t.print();
  return 0;
}
