/// \file bench_char_pareto.cpp
/// \brief Active-learning characterization vs the full-grid golden: the
/// characterization-cost (device-sim queries) vs max-table-error Pareto,
/// plus the cache-behavior gates. Five phases, four gates:
///
///  1. the full-grid golden (adaptive off) over a dense 9x9 grid — the
///     truth every adaptive surface is audited against and the query cost
///     adaptive sampling avoids;
///  2. a tolerance ladder of adaptive builds (the Pareto): at the target
///     tolerance the adaptive pass must reach max abs table error <= tol
///     with at most --max-query-frac (default 0.35) of the golden's sim
///     queries, and LVF sigmas must never be optimistic vs golden;
///  3. zero-tolerance mode (errorTolPs = 0): must reproduce the golden
///     library BITWISE (writeLibraryBody byte compare) at exactly the
///     golden's query count — full-accuracy settings are a pure no-op;
///  4. a cold characterizedLibrary() pass through a fresh cache dir: one
///     build, one disk miss;
///  5. a warm pass against a pre-populated disk cache: exactly one
///     liberty.char.disk_hits, zero builds, zero sim queries.
///
/// Flags: --tol PS            gated Pareto rung (default 2.5)
///        --max-query-frac F  query budget vs golden (default 0.35)
///        --json <path>       machine-readable results (CI artifact)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "liberty/builder.h"
#include "liberty/serialize.h"
#include "util/metrics.h"
#include "util/table.h"

#include <unistd.h>

using namespace tc;

namespace {

/// Dense characterization config: one Vt, X1 only, no flops — the grid is
/// the workload. 9x9 where the default library uses 4x4: adaptive sampling
/// pays off exactly at production-density grids, and the default grid is
/// too small for a 3x3 seed to beat a 35% query budget.
CharConfig denseConfig() {
  CharConfig cfg;
  cfg.slews = {10.0, 20.0, 34.0, 52.0, 74.0, 100.0, 128.0, 155.0, 180.0};
  cfg.loadsX1 = {1.0, 2.0, 3.5, 5.5, 8.0, 11.0, 15.0, 20.0, 26.0};
  cfg.vts = {VtClass::kSvt};
  cfg.combDrives = {1};
  cfg.flopDrives = {};
  return cfg;
}

std::uint64_t simQueries() {
  return MetricsRegistry::global()
      .counter("liberty.char.sim_queries", "count", MetricStability::kNoisy)
      .value();
}
std::uint64_t ctr(const char* name) {
  return MetricsRegistry::global()
      .counter(name, "count", MetricStability::kNoisy)
      .value();
}

struct TableDiff {
  double maxErr = 0.0;       ///< max abs delay/slew error, direct cells
  double maxErrBuf = 0.0;    ///< same, composed (buffer) cells
  double maxOptimism = 0.0;  ///< max (golden sigma - adaptive sigma)
};

double maxAbsDiff(const Table2D& a, const Table2D& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.xAxis().size(); ++i)
    for (std::size_t j = 0; j < a.yAxis().size(); ++j)
      m = std::max(m, std::fabs(a.at(i, j) - b.at(i, j)));
  return m;
}

/// max over grid points of (golden - test): positive means `test` claims a
/// SMALLER sigma than the truth somewhere — optimism, the one failure the
/// LVF guardband must make impossible.
double maxOptimism(const Table2D& golden, const Table2D& test) {
  double m = 0.0;
  for (std::size_t i = 0; i < golden.xAxis().size(); ++i)
    for (std::size_t j = 0; j < golden.yAxis().size(); ++j)
      m = std::max(m, golden.at(i, j) - test.at(i, j));
  return m;
}

TableDiff compareLibraries(const Library& golden, const Library& test) {
  TableDiff d;
  for (int ci = 0; ci < golden.cellCount(); ++ci) {
    const Cell& g = golden.cell(ci);
    const Cell& t = golden.cellCount() == test.cellCount()
                        ? test.cell(ci)
                        : test.cellByName(g.name);
    double& errSlot = g.isBuffer ? d.maxErrBuf : d.maxErr;
    for (std::size_t a = 0; a < g.arcs.size(); ++a) {
      const TimingArc& ga = g.arcs[a];
      const TimingArc& ta = t.arcs[a];
      errSlot = std::max({errSlot, maxAbsDiff(ga.rise.delay, ta.rise.delay),
                          maxAbsDiff(ga.rise.slew, ta.rise.slew),
                          maxAbsDiff(ga.fall.delay, ta.fall.delay),
                          maxAbsDiff(ga.fall.slew, ta.fall.slew)});
      d.maxOptimism = std::max(
          {d.maxOptimism,
           maxOptimism(ga.riseLvf.sigmaEarly, ta.riseLvf.sigmaEarly),
           maxOptimism(ga.riseLvf.sigmaLate, ta.riseLvf.sigmaLate),
           maxOptimism(ga.fallLvf.sigmaEarly, ta.fallLvf.sigmaEarly),
           maxOptimism(ga.fallLvf.sigmaLate, ta.fallLvf.sigmaLate)});
    }
  }
  return d;
}

std::string bodyBytes(const Library& lib) {
  std::ostringstream os;
  writeLibraryBody(os, lib);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_char_pareto", argc, argv);
  double gateTol = 2.5;
  double maxQueryFrac = 0.35;
  for (int i = 1; i + 1 < argc; ++i) {
    if (!std::strcmp(argv[i], "--tol")) gateTol = std::atof(argv[i + 1]);
    if (!std::strcmp(argv[i], "--max-query-frac"))
      maxQueryFrac = std::atof(argv[i + 1]);
  }

  // A private cache dir: the cold/warm gates below demand exact counter
  // matches, so no other process's leftovers may be visible.
  const std::string cacheDir =
      "/tmp/tc_char_pareto." + std::to_string(static_cast<long>(::getpid()));
  std::filesystem::remove_all(cacheDir);
  ::setenv("TC_LIB_CACHE_DIR", cacheDir.c_str(), 1);
  registerCharMetrics();

  const LibraryPvt pvt{};  // TT nominal
  const CharConfig base = denseConfig();
  const std::size_t gridPoints = base.slews.size() * base.loadsX1.size();

  // --- Phase 1: the full-grid golden ---------------------------------------
  std::uint64_t q0 = simQueries();
  const auto golden = buildLibrary(pvt, base);
  const std::uint64_t goldenQueries = simQueries() - q0;
  std::printf("full-grid golden: %zux%zu grid, %d cells, %llu sim queries\n\n",
              base.slews.size(), base.loadsX1.size(), golden->cellCount(),
              static_cast<unsigned long long>(goldenQueries));

  // --- Phase 2: the Pareto ladder ------------------------------------------
  TextTable t("characterization cost vs table error (9x9 grid, golden-audited)");
  t.setHeader({"tolerance (ps)", "sim queries", "% of golden",
               "max err (ps)", "max err buf (ps)", "sigma optimism (ps)"});
  struct Rung {
    double tol, frac, err, errBuf, optimism;
    std::uint64_t queries;
  };
  std::vector<Rung> rungs;
  for (double tol : {5.0, gateTol, 1.0}) {
    CharConfig cfg = base;
    cfg.adaptive = true;
    cfg.errorTolPs = tol;
    q0 = simQueries();
    const auto lib = buildLibrary(pvt, cfg);
    const std::uint64_t q = simQueries() - q0;
    const TableDiff d = compareLibraries(*golden, *lib);
    const double frac =
        static_cast<double>(q) / static_cast<double>(goldenQueries);
    rungs.push_back({tol, frac, d.maxErr, d.maxErrBuf, d.maxOptimism, q});
    t.addRow({TextTable::num(tol, 1), std::to_string(q),
              TextTable::num(100.0 * frac, 1), TextTable::num(d.maxErr, 3),
              TextTable::num(d.maxErrBuf, 3),
              TextTable::num(d.maxOptimism, 6)});
  }
  t.addFootnote(
      "err = max abs delay/slew delta vs full-grid golden over all " +
      std::to_string(gridPoints) + " grid points per surface; buffer cells "
      "are composed from two INV stages, so their delta compounds");
  t.print();

  // --- Phase 3: zero tolerance must BE the golden, bitwise -----------------
  CharConfig zeroTol = base;
  zeroTol.adaptive = true;
  zeroTol.errorTolPs = 0.0;
  q0 = simQueries();
  const auto zt = buildLibrary(pvt, zeroTol);
  const std::uint64_t ztQueries = simQueries() - q0;
  const bool ztBitwise = bodyBytes(*zt) == bodyBytes(*golden);
  std::printf("\nzero-tolerance adaptive: %llu sim queries (golden %llu), "
              "library %s\n",
              static_cast<unsigned long long>(ztQueries),
              static_cast<unsigned long long>(goldenQueries),
              ztBitwise ? "bitwise-identical to golden" : "MISMATCH");

  // --- Phase 4/5: cold build, then warm disk-cache reload ------------------
  // Each phase uses a DISTINCT CharConfig digest so the process-wide memo
  // cannot satisfy the request; the disk cache is the only shortcut
  // available, which is exactly what the gate must observe.
  CharConfig cold = base;
  cold.adaptive = true;
  cold.errorTolPs = gateTol;
  cold.seedPerAxis = 4;  // distinct digest from every phase-2 rung
  const std::uint64_t coldBuilds0 = ctr("liberty.char.builds");
  const std::uint64_t coldMiss0 = ctr("liberty.char.disk_misses");
  const auto coldLib = characterizedLibrary(pvt, cold);
  const std::uint64_t coldBuilds = ctr("liberty.char.builds") - coldBuilds0;
  const std::uint64_t coldMisses = ctr("liberty.char.disk_misses") - coldMiss0;

  // Warm: pre-populate the disk entry for ANOTHER fresh digest without
  // touching the memo (direct build + write), then go through the memoized
  // path for the first time. All table data must come off disk.
  CharConfig warm = cold;
  warm.seedPerAxis = 5;  // fresh digest again
  const auto warmSrc = buildLibrary(pvt, warm);
  if (!writeLibraryFile(*warmSrc, libraryCachePath(pvt, charConfigDigest(warm))))
    std::printf("WARNING: could not pre-populate warm cache entry\n");
  const std::uint64_t warmHits0 = ctr("liberty.char.disk_hits");
  const std::uint64_t warmBuilds0 = ctr("liberty.char.builds");
  q0 = simQueries();
  const auto warmLib = characterizedLibrary(pvt, warm);
  const std::uint64_t warmHits = ctr("liberty.char.disk_hits") - warmHits0;
  const std::uint64_t warmBuilds = ctr("liberty.char.builds") - warmBuilds0;
  const std::uint64_t warmQueries = simQueries() - q0;
  const bool warmBitwise = bodyBytes(*warmLib) == bodyBytes(*warmSrc);
  std::printf("cold pass: %llu build, %llu disk miss; warm pass: %llu disk "
              "hit, %llu builds, %llu sim queries, tables %s\n",
              static_cast<unsigned long long>(coldBuilds),
              static_cast<unsigned long long>(coldMisses),
              static_cast<unsigned long long>(warmHits),
              static_cast<unsigned long long>(warmBuilds),
              static_cast<unsigned long long>(warmQueries),
              warmBitwise ? "bitwise off disk" : "MISMATCH");

  // --- Report + gates ------------------------------------------------------
  const Rung* gated = nullptr;
  for (const Rung& r : rungs)
    if (r.tol == gateTol) gated = &r;
  report.metric("grid_points", static_cast<double>(gridPoints), "count");
  report.metric("char_golden_queries", static_cast<double>(goldenQueries),
                "count");
  if (gated) {
    report.metric("char_adaptive_queries",
                  static_cast<double>(gated->queries), "count");
    report.metric("char_query_frac", gated->frac, "x");
    report.metric("char_max_err_ps", gated->err, "info");
    report.metric("char_max_err_buf_ps", gated->errBuf, "info");
    report.metric("char_sigma_optimism_ps", gated->optimism, "info");
  }
  for (const Rung& r : rungs) {
    std::ostringstream n;
    n << "char_tol" << r.tol << "_queries";
    report.metric(n.str(), static_cast<double>(r.queries), "info");
  }
  report.metric("char_zero_tol_bitwise", ztBitwise ? 1.0 : 0.0, "count");
  report.metric("char_zero_tol_queries", static_cast<double>(ztQueries),
                "count");
  report.metric("char_cold_builds", static_cast<double>(coldBuilds), "count");
  report.metric("char_cold_disk_misses", static_cast<double>(coldMisses),
                "count");
  report.metric("char_warm_disk_hits", static_cast<double>(warmHits),
                "count");
  report.metric("char_warm_builds", static_cast<double>(warmBuilds), "count");
  report.metric("char_warm_sim_queries", static_cast<double>(warmQueries),
                "count");
  report.metric("char_warm_bitwise", warmBitwise ? 1.0 : 0.0, "count");

  bool ok = true;
  if (!gated) {
    std::printf("GATE: no Pareto rung at --tol %.3f\n", gateTol);
    ok = false;
  } else {
    if (gated->err > gateTol) {
      std::printf("GATE: max table error %.3f ps > tolerance %.3f ps\n",
                  gated->err, gateTol);
      ok = false;
    }
    if (gated->optimism > 1e-9) {
      std::printf("GATE: optimistic LVF sigma (%.6f ps below golden)\n",
                  gated->optimism);
      ok = false;
    }
    if (gated->frac > maxQueryFrac) {
      std::printf("GATE: query budget blown (%.1f%% > %.1f%% of golden)\n",
                  100.0 * gated->frac, 100.0 * maxQueryFrac);
      ok = false;
    }
  }
  if (!ztBitwise || ztQueries != goldenQueries) {
    std::printf("GATE: zero-tolerance mode is not the golden (bitwise %d, "
                "queries %llu vs %llu)\n",
                ztBitwise, static_cast<unsigned long long>(ztQueries),
                static_cast<unsigned long long>(goldenQueries));
    ok = false;
  }
  if (coldBuilds != 1 || coldMisses != 1) {
    std::printf("GATE: cold pass expected exactly 1 build + 1 disk miss\n");
    ok = false;
  }
  if (warmHits != 1 || warmBuilds != 0 || warmQueries != 0 || !warmBitwise) {
    std::printf("GATE: warm pass must be a pure disk hit (hits %llu, builds "
                "%llu, queries %llu)\n",
                static_cast<unsigned long long>(warmHits),
                static_cast<unsigned long long>(warmBuilds),
                static_cast<unsigned long long>(warmQueries));
    ok = false;
  }
  (void)coldLib;

  std::filesystem::remove_all(cacheDir);
  return ok ? 0 : 1;
}
