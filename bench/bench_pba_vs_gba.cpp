/// \file bench_pba_vs_gba.cpp
/// \brief Reproduces the Sec. 1.3 PBA-vs-GBA tradeoff: "pessimism reduction
/// via use of pba has led to overheads in STA turnaround times" — slack
/// recovered per path versus the runtime cost of exact recalculation,
/// across the variation-modeling ladder.

#include <chrono>
#include <cstdio>

#include "bench_json.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "sta/pba.h"
#include "util/stats.h"
#include "util/table.h"

using namespace tc;

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_pba_vs_gba", argc, argv);
  auto L = characterizedLibrary(LibraryPvt{});
  BlockProfile p = profileAes();
  Netlist nl = generateBlock(L, p);

  std::puts("== Sec. 1.3: PBA pessimism recovery vs turnaround time ==\n");
  TextTable t("GBA vs PBA on the " + p.name + "-profile block (" +
              std::to_string(nl.instanceCount()) + " instances)");
  t.setHeader({"derate mode", "GBA runtime (ms)", "GBA WNS (ps)",
               "PBA-100 runtime (ms)", "PBA WNS (ps)", "mean recovery (ps)",
               "max recovery (ps)", "paths improved"});

  for (DerateMode m : {DerateMode::kFlatOcv, DerateMode::kAocv,
                       DerateMode::kPocv, DerateMode::kLvf}) {
    Scenario sc;
    sc.lib = L;
    sc.derate.mode = m;

    const auto t0 = std::chrono::steady_clock::now();
    StaEngine eng(nl, sc);
    eng.run();
    const auto t1 = std::chrono::steady_clock::now();

    PbaAnalyzer pba(eng);
    const auto results = pba.recalcWorst(100, Check::kSetup);
    const auto t2 = std::chrono::steady_clock::now();

    RunningStats rec;
    double maxRec = 0.0;
    int improved = 0;
    double pbaWns = 1e18;
    for (const auto& r : results) {
      rec.add(r.pessimismRemoved());
      maxRec = std::max(maxRec, r.pessimismRemoved());
      if (r.pessimismRemoved() > 0.5) ++improved;
      pbaWns = std::min(pbaWns, r.pbaSlack);
    }
    const double gbaMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double pbaMs =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    t.addRow({toString(m), TextTable::num(gbaMs, 1),
              TextTable::num(eng.wns(Check::kSetup), 1),
              TextTable::num(pbaMs, 1), TextTable::num(pbaWns, 1),
              TextTable::num(rec.mean(), 2), TextTable::num(maxRec, 2),
              std::to_string(improved) + "/100"});
  }
  t.addFootnote("PBA removes worst-slew merging, uses the tighter D2M wire "
                "metric and exact path variance; its cost is per-path");
  t.addFootnote("paper: LVF lessens the need for pessimism reduction via "
                "pba -- compare the LVF row's recovery against flat-OCV's");
  t.print();
  return 0;
}
