/// \file bench_pba_vs_gba.cpp
/// \brief Reproduces the Sec. 1.3 PBA-vs-GBA tradeoff: "pessimism reduction
/// via use of pba has led to overheads in STA turnaround times" — slack
/// recovered per path versus the runtime cost of exact recalculation,
/// across the variation-modeling ladder, plus the enumeration ladder
/// (single-retrace -> K-worst -> exhaustive-with-certificate) that prices
/// the fix for single-retrace optimism.
///
/// JSON output (--json) carries per-mode WNS correctness fields, the
/// enumeration ladder's WNS fixpoint, and the analyzer's stable
/// `ctr_pba_*` counters (paths evaluated / pruned / prefix-cache hits),
/// all gated exact-match by tools/bench_compare.py.

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_json.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "sta/pba.h"
#include "util/stats.h"
#include "util/table.h"

using namespace tc;

namespace {

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

double wnsOf(const std::vector<PbaResult>& rs) {
  double w = 1e18;
  for (const auto& r : rs) w = std::min(w, r.pbaSlack);
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_pba_vs_gba", argc, argv);
  auto L = characterizedLibrary(LibraryPvt{});

  // -- Part 1: pessimism recovery vs turnaround across derate modes -------
  BlockProfile p = profileAes();
  Netlist nl = generateBlock(L, p);

  std::puts("== Sec. 1.3: PBA pessimism recovery vs turnaround time ==\n");
  TextTable t("GBA vs PBA on the " + p.name + "-profile block (" +
              std::to_string(nl.instanceCount()) + " instances)");
  t.setHeader({"derate mode", "GBA runtime (ms)", "GBA WNS (ps)",
               "PBA-100 runtime (ms)", "PBA WNS (ps)", "mean recovery (ps)",
               "max recovery (ps)", "paths improved"});

  double gbaMsTotal = 0.0, pbaMsTotal = 0.0;
  for (DerateMode m : {DerateMode::kFlatOcv, DerateMode::kAocv,
                       DerateMode::kPocv, DerateMode::kLvf}) {
    Scenario sc;
    sc.lib = L;
    sc.derate.mode = m;

    const auto t0 = std::chrono::steady_clock::now();
    StaEngine eng(nl, sc);
    eng.run();
    const auto t1 = std::chrono::steady_clock::now();

    PbaAnalyzer pba(eng);
    const auto results = pba.recalcWorst(100, Check::kSetup);
    const auto t2 = std::chrono::steady_clock::now();

    RunningStats rec;
    double maxRec = 0.0;
    int improved = 0;
    double pbaWns = 1e18;
    for (const auto& r : results) {
      rec.add(r.pessimismRemoved());
      maxRec = std::max(maxRec, r.pessimismRemoved());
      if (r.pessimismRemoved() > 0.5) ++improved;
      pbaWns = std::min(pbaWns, r.pbaSlack);
    }
    const double gbaMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double pbaMs =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    gbaMsTotal += gbaMs;
    pbaMsTotal += pbaMs;
    t.addRow({toString(m), TextTable::num(gbaMs, 1),
              TextTable::num(eng.wns(Check::kSetup), 1),
              TextTable::num(pbaMs, 1), TextTable::num(pbaWns, 1),
              TextTable::num(rec.mean(), 2), TextTable::num(maxRec, 2),
              std::to_string(improved) + "/100"});
    const std::string mode = toString(m);
    report.metric(mode + "_gba_wns_ps", eng.wns(Check::kSetup), "ps");
    report.metric(mode + "_pba_wns_ps", pbaWns, "ps");
  }
  t.addFootnote("PBA removes worst-slew merging, uses the tighter D2M wire "
                "metric and exact path variance; its cost is per-path");
  t.addFootnote("paper: LVF lessens the need for pessimism reduction via "
                "pba -- compare the LVF row's recovery against flat-OCV's");
  t.print();
  report.metric("gba_ms", gbaMsTotal, "ms");
  report.metric("pba100_ms", pbaMsTotal, "ms");

  // -- Part 2: the enumeration ladder -------------------------------------
  // Single-retrace (K=1) is optimistic: under exact slews/D2M the worst
  // exact path need not be the GBA-worst path. Enumerating more paths per
  // endpoint monotonically lowers pbaSlack until the exhaustive run closes
  // with a certificate; the ladder prices that convergence.
  BlockProfile lp = profileTiny();
  lp.name = "ladder";
  lp.numGates = 220;
  lp.numFlops = 12;
  lp.numInputs = 10;
  lp.numOutputs = 8;
  lp.levels = 7;
  lp.fanoutSkew = 0.12;
  lp.seed = 9032;  // seeded so the GBA-worst path is NOT the exact-worst
                   // path on a dozen of the 50 endpoints (the optimism
                   // the enumerator exists to fix)
  Netlist lnl = generateBlock(L, lp);
  Scenario lsc;
  lsc.lib = L;
  lsc.derate.mode = DerateMode::kLvf;
  StaEngine leng(lnl, lsc);
  leng.run();
  PbaAnalyzer lpba(leng);

  std::puts("");
  TextTable lt("Enumeration ladder, 50 worst endpoints (" + lp.name +
               " block, LVF)");
  lt.setHeader({"paths/endpoint", "runtime (ms)", "PBA WNS (ps)",
                "endpoints below K=1", "complete certs"});
  const auto lt0 = std::chrono::steady_clock::now();
  std::vector<PbaResult> k1;
  for (const int k : {1, 4, 16}) {
    PbaOptions o;
    o.maxPaths = k;
    const auto tk = std::chrono::steady_clock::now();
    const auto rs = lpba.recalcWorst(50, Check::kSetup, o);
    const double ms = msSince(tk);
    if (k == 1) k1 = rs;
    int below = 0;
    for (std::size_t i = 0; i < rs.size(); ++i)
      if (rs[i].pbaSlack < k1[i].pbaSlack) ++below;
    lt.addRow({"K=" + std::to_string(k), TextTable::num(ms, 2),
               TextTable::num(wnsOf(rs), 2), std::to_string(below), "-"});
    report.metric("ladder_k" + std::to_string(k) + "_wns_ps", wnsOf(rs), "ps");
  }
  PbaOptions exh;
  exh.exhaustive = true;
  const auto te = std::chrono::steady_clock::now();
  const auto ex = lpba.recalcWorst(50, Check::kSetup, exh);
  const double exMs = msSince(te);
  int below = 0, complete = 0;
  for (std::size_t i = 0; i < ex.size(); ++i) {
    if (ex[i].pbaSlack < k1[i].pbaSlack) ++below;
    if (ex[i].cert.complete) ++complete;
  }
  lt.addRow({"exhaustive", TextTable::num(exMs, 2),
             TextTable::num(wnsOf(ex), 2), std::to_string(below),
             std::to_string(complete) + "/" + std::to_string(ex.size())});
  lt.addFootnote("'endpoints below K=1' counts endpoints where enumeration "
                 "found a path strictly worse than the single retrace -- "
                 "each one is slack the old clamp-and-retrace overstated");
  lt.addFootnote("the exhaustive row's certificate proves every path within "
                 "epsilon of the worst was evaluated (pruned-subtree bounds)");
  lt.print();
  report.metric("ladder_ms", msSince(lt0), "ms");
  report.metric("ladder_exhaustive_wns_ps", wnsOf(ex), "ps");
  report.metric("ladder_endpoints_below_k1", below, "count");
  report.metric("ladder_complete_certs", complete, "count");
  return 0;
}
