/// \file bench_corner_pruning.cpp
/// \brief Active-learning corner pruning vs the all-exact oracle, at the
/// scale the Sec. 2.3 super-explosion actually bites: a 4-corner signoff
/// set widened into a 200+ scenario OCV ladder. Three passes, two gates:
///
///  1. the all-exact oracle (every scenario through full STA) — the truth
///     the certificates are audited against and the cost pruning avoids;
///  2. the pruned pass over the crash-isolated farm: the exact-run budget
///     must close the whole ladder in at most --max-exact runs (default
///     40), and every certificate's bound is checked against the oracle —
///     a single optimistic bound exits 1 (CI gate);
///  3. pruned-off mode (maxPruned=0): must reproduce the oracle
///     byte-identically, certificates absent — the layer is a pure opt-in.
///
/// Unpruned slots of the pruned pass are also held bitwise to the oracle:
/// pruning must never perturb what it does not skip.
///
/// Flags: --threads N      pool width for oracle + pruned-off (default 8)
///        --farm-workers N farm process count (default: --threads)
///        --gates N        synthetic block size (default 800)
///        --max-exact N    exact-run budget for the gate (default 40)
///        --json <path>    machine-readable results (CI artifact)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_json.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "signoff/corners.h"
#include "signoff/prune.h"
#include "util/table.h"

using namespace tc;

namespace {

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// The standard 4-corner signoff set (the bit-identity suites' fixture
/// shape): typical, slow/hot at Cworst under AOCV, fast/cold at Cbest,
/// and a statistical-derate view of typical.
std::vector<Scenario> baseCorners() {
  auto libAt = [](ProcessCorner pc, Volt v, Celsius t) {
    return characterizedLibrary(LibraryPvt{pc, v, t}, /*quick=*/true);
  };
  std::vector<Scenario> out;
  {
    Scenario s;
    s.name = "func_tt";
    s.lib = libAt(ProcessCorner::kTT, 0.9, 25.0);
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "func_ssg_cw";
    s.lib = libAt(ProcessCorner::kSSG, 0.81, 125.0);
    s.beol = BeolCorner::kCworst;
    s.derate.mode = DerateMode::kAocv;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "func_ffg_cb";
    s.lib = libAt(ProcessCorner::kFFG, 0.99, -40.0);
    s.beol = BeolCorner::kCbest;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "func_tt_lvf";
    s.lib = libAt(ProcessCorner::kTT, 0.9, 25.0);
    s.derate.mode = DerateMode::kLvf;
    out.push_back(s);
  }
  return out;
}

/// Bitwise slot comparison (the bench-side mirror of the test suites'
/// expectScenarioIdentical): scalars, endpoints, PBA tail, diagnostics.
bool slotsIdentical(const ScenarioResult& x, const ScenarioResult& y) {
  bool ok = x.scenario == y.scenario && x.setupWns == y.setupWns &&
            x.holdWns == y.holdWns && x.setupTns == y.setupTns &&
            x.holdTns == y.holdTns &&
            x.setupViolations == y.setupViolations &&
            x.holdViolations == y.holdViolations &&
            x.drvViolations == y.drvViolations &&
            x.nanQuarantined == y.nanQuarantined &&
            x.pbaSetupWns == y.pbaSetupWns && x.pruned == y.pruned &&
            x.endpoints.size() == y.endpoints.size() &&
            x.pba.size() == y.pba.size() &&
            x.diagnostics.size() == y.diagnostics.size();
  for (std::size_t e = 0; ok && e < x.endpoints.size(); ++e)
    ok = x.endpoints[e].vertex == y.endpoints[e].vertex &&
         x.endpoints[e].setupSlack == y.endpoints[e].setupSlack &&
         x.endpoints[e].holdSlack == y.endpoints[e].holdSlack;
  for (std::size_t i = 0; ok && i < x.pba.size(); ++i)
    ok = x.pba[i].endpoint == y.pba[i].endpoint &&
         x.pba[i].pbaSlack == y.pba[i].pbaSlack;
  for (std::size_t d = 0; ok && d < x.diagnostics.size(); ++d)
    ok = x.diagnostics[d].code == y.diagnostics[d].code &&
         x.diagnostics[d].message == y.diagnostics[d].message;
  return ok;
}

bool resultsIdentical(const McmmResult& a, const McmmResult& b) {
  if (a.scenarios.size() != b.scenarios.size()) return false;
  if (a.merged.size() != b.merged.size()) return false;
  for (std::size_t s = 0; s < a.scenarios.size(); ++s)
    if (!slotsIdentical(a.scenarios[s], b.scenarios[s])) return false;
  return true;
}

/// "func_tt@L2U1M0S1" -> "func_tt" (per-base breakdown of the ladder).
std::string baseOf(const std::string& name) {
  const std::size_t at = name.rfind('@');
  return at == std::string::npos ? name : name.substr(0, at);
}

}  // namespace

int main(int argc, char** argv) {
  tc::bench::JsonReport report("bench_corner_pruning", argc, argv);
  int threads = 8;
  int farmWorkers = -1;
  int gates = 800;
  int maxExact = 40;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--threads") && i + 1 < argc)
      threads = std::atoi(argv[i + 1]);
    if (!std::strcmp(argv[i], "--farm-workers") && i + 1 < argc)
      farmWorkers = std::atoi(argv[i + 1]);
    if (!std::strcmp(argv[i], "--gates") && i + 1 < argc)
      gates = std::atoi(argv[i + 1]);
    if (!std::strcmp(argv[i], "--max-exact") && i + 1 < argc)
      maxExact = std::atoi(argv[i + 1]);
  }
  if (farmWorkers <= 0) farmWorkers = threads;
  registerPruneMetrics();

  // The ladder: 4 base corners x 3 derate pairs x 3 uncertainties x
  // 3 margins x 2 sigma counts = 216 scenarios. One dominance-maximal
  // corner per base group, so exactly 4 exact runs are mandatory; the
  // other 212 are the model's to spend the budget on.
  OcvLadderSpec spec;  // defaults: 3 late/early pairs, 3 uncs, 3 margins
  spec.sigmaCounts = {3.0, 4.0};
  const std::vector<Scenario> scenarios =
      deriveOcvLadder(baseCorners(), spec);

  BlockProfile profile = profileTiny();
  profile.numGates = gates;
  profile.numFlops = std::max(gates / 12, 8);
  profile.levels = 12;
  profile.clockPeriod = 1200.0;
  const Netlist nl = generateBlock(scenarios.front().lib, profile);

  std::printf("corner-pruning bench: %zu scenarios (%d-gate block), "
              "exact budget %d, farm %d workers\n\n",
              scenarios.size(), gates, maxExact, farmWorkers);

  // --- Pass 1: the all-exact oracle ---------------------------------------
  ThreadPool pool(threads);
  McmmOptions mopt;
  mopt.pool = &pool;
  const auto t0 = std::chrono::steady_clock::now();
  const McmmResult oracle = runMcmm(nl, scenarios, mopt);
  const double oracleMs = msSince(t0);
  std::printf("all-exact oracle: %zu scenarios in %.1f ms (%d threads)\n",
              scenarios.size(), oracleMs, threads);

  // --- Pass 2: the pruned pass over the process farm ----------------------
  PruneOptions popt;
  popt.maxExactRuns = maxExact;
  FarmOptions fopt;
  fopt.workers = farmWorkers;
  FarmStats stats;
  const auto t1 = std::chrono::steady_clock::now();
  const PrunedMcmmResult pruned =
      runMcmmFarmPruned(nl, scenarios, popt, fopt, &stats);
  const double prunedMs = msSince(t1);
  std::printf("pruned farm pass: %d exact runs + %zu certificates in "
              "%.1f ms  ->  %.2fx vs oracle, %d rounds, %d quarantined\n",
              pruned.exactRuns, pruned.certificates.size(), prunedMs,
              oracleMs / prunedMs, pruned.rounds, stats.quarantined);

  // --- The audit: every certificate against the oracle's truth ------------
  int optimismViolations = 0;
  int evidenceViolations = 0;
  double maxSetupGap = 0.0;  // pessimism paid: oracle WNS - certified bound
  double maxHoldGap = 0.0;
  struct BaseRow {
    int total = 0;
    int exact = 0;
    double worstGap = 0.0;
  };
  std::map<std::string, BaseRow> byBase;
  for (const Scenario& sc : scenarios) ++byBase[baseOf(sc.name)].total;
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    if (!pruned.result.scenarios[i].pruned)
      ++byBase[baseOf(scenarios[i].name)].exact;

  for (const PruneCertificate& c : pruned.certificates) {
    const std::size_t i = static_cast<std::size_t>(c.scenario);
    const double setupGap = oracle.scenarios[i].setupWns - c.boundSetupWns;
    const double holdGap = oracle.scenarios[i].holdWns - c.boundHoldWns;
    if (c.boundSetupWns > oracle.scenarios[i].setupWns ||
        c.boundHoldWns > oracle.scenarios[i].holdWns) {
      ++optimismViolations;
      std::printf("OPTIMISTIC certificate for %s: bound setup %.3f vs "
                  "oracle %.3f, hold %.3f vs %.3f\n",
                  c.scenarioName.c_str(), c.boundSetupWns,
                  oracle.scenarios[i].setupWns, c.boundHoldWns,
                  oracle.scenarios[i].holdWns);
    }
    // The certificate must cite real evidence: a dominating scenario whose
    // exact WNS is the bound.
    const std::size_t evS = static_cast<std::size_t>(c.evidenceSetup);
    const std::size_t evH = static_cast<std::size_t>(c.evidenceHold);
    if (!dominatesForBound(scenarios[evS], scenarios[i]) ||
        !dominatesForBound(scenarios[evH], scenarios[i]) ||
        c.boundSetupWns != oracle.scenarios[evS].setupWns ||
        c.boundHoldWns != oracle.scenarios[evH].holdWns)
      ++evidenceViolations;
    maxSetupGap = std::max(maxSetupGap, setupGap);
    maxHoldGap = std::max(maxHoldGap, holdGap);
    BaseRow& row = byBase[baseOf(c.scenarioName)];
    row.worstGap = std::max(row.worstGap, std::max(setupGap, holdGap));
  }

  // Pruning must never perturb what it does not skip.
  bool unprunedIdentical = true;
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    if (!pruned.result.scenarios[i].pruned &&
        !slotsIdentical(pruned.result.scenarios[i], oracle.scenarios[i]))
      unprunedIdentical = false;

  TextTable t("pruned ladder by base corner (oracle-audited)");
  t.setHeader({"base corner", "scenarios", "exact", "pruned",
               "worst bound gap (ps)"});
  for (const auto& [base, row] : byBase)
    t.addRow({base, std::to_string(row.total), std::to_string(row.exact),
              std::to_string(row.total - row.exact),
              TextTable::num(row.worstGap, 1)});
  t.addFootnote(
      "gap = oracle WNS - certified bound: the pessimism paid for skipping "
      "the run; optimism (bound above oracle) is a hard CI failure");
  t.print();
  std::printf("\ncertificate audit: %d optimistic, %d bad-evidence, worst "
              "pessimism setup %.1f / hold %.1f ps, unpruned slots %s\n",
              optimismViolations, evidenceViolations, maxSetupGap,
              maxHoldGap,
              unprunedIdentical ? "bit-identical" : "MISMATCH");

  // --- Pass 3: pruned-off mode must BE the plain runner -------------------
  PruneOptions off = popt;
  off.maxPruned = 0;
  const auto t2 = std::chrono::steady_clock::now();
  const PrunedMcmmResult plain = runMcmmPruned(nl, scenarios, off, mopt);
  const double offMs = msSince(t2);
  const bool offIdentical = resultsIdentical(plain.result, oracle) &&
                            plain.certificates.empty() &&
                            !plain.predictor.valid;
  std::printf("pruned-off (maxPruned=0): %.1f ms, vs oracle %s\n", offMs,
              offIdentical ? "byte-identical" : "MISMATCH");

  report.metric("scenarios", static_cast<double>(scenarios.size()),
                "count");
  report.metric("exact_runs", static_cast<double>(pruned.exactRuns),
                "count");
  report.metric("pruned", static_cast<double>(pruned.certificates.size()),
                "count");
  report.metric("rounds", static_cast<double>(pruned.rounds), "count");
  report.metric("quarantined", static_cast<double>(stats.quarantined),
                "count");
  report.metric("optimism_violations",
                static_cast<double>(optimismViolations), "count");
  report.metric("evidence_violations",
                static_cast<double>(evidenceViolations), "count");
  report.metric("unpruned_identical", unprunedIdentical ? 1.0 : 0.0,
                "count");
  report.metric("prunedoff_identical", offIdentical ? 1.0 : 0.0, "count");
  report.metric("oracle_setup_wns_ps", oracle.wns(Check::kSetup), "ps");
  report.metric("pruned_setup_wns_ps",
                pruned.result.wns(Check::kSetup), "ps");
  report.metric("cert_max_setup_gap_ps", maxSetupGap, "ps");
  report.metric("cert_max_hold_gap_ps", maxHoldGap, "ps");
  report.metric("oracle_ms", oracleMs, "ms");
  report.metric("pruned_farm_ms", prunedMs, "ms");
  report.metric("prune_speedup", oracleMs / prunedMs, "x");

  // The CI gates, mirrored from the acceptance criteria: the ladder must
  // be 200+ scenarios closed within the exact budget, certificates must
  // never be optimistic, the farm must not quarantine, and pruned-off
  // mode must be a byte-level no-op.
  bool ok = true;
  if (scenarios.size() < 200) {
    std::printf("GATE: ladder too small (%zu < 200 scenarios)\n",
                scenarios.size());
    ok = false;
  }
  if (pruned.exactRuns > maxExact) {
    std::printf("GATE: exact budget blown (%d > %d)\n", pruned.exactRuns,
                maxExact);
    ok = false;
  }
  if (pruned.certificates.size() + static_cast<std::size_t>(
                                       pruned.exactRuns) !=
      scenarios.size()) {
    std::printf("GATE: certificates + exact runs != scenarios\n");
    ok = false;
  }
  if (optimismViolations != 0 || evidenceViolations != 0) ok = false;
  if (!unprunedIdentical || !offIdentical) ok = false;
  if (stats.quarantined != 0) {
    std::printf("GATE: %d corners quarantined on a clean run\n",
                stats.quarantined);
    ok = false;
  }
  return ok ? 0 : 1;
}
