#include <gtest/gtest.h>

#include <cmath>

#include "liberty/builder.h"
#include "network/netgen.h"
#include "signoff/avs.h"
#include "signoff/corners.h"
#include "signoff/flexflop.h"
#include "signoff/margin.h"
#include "signoff/overdrive.h"
#include "signoff/tbc.h"
#include "signoff/yield.h"

namespace tc {
namespace {

std::shared_ptr<const Library> lib() {
  return characterizedLibrary(LibraryPvt{}, true);
}

// --- corner explosion (Sec. 2.3) --------------------------------------------------

TEST(Corners, UniverseCountsMultiply) {
  CornerUniverse u;
  u.modes = {"func", "scan"};
  u.voltages = {0.7, 0.9};
  u.temps = {-40.0, 125.0};
  u.process = {ProcessCorner::kSSG, ProcessCorner::kFFG};
  u.beol = {BeolCorner::kCworst, BeolCorner::kRCworst};
  EXPECT_EQ(u.totalViews(), 2L * 2 * 2 * 2 * 2);
  EXPECT_EQ(u.enumerate().size(), 32u);
  u.asyncDomainPairs = 2;
  EXPECT_EQ(u.totalViews(), 128L);
}

TEST(Corners, SocUniverseExplodesAtAdvancedNodes) {
  const long n28 = CornerUniverse::socUniverse(28).totalViews();
  const long n16 = CornerUniverse::socUniverse(16).totalViews();
  EXPECT_GT(n16, 2 * n28);  // FinFET voltage range + async domains
  EXPECT_GT(n28, 100L);     // already "hundreds of scenarios"
}

TEST(Corners, SetupPruningKeepsTempInversionTwin) {
  const CornerUniverse u = CornerUniverse::socUniverse(16);
  const auto pruned = pruneForSetup(u);
  EXPECT_LT(static_cast<long>(pruned.size()), u.totalViews() / 10);
  // Per mode: both a low-T and a high-T view survive (temp inversion), and
  // both Cw and RCw (gate- vs wire-dominated criticality).
  bool lowT = false, highT = false, cw = false, rcw = false;
  for (const auto& v : pruned) {
    if (v.mode != "func") continue;
    lowT |= v.temp < 0.0;
    highT |= v.temp > 80.0;
    cw |= v.beol == BeolCorner::kCworst;
    rcw |= v.beol == BeolCorner::kRCworst;
  }
  EXPECT_TRUE(lowT);
  EXPECT_TRUE(highT);
  EXPECT_TRUE(cw);
  EXPECT_TRUE(rcw);
}

TEST(Corners, HoldPruningUsesFastViews) {
  const auto pruned = pruneForHold(CornerUniverse::socUniverse(28));
  ASSERT_FALSE(pruned.empty());
  for (const auto& v : pruned) {
    EXPECT_EQ(v.process, ProcessCorner::kFFG);
    EXPECT_TRUE(v.beol == BeolCorner::kCbest || v.beol == BeolCorner::kRCbest);
  }
}

TEST(Corners, DelayScoreReflectsTempInversion) {
  // Low voltage: cold is slower. High voltage: hot is slower.
  ViewDef cold{"m", 0.55, -40.0, ProcessCorner::kTT, BeolCorner::kTypical};
  ViewDef hot{"m", 0.55, 125.0, ProcessCorner::kTT, BeolCorner::kTypical};
  EXPECT_GT(viewDelayScore(cold), viewDelayScore(hot));
  cold.vdd = hot.vdd = 1.25;
  EXPECT_LT(viewDelayScore(cold), viewDelayScore(hot));
  // Slow process is slower.
  ViewDef ssg = cold;
  ssg.process = ProcessCorner::kSSG;
  EXPECT_GT(viewDelayScore(ssg), viewDelayScore(cold));
}

// --- TBC (Sec. 3.2, Fig. 8) -------------------------------------------------------

class TbcFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = characterizedLibrary(LibraryPvt{}, true).get() ? characterizedLibrary(LibraryPvt{}, true) : nullptr;
    nl_ = new Netlist(generateBlock(lib_, profileTiny()));
    sc_ = new Scenario();
    sc_->lib = lib_;
    eng_ = new StaEngine(*nl_, *sc_);
    eng_->run();
    TbcConfig cfg;
    cfg.numPaths = 40;
    cfg.mc.samples = 1500;
    analysis_ = new TbcAnalysis(analyzeTbc(*eng_, cfg));
  }
  static void TearDownTestSuite() {
    delete analysis_;
    delete eng_;
    delete sc_;
    delete nl_;
  }
  static std::shared_ptr<const Library> lib_;
  static Netlist* nl_;
  static Scenario* sc_;
  static StaEngine* eng_;
  static TbcAnalysis* analysis_;
};
std::shared_ptr<const Library> TbcFixture::lib_;
Netlist* TbcFixture::nl_ = nullptr;
Scenario* TbcFixture::sc_ = nullptr;
StaEngine* TbcFixture::eng_ = nullptr;
TbcAnalysis* TbcFixture::analysis_ = nullptr;

TEST_F(TbcFixture, CornersArePessimisticOnAverage) {
  ASSERT_FALSE(analysis_->paths.empty());
  // Most paths have alpha < 1 at the max of both corners: the conventional
  // corner demands more margin than the statistical 3-sigma.
  int pessimistic = 0;
  for (const auto& p : analysis_->paths)
    if (std::min(p.alphaCw, p.alphaRcw) < 1.0) ++pessimistic;
  EXPECT_GT(pessimistic, static_cast<int>(analysis_->paths.size()) / 2);
  EXPECT_GT(analysis_->totalPessimismCbc, 0.0);
}

TEST_F(TbcFixture, TbcReducesPessimismSafely) {
  EXPECT_GT(analysis_->eligible, 0);
  // Every eligible path's tightened corner still covers 3 sigma.
  EXPECT_EQ(analysis_->eligibleCovered, analysis_->eligible);
  EXPECT_LT(analysis_->totalPessimismTbc, analysis_->totalPessimismCbc);
}

TEST_F(TbcFixture, ViolationCountsOrdered) {
  TbcConfig cfg;
  const auto cmp = compareViolations(*analysis_, *eng_, cfg);
  // Statistical requirement <= TBC <= CBC violations.
  EXPECT_LE(cmp.violationsStatistical, cmp.violationsTbc);
  EXPECT_LE(cmp.violationsTbc, cmp.violationsCbc);
}

TEST_F(TbcFixture, AlphaDefinitionConsistent) {
  for (const auto& p : analysis_->paths) {
    if (p.deltaCw > 1e-9) {
      EXPECT_NEAR(p.alphaCw, p.sigma3 / p.deltaCw, 1e-9);
    }
    EXPECT_GE(p.sigma3, 0.0);
    EXPECT_GT(p.nominal, 0.0);
  }
}

// --- AVS / aging (Sec. 3.3, Fig. 9) -----------------------------------------------

TEST(Avs, DelayScalerShape) {
  const DelayScaler s(0.9, 105.0);
  EXPECT_NEAR(s.scale(0.9, 0.0), 1.0, 1e-9);
  // Slower at lower voltage, faster at higher.
  EXPECT_GT(s.scale(0.7, 0.0), 1.2);
  EXPECT_LT(s.scale(1.1, 0.0), 0.9);
  // Aging slows at fixed voltage.
  EXPECT_GT(s.scale(0.9, 0.04), 1.0);
  // Raising voltage can compensate a given aging shift.
  EXPECT_LT(s.scale(1.0, 0.04), s.scale(0.9, 0.04));
}

TEST(Avs, AgingAdvanceIsConsistentUnderSplitting) {
  BtiModel bti;
  // advancing 10 years in one step == two 5-year steps at the same stress.
  const Volt oneShot = bti.advance(0.0, 0.95, 105.0, 10.0);
  Volt stepped = bti.advance(0.0, 0.95, 105.0, 5.0);
  stepped = bti.advance(stepped, 0.95, 105.0, 5.0);
  EXPECT_NEAR(oneShot, stepped, 1e-12);
  EXPECT_NEAR(oneShot, bti.deltaVt(0.95, 105.0, 10.0), 1e-12);
}

TEST(Avs, LifetimeVoltageRampsUp) {
  auto L = lib();
  BlockProfile p = profileTiny();
  Netlist nl = generateBlock(L, p);
  const DelayScaler scaler(0.9, 105.0);
  AvsConfig cfg;
  // Fresh delay consumes ~85% of the budget: AVS must eventually raise V.
  const Ps budget = 700.0;
  const auto res = simulateAvsLifetime(nl, 0.85 * budget, budget, scaler, cfg);
  ASSERT_GE(res.points.size(), 3u);
  EXPECT_TRUE(res.feasible);
  // Voltage is non-decreasing over life and ends above where it started.
  for (std::size_t i = 1; i < res.points.size(); ++i)
    EXPECT_GE(res.points[i].vdd, res.points[i - 1].vdd - 1e-9);
  EXPECT_GT(res.points.back().vdd, res.points.front().vdd);
  // Aging accumulates.
  EXPECT_GT(res.points.back().dvt, 0.01);
  EXPECT_GT(res.avgPower, 0.0);
}

TEST(Avs, InfeasibleWhenBudgetTooTight) {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  const DelayScaler scaler(0.9, 105.0);
  AvsConfig cfg;
  const auto res = simulateAvsLifetime(nl, 1000.0, 900.0, scaler, cfg);
  EXPECT_FALSE(res.feasible);  // even Vmax cannot close 1000ps into 900ps
}

TEST(Avs, UnderestimatingAgingCostsLifetimePower) {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  const DelayScaler scaler(0.9, 105.0);
  AvsConfig cfg;
  const Ps budget = 700.0;
  // A design sized with aging headroom starts slower... the comparison the
  // figure makes is across *sized implementations*; here we verify the AVS
  // mechanism monotonicity: less fresh headroom => higher lifetime power.
  const auto tight = simulateAvsLifetime(nl, 0.92 * budget, budget, scaler, cfg);
  const auto loose = simulateAvsLifetime(nl, 0.70 * budget, budget, scaler, cfg);
  EXPECT_GT(tight.avgPower, loose.avgPower);
}

// --- flexible flops ([23], Fig. 10) -------------------------------------------------

TEST(FlexFlop, RecoversWnsOnFailingDesign) {
  auto L = lib();
  BlockProfile p = profileTiny();
  p.clockPeriod = 520.0;  // setup-critical
  Netlist nl = generateBlock(L, p);
  Scenario sc;
  sc.lib = L;
  StaEngine eng(nl, sc);
  eng.run();
  ASSERT_LT(eng.wns(Check::kSetup), 0.0);
  const FlexFlopResult res = recoverFlexFlopMargin(eng);
  EXPECT_GT(res.wnsGain(), 0.0);
  EXPECT_GT(res.adjustedFlops, 0);
  EXPECT_GE(res.tnsAfter, res.tnsBefore * 1.05);  // small TNS trade allowed
  // Every assignment stays on the surface within the stretch cap.
  for (const auto& a : res.assignments) {
    const Cell& cell = nl.cellOf(a.flop);
    EXPECT_LE(a.c2q,
              cell.flop->interdep.c2q0 * 1.45 + 1e-6);
    EXPECT_GE(a.c2q, cell.flop->interdep.c2q0);
  }
}

TEST(FlexFlop, NoOpOnRelaxedDesign) {
  auto L = lib();
  BlockProfile p = profileTiny();
  p.clockPeriod = 2500.0;
  Netlist nl = generateBlock(L, p);
  Scenario sc;
  sc.lib = L;
  StaEngine eng(nl, sc);
  eng.run();
  const FlexFlopResult res = recoverFlexFlopMargin(eng);
  // Nothing critical: WNS gain may exist but must never be negative.
  EXPECT_GE(res.wnsGain(), -1e-9);
}

// --- margins ------------------------------------------------------------------------

TEST(Margin, DetangledNeverExceedsFlatSum) {
  const auto rug = defaultMarginRug();
  EXPECT_LT(detangledMargin(rug), flatSum(rug));
  // All-correlated rug: identical.
  std::vector<MarginComponent> corr = {{"a", 10.0, false}, {"b", 5.0, false}};
  EXPECT_DOUBLE_EQ(detangledMargin(corr), flatSum(corr));
  // Single independent component: identical too.
  std::vector<MarginComponent> one = {{"a", 10.0, true}};
  EXPECT_DOUBLE_EQ(detangledMargin(one), 10.0);
}

TEST(Margin, TypicalPlusFlatCoversSlowCorner) {
  auto L = lib();
  auto slow = characterizedLibrary(
      LibraryPvt{ProcessCorner::kSSG, 0.81, 125.0}, true);
  Netlist nl = generateBlock(L, profileTiny());
  Scenario typ;
  typ.lib = L;
  Scenario ssg;
  ssg.lib = slow;
  ssg.name = "ssg";
  StaEngine eTyp(nl, typ);
  eTyp.run();
  StaEngine eSsg(nl, ssg);
  eSsg.run();
  const Ps margin = requiredFlatMargin(eTyp, eSsg);
  EXPECT_GT(margin, 0.0);  // slow corner is genuinely slower
  // Signing off at typical with that margin rejects at least as many
  // endpoints as the slow corner itself does.
  const auto cmp = compareSignoffStrategies(eTyp, eSsg, defaultMarginRug());
  EXPECT_GE(cmp.typicalFlatViolations, cmp.slowCornerViolations);
  EXPECT_LE(cmp.typicalDetangledViolations, cmp.typicalFlatViolations);
}

// --- yield ---------------------------------------------------------------------------

TEST(Yield, EndpointYieldShape) {
  EXPECT_NEAR(endpointYield(0.0, 10.0), 0.5, 1e-12);
  EXPECT_GT(endpointYield(30.0, 10.0), 0.998);
  EXPECT_LT(endpointYield(-30.0, 10.0), 0.002);
  EXPECT_DOUBLE_EQ(endpointYield(5.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(endpointYield(-5.0, 0.0), 0.0);
}

TEST(Yield, SlackForYieldInvertsCdf) {
  const Ps s = slackForYield(0.99865, 10.0);  // 3 sigma
  EXPECT_NEAR(s, 30.0, 0.01);
  EXPECT_NEAR(endpointYield(s, 10.0), 0.99865, 1e-6);
}

TEST(Yield, DesignYieldDropsWithTighterClock) {
  auto L = lib();
  BlockProfile p = profileTiny();
  Netlist nlA = generateBlock(L, p);
  p.clockPeriod = 600.0;
  Netlist nlB = generateBlock(L, p);
  Scenario sc;
  sc.lib = L;
  sc.derate.mode = DerateMode::kLvf;
  StaEngine a(nlA, sc);
  a.run();
  StaEngine b(nlB, sc);
  b.run();
  const double ya = designTimingYield(a);
  const double yb = designTimingYield(b);
  EXPECT_GE(ya, yb);
  EXPECT_GE(ya, 0.0);
  EXPECT_LE(ya, 1.0);
  const auto records = yieldBreakdown(b, 15.0, 10);
  ASSERT_FALSE(records.empty());
  // Sorted worst-first.
  for (std::size_t i = 1; i < records.size(); ++i)
    EXPECT_LE(records[i - 1].passProbability, records[i].passProbability);
}

// --- overdrive / binning ([4]) ------------------------------------------------------

TEST(Overdrive, ShmooMonotoneInVoltage) {
  std::vector<std::shared_ptr<const Library>> libs = {
      characterizedLibrary(LibraryPvt{ProcessCorner::kTT, 0.7, 25.0}, true),
      characterizedLibrary(LibraryPvt{ProcessCorner::kTT, 0.9, 25.0}, true),
  };
  Netlist nl = generateBlock(libs[1], profileTiny());
  Scenario sc;
  sc.lib = libs[1];
  sc.inputDelay = 150.0;
  const auto shmoo =
      voltageFrequencyShmoo(nl, sc, libs, nl.clocks().front().period);
  ASSERT_EQ(shmoo.size(), 2u);
  EXPECT_LT(shmoo[0].vdd, shmoo[1].vdd);
  EXPECT_LT(shmoo[0].fMaxGhz, shmoo[1].fMaxGhz);   // higher V, faster
  EXPECT_LT(shmoo[0].power, shmoo[1].power);       // and hungrier
  // The min period really is the pass/fail boundary: +5ps passes.
  Scenario at07 = sc;
  at07.lib = libs[0];
  nl.clocks().front().period = shmoo[0].minPeriod + 5.0;
  StaEngine pass(nl, at07);
  pass.run();
  EXPECT_GE(pass.wns(Check::kSetup), 0.0);
}

TEST(Overdrive, CheapestSupplySelection) {
  std::vector<ShmooPoint> shmoo(2);
  shmoo[0].vdd = 0.7;
  shmoo[0].fMaxGhz = 0.5;
  shmoo[0].power = 100.0;
  shmoo[1].vdd = 0.9;
  shmoo[1].fMaxGhz = 1.0;
  shmoo[1].power = 400.0;
  // Slow bin: the underdrive point wins on power.
  EXPECT_EQ(cheapestSupplyForFrequency(shmoo, 0.4), 0);
  // Fast bin: only overdrive reaches it.
  EXPECT_EQ(cheapestSupplyForFrequency(shmoo, 0.9), 1);
  // Beyond silicon: unreachable.
  EXPECT_EQ(cheapestSupplyForFrequency(shmoo, 2.0), -1);
}

}  // namespace
}  // namespace tc
