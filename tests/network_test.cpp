#include <gtest/gtest.h>

#include "liberty/builder.h"
#include "network/netgen.h"
#include "network/netlist.h"

namespace tc {
namespace {

std::shared_ptr<const Library> lib() {
  return characterizedLibrary(LibraryPvt{}, true);
}

Netlist tinyInvChain(std::shared_ptr<const Library> L, int n) {
  Netlist nl(L);
  const int inv = L->variant("INV", VtClass::kSvt, 1);
  const PortId in = nl.addPort("in", true);
  NetId prev = nl.addNet("n0");
  nl.connectPortToNet(in, prev);
  for (int i = 0; i < n; ++i) {
    const InstId g = nl.addInstance("g" + std::to_string(i), inv);
    nl.connectInput(g, 0, prev);
    prev = nl.addNet("n" + std::to_string(i + 1));
    nl.connectOutput(g, prev);
  }
  const PortId out = nl.addPort("out", false);
  nl.connectPortToNet(out, prev);
  return nl;
}

TEST(Netlist, BuildAndValidateChain) {
  Netlist nl = tinyInvChain(lib(), 5);
  EXPECT_EQ(nl.instanceCount(), 5);
  EXPECT_EQ(nl.netCount(), 6);
  EXPECT_NO_THROW(nl.validate());
  const auto topo = nl.topoOrder();
  EXPECT_EQ(topo.size(), 5u);
  // Chain topological order is the chain order.
  for (std::size_t i = 1; i < topo.size(); ++i)
    EXPECT_LT(topo[i - 1], topo[i]);
}

TEST(Netlist, RejectsDoubleDriver) {
  auto L = lib();
  Netlist nl(L);
  const int inv = L->variant("INV", VtClass::kSvt, 1);
  const NetId n = nl.addNet("n");
  const InstId a = nl.addInstance("a", inv);
  const InstId b = nl.addInstance("b", inv);
  nl.connectOutput(a, n);
  EXPECT_THROW(nl.connectOutput(b, n), std::invalid_argument);
}

TEST(Netlist, ValidateCatchesFloatingInput) {
  auto L = lib();
  Netlist nl(L);
  const int nand = L->variant("NAND2", VtClass::kSvt, 1);
  const InstId g = nl.addInstance("g", nand);
  const NetId n = nl.addNet("n");
  const PortId in = nl.addPort("in", true);
  nl.connectPortToNet(in, n);
  nl.connectInput(g, 0, n);  // pin 1 left floating
  const NetId out = nl.addNet("out");
  nl.connectOutput(g, out);
  const PortId po = nl.addPort("po", false);
  nl.connectPortToNet(po, out);
  EXPECT_THROW(nl.validate(), std::logic_error);
}

TEST(Netlist, SwapCellEnforcesFootprint) {
  auto L = lib();
  Netlist nl = tinyInvChain(L, 2);
  const int invLvt = L->variant("INV", VtClass::kLvt, 2);
  const int nand = L->variant("NAND2", VtClass::kSvt, 1);
  EXPECT_NO_THROW(nl.swapCell(0, invLvt));
  EXPECT_EQ(nl.cellOf(0).vt, VtClass::kLvt);
  EXPECT_EQ(nl.cellOf(0).drive, 2);
  EXPECT_THROW(nl.swapCell(0, nand), std::invalid_argument);
}

TEST(Netlist, DisconnectInputRemovesSink) {
  auto L = lib();
  Netlist nl = tinyInvChain(L, 3);
  const NetId n1 = nl.instance(0).fanout;
  EXPECT_EQ(nl.net(n1).sinks.size(), 1u);
  nl.disconnectInput(1, 0);
  EXPECT_TRUE(nl.net(n1).sinks.empty());
  EXPECT_EQ(nl.instance(1).fanin[0], -1);
}

TEST(Netlist, NetSinkCapSumsPinCaps) {
  auto L = lib();
  Netlist nl(L);
  const int inv4 = L->variant("INV", VtClass::kSvt, 4);
  const int inv1 = L->variant("INV", VtClass::kSvt, 1);
  const PortId in = nl.addPort("in", true);
  const NetId n = nl.addNet("n");
  nl.connectPortToNet(in, n);
  const InstId a = nl.addInstance("a", inv4);
  const InstId b = nl.addInstance("b", inv1);
  nl.connectInput(a, 0, n);
  nl.connectInput(b, 0, n);
  EXPECT_NEAR(nl.netSinkCap(n),
              L->cell(inv4).pinCap + L->cell(inv1).pinCap, 1e-12);
}

TEST(Netgen, TinyBlockStructure) {
  auto L = lib();
  const BlockProfile p = profileTiny();
  Netlist nl = generateBlock(L, p);
  EXPECT_NO_THROW(nl.validate());
  // Gate + flop counts (clock buffers come on top).
  int flops = 0, gates = 0, ckbufs = 0;
  for (InstId i = 0; i < nl.instanceCount(); ++i) {
    if (nl.isSequential(i)) ++flops;
    else if (nl.instance(i).isClockTreeBuffer) ++ckbufs;
    else ++gates;
  }
  EXPECT_EQ(flops, p.numFlops);
  EXPECT_EQ(gates, p.numGates);
  EXPECT_GT(ckbufs, 0);
  ASSERT_EQ(nl.clocks().size(), 1u);
  EXPECT_EQ(nl.clocks()[0].period, p.clockPeriod);
}

TEST(Netgen, DeterministicForFixedSeed) {
  auto L = lib();
  Netlist a = generateBlock(L, profileTiny());
  Netlist b = generateBlock(L, profileTiny());
  ASSERT_EQ(a.instanceCount(), b.instanceCount());
  for (InstId i = 0; i < a.instanceCount(); ++i) {
    EXPECT_EQ(a.instance(i).cellIndex, b.instance(i).cellIndex);
    EXPECT_EQ(a.instance(i).fanin, b.instance(i).fanin);
  }
}

TEST(Netgen, SeedChangesStructure) {
  auto L = lib();
  BlockProfile p = profileTiny();
  Netlist a = generateBlock(L, p);
  p.seed = 43;
  Netlist b = generateBlock(L, p);
  bool differs = a.instanceCount() != b.instanceCount();
  for (InstId i = 0; !differs && i < a.instanceCount(); ++i)
    differs = a.instance(i).fanin != b.instance(i).fanin ||
              a.instance(i).cellIndex != b.instance(i).cellIndex;
  EXPECT_TRUE(differs);
}

TEST(Netgen, EveryFlopClocked) {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  for (InstId i = 0; i < nl.instanceCount(); ++i) {
    if (!nl.isSequential(i)) continue;
    EXPECT_GE(nl.instance(i).fanin[1], 0) << nl.instance(i).name;
  }
}

TEST(Netgen, PipelineDepthIsExact) {
  auto L = lib();
  Netlist nl = generatePipeline(L, 2, 7);
  EXPECT_NO_THROW(nl.validate());
  // Each lane: launch + 7 gates + capture.
  int flops = 0;
  for (InstId i = 0; i < nl.instanceCount(); ++i)
    if (nl.isSequential(i)) ++flops;
  EXPECT_EQ(flops, 4);
}

TEST(Netgen, ProfilesMatchPaperScale) {
  // Fig. 9's four circuits: gate counts in the published ballpark and
  // mutually ordered (AES > MPEG2 > c7552 > c5315).
  EXPECT_GT(profileAes().numGates, profileMpeg2().numGates);
  EXPECT_GT(profileMpeg2().numGates, profileC7552().numGates);
  EXPECT_GT(profileC7552().numGates, profileC5315().numGates);
  EXPECT_GT(profileMpeg2().numFlops, profileAes().numFlops);
}

}  // namespace
}  // namespace tc
