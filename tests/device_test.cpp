#include <gtest/gtest.h>

#include <cmath>

#include "device/aging.h"
#include "device/latch.h"
#include "device/mosfet.h"
#include "device/process.h"
#include "device/stage.h"
#include "device/tech.h"
#include "util/stats.h"

namespace tc {
namespace {

Mosfet svtNmos(Um width = 1.0) {
  Mosfet m;
  m.params = makeNmosParams(VtClass::kSvt);
  m.width = width;
  return m;
}

TEST(Mosfet, CurrentMonotoneInVgs) {
  const Mosfet m = svtNmos();
  double prev = -1.0;
  for (double vgs = 0.0; vgs <= 1.2; vgs += 0.02) {
    const double i = m.current(vgs, 0.9, 25.0);
    EXPECT_GE(i, prev) << "vgs=" << vgs;
    prev = i;
  }
}

TEST(Mosfet, CurrentMonotoneInVdsAndContinuousAcrossVdsat) {
  const Mosfet m = svtNmos();
  double prev = 0.0;
  for (double vds = 0.01; vds <= 1.2; vds += 0.005) {
    const double i = m.current(0.9, vds, 25.0);
    EXPECT_GE(i, prev * 0.999999) << "vds=" << vds;
    // No jumps: the linear-region slope bounds any step between samples.
    if (prev > 0.0) {
      EXPECT_LT(i - prev, 12.0) << "vds=" << vds;
    }
    prev = i;
  }
}

TEST(Mosfet, ContinuousAcrossThreshold) {
  const Mosfet m = svtNmos();
  const double vt = m.vtEff(25.0);
  const double below = m.current(vt + 0.0399, 0.9, 25.0);
  const double above = m.current(vt + 0.0401, 0.9, 25.0);
  EXPECT_NEAR(below, above, 0.05 * above + 1e-6);
}

TEST(Mosfet, WidthScalesCurrentLinearly) {
  const Mosfet m1 = svtNmos(1.0);
  const Mosfet m2 = svtNmos(2.0);
  EXPECT_NEAR(m2.current(0.9, 0.9, 25.0), 2.0 * m1.current(0.9, 0.9, 25.0),
              1e-9);
}

TEST(Mosfet, TemperatureInversionCrossover) {
  // At low overdrive the Vt drop wins (hot = faster); at high overdrive the
  // mobility degradation wins (hot = slower). Fig. 6(b) mechanism.
  const Mosfet m = svtNmos();
  const double lowV = 0.5;
  const double highV = 1.2;
  EXPECT_GT(m.current(lowV, lowV, 125.0), m.current(lowV, lowV, -30.0));
  EXPECT_LT(m.current(highV, highV, 125.0), m.current(highV, highV, -30.0));
}

TEST(Mosfet, VtClassOrderingFastToSlow) {
  for (double vgs : {0.6, 0.9}) {
    double prev = 1e18;
    for (VtClass vt : {VtClass::kUlvt, VtClass::kLvt, VtClass::kSvt,
                       VtClass::kHvt}) {
      Mosfet m;
      m.params = makeNmosParams(vt);
      m.width = 1.0;
      const double i = m.current(vgs, 0.9, 25.0);
      EXPECT_LT(i, prev) << toString(vt);
      prev = i;
    }
  }
}

TEST(Mosfet, LeakageExponentialInVtClass) {
  Mosfet lvt, hvt;
  lvt.params = makeNmosParams(VtClass::kLvt);
  hvt.params = makeNmosParams(VtClass::kHvt);
  lvt.width = hvt.width = 1.0;
  EXPECT_GT(lvt.leakage(0.9, 25.0), 10.0 * hvt.leakage(0.9, 25.0));
  // Leakage grows with temperature.
  EXPECT_GT(lvt.leakage(0.9, 125.0), 2.0 * lvt.leakage(0.9, 25.0));
}

TEST(ProcessCondition, CornerPolarity) {
  const auto ssg = ProcessCondition::at(ProcessCorner::kSSG);
  const auto ffg = ProcessCondition::at(ProcessCorner::kFFG);
  EXPECT_GT(ssg.nmosVtShift, 0.0);
  EXPECT_LT(ffg.nmosVtShift, 0.0);
  const auto fsg = ProcessCondition::at(ProcessCorner::kFSG);
  EXPECT_LT(fsg.nmosVtShift, 0.0);
  EXPECT_GT(fsg.pmosVtShift, 0.0);
  // SS is strictly slower than SSG (local budget folded in).
  const auto ss = ProcessCondition::at(ProcessCorner::kSS);
  EXPECT_GT(ss.nmosVtShift, ssg.nmosVtShift);
}

TEST(MismatchModel, SigmaShrinksWithWidth) {
  MismatchModel mm;
  EXPECT_GT(mm.sigmaVt(0.5), mm.sigmaVt(2.0));
  Rng rng(1);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(mm.sample(1.0, rng));
  EXPECT_NEAR(stats.mean(), 0.0, 3e-4);
  EXPECT_NEAR(stats.stddev(), mm.sigmaVt(1.0), 1e-4);
}

// ---------------------------------------------------------------------------
// Stage transient behaviour
// ---------------------------------------------------------------------------

SimConditions nominal() {
  SimConditions c;
  c.vdd = 0.9;
  c.temp = 25.0;
  c.load = 3.0;
  return c;
}

TEST(Stage, InverterBothTransitionsComplete) {
  Stage inv = Stage::make(StageKind::kInverter, 1, VtClass::kSvt, 1.0);
  const auto rise = simulateArc(inv, 0, /*inputRising=*/false, 30.0, nominal());
  const auto fall = simulateArc(inv, 0, /*inputRising=*/true, 30.0, nominal());
  ASSERT_TRUE(rise.completed);
  ASSERT_TRUE(fall.completed);
  EXPECT_TRUE(rise.outputRising);
  EXPECT_FALSE(fall.outputRising);
  EXPECT_GT(rise.delay50, 0.0);
  EXPECT_LT(rise.delay50, 200.0);
  EXPECT_GT(rise.outputSlew, 1.0);
}

TEST(Stage, DelayIncreasesWithLoad) {
  Stage inv = Stage::make(StageKind::kInverter, 1, VtClass::kSvt, 1.0);
  SimConditions c = nominal();
  double prev = 0.0;
  for (double load : {1.0, 3.0, 8.0, 20.0}) {
    c.load = load;
    const auto r = simulateArc(inv, 0, true, 30.0, c);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.delay50, prev);
    prev = r.delay50;
  }
}

TEST(Stage, DelayDecreasesWithSize) {
  SimConditions c = nominal();
  c.load = 10.0;
  double prev = 1e9;
  for (double size : {1.0, 2.0, 4.0}) {
    Stage inv = Stage::make(StageKind::kInverter, 1, VtClass::kSvt, size);
    const auto r = simulateArc(inv, 0, true, 30.0, c);
    ASSERT_TRUE(r.completed);
    EXPECT_LT(r.delay50, prev);
    prev = r.delay50;
  }
}

TEST(Stage, HvtSlowerThanLvt) {
  SimConditions c = nominal();
  Stage lvt = Stage::make(StageKind::kInverter, 1, VtClass::kLvt, 1.0);
  Stage hvt = Stage::make(StageKind::kInverter, 1, VtClass::kHvt, 1.0);
  const auto rl = simulateArc(lvt, 0, true, 30.0, c);
  const auto rh = simulateArc(hvt, 0, true, 30.0, c);
  ASSERT_TRUE(rl.completed && rh.completed);
  EXPECT_GT(rh.delay50, 1.1 * rl.delay50);
}

TEST(Stage, NandLogicAndArcSensitization) {
  Stage nand = Stage::make(StageKind::kNand, 2, VtClass::kSvt, 1.0);
  EXPECT_TRUE(nand.evalLogic({false, false}));
  EXPECT_TRUE(nand.evalLogic({true, false}));
  EXPECT_FALSE(nand.evalLogic({true, true}));
  for (int pin : {0, 1}) {
    const auto r = simulateArc(nand, pin, true, 30.0, nominal());
    ASSERT_TRUE(r.completed) << "pin " << pin;
    EXPECT_FALSE(r.outputRising);
  }
}

TEST(Stage, AoiOaiLogic) {
  Stage aoi = Stage::make(StageKind::kAoi21, 3, VtClass::kSvt, 1.0);
  EXPECT_FALSE(aoi.evalLogic({true, true, false}));
  EXPECT_FALSE(aoi.evalLogic({false, false, true}));
  EXPECT_TRUE(aoi.evalLogic({true, false, false}));
  Stage oai = Stage::make(StageKind::kOai21, 3, VtClass::kSvt, 1.0);
  EXPECT_FALSE(oai.evalLogic({true, false, true}));
  EXPECT_TRUE(oai.evalLogic({true, true, false}));
  EXPECT_TRUE(oai.evalLogic({false, false, true}));
  // All arcs complete.
  for (int pin : {0, 1, 2}) {
    EXPECT_TRUE(simulateArc(aoi, pin, true, 30.0, nominal()).completed);
    EXPECT_TRUE(simulateArc(oai, pin, true, 30.0, nominal()).completed);
  }
}

TEST(Stage, MisParallelPullupFasterThanSis) {
  // Fig. 4 mechanism: NAND2 output *rising* (inputs falling) uses the
  // parallel PMOS bank. Two simultaneous falling inputs -> double charging
  // current -> much smaller delay than single-input switching.
  Stage nand = Stage::make(StageKind::kNand, 2, VtClass::kSvt, 1.0);
  SimConditions c = nominal();
  c.load = 6.0;
  const Ps slew = 60.0;
  const auto sis = simulateArc(nand, 0, /*rising=*/false, slew, c);
  ASSERT_TRUE(sis.completed);

  std::vector<InputWave> waves(2);
  for (auto& w : waves) {
    w.v0 = c.vdd;
    w.v1 = 0.0;
    w.start = 40.0;
    w.slew = slew;
  }
  const auto mis = simulateStage(nand, waves, c, 0);
  ASSERT_TRUE(mis.completed);
  EXPECT_TRUE(mis.outputRising);
  EXPECT_LT(mis.delay50, 0.75 * sis.delay50);
}

TEST(Stage, MisSeriesPulldownSlowerThanSis) {
  // NAND2 output *falling* (inputs rising) uses the series NMOS stack.
  // Simultaneous rising inputs weaken the stack -> MIS delay > SIS delay.
  Stage nand = Stage::make(StageKind::kNand, 2, VtClass::kSvt, 1.0);
  SimConditions c = nominal();
  c.load = 6.0;
  const Ps slew = 60.0;
  const auto sis = simulateArc(nand, 0, /*rising=*/true, slew, c);
  ASSERT_TRUE(sis.completed);

  std::vector<InputWave> waves(2);
  for (auto& w : waves) {
    w.v0 = 0.0;
    w.v1 = c.vdd;
    w.start = 40.0;
    w.slew = slew;
  }
  const auto mis = simulateStage(nand, waves, c, 0);
  ASSERT_TRUE(mis.completed);
  EXPECT_FALSE(mis.outputRising);
  EXPECT_GT(mis.delay50, 1.02 * sis.delay50);
}

TEST(Stage, LeakageDependsOnInputState) {
  Stage nand = Stage::make(StageKind::kNand, 2, VtClass::kSvt, 1.0);
  // Output high (any input low): series NMOS stack leaks, stack effect
  // makes the both-low state leak less than one-low... our model keys on
  // the off network only; just check positivity and ordering vs Vt.
  const double leakSvt = nand.leakage({false, false}, 0.9, 25.0);
  EXPECT_GT(leakSvt, 0.0);
  Stage lvt = Stage::make(StageKind::kNand, 2, VtClass::kLvt, 1.0);
  EXPECT_GT(lvt.leakage({false, false}, 0.9, 25.0), leakSvt);
}

TEST(Stage, TemperatureInversionAtStageLevel) {
  // Low supply: hot is faster. High supply: hot is slower.
  SimConditions c = nominal();
  c.load = 4.0;
  Stage inv = Stage::make(StageKind::kInverter, 1, VtClass::kHvt, 1.0);
  c.vdd = 0.55;
  c.temp = -30.0;
  const auto coldLow = simulateArc(inv, 0, true, 40.0, c);
  c.temp = 125.0;
  const auto hotLow = simulateArc(inv, 0, true, 40.0, c);
  ASSERT_TRUE(coldLow.completed && hotLow.completed);
  EXPECT_GT(coldLow.delay50, hotLow.delay50);

  c.vdd = 1.2;
  c.temp = -30.0;
  const auto coldHigh = simulateArc(inv, 0, true, 40.0, c);
  c.temp = 125.0;
  const auto hotHigh = simulateArc(inv, 0, true, 40.0, c);
  ASSERT_TRUE(coldHigh.completed && hotHigh.completed);
  EXPECT_LT(coldHigh.delay50, hotHigh.delay50);
}

// ---------------------------------------------------------------------------
// Latch (Fig. 10 surfaces)
// ---------------------------------------------------------------------------

TEST(Latch, NominalCaptureWorks) {
  LatchSim dff{LatchConditions{}};
  const auto r = dff.capture(200.0, 200.0);
  ASSERT_TRUE(r.captured);
  EXPECT_GT(r.clockToQ, 5.0);
  EXPECT_LT(r.clockToQ, 400.0);
}

TEST(Latch, C2qPushesOutAsSetupShrinks) {
  LatchSim dff{LatchConditions{}};
  const Ps nom = dff.nominalClockToQ();
  const Ps tsu10 = dff.setupTime(0.10);
  // Below the 10% point c2q keeps growing (or capture fails).
  const auto tight = dff.capture(tsu10 - 8.0, 400.0);
  if (tight.captured) {
    EXPECT_GT(tight.clockToQ, 1.05 * nom);
  }
  const auto loose = dff.capture(tsu10 + 60.0, 400.0);
  ASSERT_TRUE(loose.captured);
  EXPECT_LE(loose.clockToQ, 1.06 * nom);
}

TEST(Latch, CaptureFailsForVeryLateData) {
  LatchSim dff{LatchConditions{}};
  const auto r = dff.capture(-120.0, 400.0);
  EXPECT_FALSE(r.captured);
}

TEST(Latch, SetupHoldTradeoffCurve) {
  // Fig. 10(iii): shrinking setup forces a larger hold for the same c2q
  // budget — the two constraints trade off.
  LatchSim dff{LatchConditions{}};
  const Ps tsuAtLargeHold = dff.setupTime(0.10, 300.0);
  const Ps holdAtLargeSetup = dff.holdTime(0.10, 300.0);
  const Ps holdAtTightSetup = dff.holdTime(0.10, tsuAtLargeHold + 2.0);
  EXPECT_GE(holdAtTightSetup, holdAtLargeSetup - 1.0);
  // And the characterized times are finite and ordered sensibly.
  EXPECT_LT(tsuAtLargeHold, 300.0);
  EXPECT_LT(holdAtLargeSetup, 300.0);
}

TEST(Latch, SlowerAtLowVoltage) {
  LatchConditions fast;
  fast.vdd = 1.1;
  LatchConditions slow;
  slow.vdd = 0.65;
  EXPECT_GT(LatchSim(slow).nominalClockToQ(), LatchSim(fast).nominalClockToQ());
}

// ---------------------------------------------------------------------------
// Aging
// ---------------------------------------------------------------------------

TEST(Aging, PowerLawShape) {
  BtiModel bti;
  const double y1 = bti.deltaVt(0.9, 105.0, 1.0);
  const double y10 = bti.deltaVt(0.9, 105.0, 10.0);
  EXPECT_GT(y1, 0.0);
  EXPECT_NEAR(y10 / y1, std::pow(10.0, bti.timeExp), 1e-9);
  // Higher stress voltage ages faster.
  EXPECT_GT(bti.deltaVt(1.1, 105.0, 10.0), bti.deltaVt(0.9, 105.0, 10.0));
  // Hotter ages faster.
  EXPECT_GT(bti.deltaVt(0.9, 125.0, 10.0), bti.deltaVt(0.9, 25.0, 10.0));
  // AC stress derates.
  EXPECT_LT(bti.deltaVt(0.9, 105.0, 10.0, false),
            bti.deltaVt(0.9, 105.0, 10.0, true));
}

TEST(Aging, InverseModelRoundTrip) {
  BtiModel bti;
  const double dvt = bti.deltaVt(0.95, 105.0, 10.0);
  EXPECT_NEAR(bti.stressForShift(dvt, 105.0, 10.0), 0.95, 1e-9);
}

// ---------------------------------------------------------------------------
// Technology timeline
// ---------------------------------------------------------------------------

TEST(Tech, TimelineOrderedAndComplete) {
  const auto& nodes = technologyTimeline();
  ASSERT_GE(nodes.size(), 7u);
  for (std::size_t i = 1; i < nodes.size(); ++i)
    EXPECT_LT(nodes[i].nm, nodes[i - 1].nm);
  // Wire resistance explodes toward advanced nodes ("rise of the BEOL").
  EXPECT_GT(techNode(7).wireResScale, 4.0 * techNode(28).wireResScale);
}

TEST(Tech, ConcernsAccumulate) {
  const auto at28 = activeConcerns(techNode(28));
  const auto at16 = activeConcerns(techNode(16));
  EXPECT_GT(at16.size(), at28.size());
  // MinIA appears at 20nm, not before (paper Sec. 2.4).
  const auto at40 = activeConcerns(techNode(40));
  for (auto c : at40) EXPECT_NE(c, CareAbout::kMinImplant);
  bool found = false;
  for (auto c : activeConcerns(techNode(20)))
    if (c == CareAbout::kMinImplant) found = true;
  EXPECT_TRUE(found);
}

TEST(Tech, UnknownNodeThrows) {
  EXPECT_THROW(techNode(3), std::invalid_argument);
}

}  // namespace
}  // namespace tc
