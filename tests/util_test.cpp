#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <limits>
#include <string>

#include "util/interp.h"
#include "util/json.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace tc {
namespace {

TEST(RunningStats, MeanVarianceOfKnownData) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SkewnessSignDetectsAsymmetry) {
  RunningStats rightTail;
  RunningStats symmetric;
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const double z = rng.normal();
    rightTail.add(std::exp(0.5 * z));  // lognormal: positive skew
    symmetric.add(z);
  }
  EXPECT_GT(rightTail.skewness(), 0.5);
  EXPECT_NEAR(symmetric.skewness(), 0.0, 0.1);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(3);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(2.0, 3.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_NEAR(a.skewness(), all.skewness(), 1e-9);
}

TEST(SampleSet, QuantilesAndSidedSigmas) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.quantile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(s.quantile(1.0), 100.0, 1e-12);
  EXPECT_NEAR(s.mean(), 50.5, 1e-12);
  // Symmetric data: both one-sided sigmas agree.
  EXPECT_NEAR(s.sigmaBelowMean(), s.sigmaAboveMean(), 0.5);
}

TEST(SampleSet, AsymmetricDataSplitsSigmas) {
  Rng rng(11);
  SampleSet s;
  for (int i = 0; i < 50000; ++i) s.add(std::exp(rng.normal() * 0.4));
  // Lognormal: the late (above-mean) tail is fatter.
  EXPECT_GT(s.sigmaAboveMean(), 1.15 * s.sigmaBelowMean());
  EXPECT_GT(s.skewness(), 0.5);
}

TEST(SampleSet, HistogramCountsAllSamples) {
  SampleSet s;
  for (int i = 0; i < 1000; ++i) s.add(static_cast<double>(i % 10));
  const auto h = s.histogram(0.0, 10.0, 10);
  std::size_t total = 0;
  for (auto c : h) total += c;
  EXPECT_EQ(total, 1000u);
  EXPECT_EQ(h[3], 100u);
}

TEST(NormalDistribution, CdfInverseRoundTrip) {
  for (double p : {0.001, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normalCdf(normalInverseCdf(p)), p, 1e-7);
  }
  EXPECT_NEAR(normalInverseCdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normalInverseCdf(normalCdf(3.0)), 3.0, 1e-6);
}

TEST(NormalDistribution, InverseCdfClampsOutOfRangeWithDiagnostic) {
  LogCapture cap;
  const double lo = normalInverseCdf(0.0);
  const double hi = normalInverseCdf(1.0);
  EXPECT_TRUE(std::isfinite(lo));
  EXPECT_TRUE(std::isfinite(hi));
  EXPECT_LT(lo, -8.0);
  EXPECT_GT(hi, 8.0);
  // The rational approximation is slightly asymmetric in the far tails;
  // only rough symmetry is expected at the clamp boundary.
  EXPECT_NEAR(lo, -hi, 0.05);
  EXPECT_TRUE(cap.contains("STATS_DOMAIN_CLAMPED"));
  EXPECT_EQ(cap.countAt(LogLevel::kWarn), 2);
}

TEST(SampleSet, EmptyQuantileDegradesWithDiagnostic) {
  LogCapture cap;
  SampleSet s;
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_TRUE(cap.contains("STATS_EMPTY_SAMPLES"));
}

TEST(Rng, UniformMomentsAndDeterminism) {
  Rng a(42), b(42);
  RunningStats s;
  for (int i = 0; i < 10000; ++i) {
    const double x = a.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    s.add(x);
    EXPECT_DOUBLE_EQ(x, b.uniform());  // same seed, same stream
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 40000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
  EXPECT_NEAR(s.kurtosis(), 0.0, 0.15);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(9);
  Rng c = a.fork();
  // Streams must differ (overwhelmingly likely on first draw).
  EXPECT_NE(a.next(), c.next());
}

TEST(Axis, SegmentAndFraction) {
  Axis ax({1.0, 2.0, 4.0, 8.0});
  EXPECT_EQ(ax.segment(0.5), 0u);   // clamped left
  EXPECT_EQ(ax.segment(1.5), 0u);
  EXPECT_EQ(ax.segment(3.0), 1u);
  EXPECT_EQ(ax.segment(100.0), 2u); // clamped right
  EXPECT_DOUBLE_EQ(ax.fraction(3.0, 1), 0.5);
}

TEST(Axis, RejectsNonMonotone) {
  EXPECT_THROW(Axis({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Axis({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Axis(std::vector<double>{}), std::invalid_argument);
}

TEST(Interp1, ExactAtKnotsLinearBetween) {
  Axis ax({0.0, 1.0, 3.0});
  std::vector<double> v{10.0, 20.0, 0.0};
  EXPECT_DOUBLE_EQ(interp1(ax, v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(interp1(ax, v, 1.0), 20.0);
  EXPECT_DOUBLE_EQ(interp1(ax, v, 2.0), 10.0);
  // Linear extrapolation beyond the grid:
  EXPECT_DOUBLE_EQ(interp1(ax, v, 4.0), -10.0);
  EXPECT_DOUBLE_EQ(interp1(ax, v, -1.0), 0.0);
}

TEST(Table2D, BilinearExactOnBilinearFunction) {
  // f(x,y) = 2x + 3y + xy is reproduced exactly by bilinear interpolation.
  Axis xs({0.0, 1.0, 2.0});
  Axis ys({0.0, 2.0});
  std::vector<double> vals;
  for (double x : xs.points())
    for (double y : ys.points()) vals.push_back(2 * x + 3 * y + x * y);
  Table2D t(xs, ys, vals);
  for (double x : {0.25, 0.5, 1.75}) {
    for (double y : {0.3, 1.9}) {
      EXPECT_NEAR(t.lookup(x, y), 2 * x + 3 * y + x * y, 1e-12);
    }
  }
  // Extrapolation stays linear:
  EXPECT_NEAR(t.lookup(3.0, 0.0), 6.0, 1e-12);
}

TEST(Table2D, SizeValidation) {
  EXPECT_THROW(Table2D(Axis({0.0, 1.0}), Axis({0.0, 1.0}), {1.0, 2.0, 3.0}),
               std::invalid_argument);
}

TEST(TextTable, RendersAlignedGrid) {
  TextTable t("demo");
  t.setHeader({"name", "value"});
  t.addRow({"x", TextTable::num(1.5, 2)});
  t.addRow({"longer-name", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("| x           |"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
}

TEST(AsciiBar, ScalesWithValue) {
  EXPECT_EQ(asciiBar(10.0, 10.0, 10).size(), 10u);
  EXPECT_EQ(asciiBar(5.0, 10.0, 10).size(), 5u);
  EXPECT_TRUE(asciiBar(-1.0, 10.0, 10).empty());
}

// ---------------------------------------------------------------------------
// tc::Json — the wire format of the goalposts-server. Determinism of
// dump() (sorted keys, fixed number rendering) is what makes served
// responses byte-comparable against a fresh-server oracle.
// ---------------------------------------------------------------------------

TEST(Json, ParseDumpRoundTrip) {
  const char* text =
      R"({"a":[1,2.5,true,false,null],"b":{"nested":"str"},"z":-3})";
  auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().dump(), text);
  // Re-parsing the dump is a fixed point.
  auto again = Json::parse(parsed.value().dump());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().dump(), text);
}

TEST(Json, DumpSortsObjectKeys) {
  auto j = Json::object();
  j.set("zeta", 1).set("alpha", 2).set("mid", 3);
  EXPECT_EQ(j.dump(), R"({"alpha":2,"mid":3,"zeta":1})");
}

TEST(Json, NumberRendering) {
  EXPECT_EQ(Json(42.0).dump(), "42");          // integral values are bare
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(0.5).dump(), "0.5");
  // 17 significant digits survive a round trip bit-exactly.
  const double pi = 3.14159265358979312;
  auto back = Json::parse(Json(pi).dump());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().asDouble(), pi);
  // Non-finite values have no JSON representation: dump as null.
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(Json, NumberCodecIgnoresProcessLocale) {
  // The byte-deterministic dump contract (and parsing) must hold even when
  // the embedding process runs under a comma-decimal LC_NUMERIC; the codec
  // uses std::to_chars/from_chars, which are locale-independent.
  const char* kCandidates[] = {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8",
                               "fr_FR.utf8", "de_DE", "fr_FR"};
  const char* applied = nullptr;
  for (const char* c : kCandidates)
    if (std::setlocale(LC_NUMERIC, c)) {
      applied = c;
      break;
    }
  if (!applied) GTEST_SKIP() << "no comma-decimal locale installed";
  const std::string dumped = Json(0.5).dump();
  auto parsed = Json::parse("[1.5,2.25e-3]");
  const bool parsedOk = parsed.ok();
  const double v0 = parsedOk ? parsed.value().at(0).asDouble() : 0.0;
  const double v1 = parsedOk ? parsed.value().at(1).asDouble() : 0.0;
  std::setlocale(LC_NUMERIC, "C");  // restore before asserting
  EXPECT_EQ(dumped, "0.5");
  ASSERT_TRUE(parsedOk);
  EXPECT_EQ(v0, 1.5);
  EXPECT_EQ(v1, 2.25e-3);
}

TEST(Json, StringEscapes) {
  auto parsed = Json::parse(R"(["\"\\\/\b\f\n\r\tAé"])");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().at(0).asString(), "\"\\/\b\f\n\r\t"
                                             "A\xc3\xa9");
  // Surrogate pair → 4-byte UTF-8.
  auto emoji = Json::parse(R"("😀")");
  ASSERT_TRUE(emoji.ok());
  EXPECT_EQ(emoji.value().asString(), "\xf0\x9f\x98\x80");
  // A lone high surrogate is an error, not silent garbage.
  EXPECT_FALSE(Json::parse(R"("\ud83d")").ok());
}

TEST(Json, HostileInputFailsWithCodes) {
  EXPECT_EQ(Json::parse("{").status().code(), DiagCode::kJsonSyntax);
  EXPECT_EQ(Json::parse("").status().code(), DiagCode::kJsonSyntax);
  EXPECT_EQ(Json::parse("[1,2,").status().code(), DiagCode::kJsonSyntax);
  EXPECT_EQ(Json::parse("1 2").status().code(),
            DiagCode::kJsonTrailingData);
  EXPECT_EQ(Json::parse("1e999").status().code(),
            DiagCode::kJsonBadNumber);
  EXPECT_EQ(Json::parse(R"("\x41")").status().code(),
            DiagCode::kJsonBadEscape);
  const std::string bomb(200, '[');
  EXPECT_EQ(Json::parse(bomb).status().code(),
            DiagCode::kJsonDepthExceeded);
}

TEST(Json, DepthCapIsConfigurable) {
  // 10 levels parses under the default cap but not under maxDepth=5.
  const std::string nested = std::string(10, '[') + std::string(10, ']');
  EXPECT_TRUE(Json::parse(nested).ok());
  EXPECT_EQ(Json::parse(nested, /*maxDepth=*/5).status().code(),
            DiagCode::kJsonDepthExceeded);
}

TEST(Json, AccessorsAreTotalFunctions) {
  Json j;  // null
  EXPECT_TRUE(j.isNull());
  EXPECT_EQ(j["missing"]["deeper"].asInt(-1), -1);  // chains never throw
  EXPECT_FALSE(j.contains("anything"));
  EXPECT_EQ(j.asBool(true), true);
  auto arr = Json::array();
  arr.push(1).push("two");
  EXPECT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr.at(0).asInt(), 1);
  EXPECT_EQ(arr.at(99).asInt(-1), -1);  // out-of-range yields null
}

}  // namespace
}  // namespace tc
