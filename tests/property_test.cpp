/// Property-based and parameterized suites: invariants that must hold
/// across the whole cell/corner/mode grid, not just at spot-checked points.

#include <gtest/gtest.h>

#include <cmath>

#include "interconnect/extract.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "opt/closure.h"
#include "place/placement.h"
#include "sta/engine.h"
#include "sta/pba.h"
#include "util/stats.h"

namespace tc {
namespace {

std::shared_ptr<const Library> lib() {
  return characterizedLibrary(LibraryPvt{}, true);
}

// ---------------------------------------------------------------------------
// Library-wide invariants over (footprint x Vt)
// ---------------------------------------------------------------------------

struct CellCase {
  const char* footprint;
  VtClass vt;
};

class CellGrid : public ::testing::TestWithParam<CellCase> {};

TEST_P(CellGrid, DelayMonotoneInLoad) {
  const auto [fp, vt] = GetParam();
  const Cell& c = lib()->cell(lib()->variant(fp, vt, 1));
  for (const TimingArc& arc : c.arcs) {
    for (bool rise : {true, false}) {
      const NldmSurface& s = arc.surface(rise);
      for (double slew : {15.0, 50.0, 140.0}) {
        double prev = -1e9;
        for (double load : {1.2, 2.5, 4.0, 8.0, 12.0}) {
          const double d = s.delayAt(slew, load);
          EXPECT_GE(d, prev) << c.name << " slew=" << slew
                             << " load=" << load;
          prev = d;
        }
      }
    }
  }
}

TEST_P(CellGrid, OutputSlewMonotoneInLoad) {
  const auto [fp, vt] = GetParam();
  const Cell& c = lib()->cell(lib()->variant(fp, vt, 1));
  for (const TimingArc& arc : c.arcs) {
    for (bool rise : {true, false}) {
      const NldmSurface& s = arc.surface(rise);
      double prev = -1e9;
      for (double load : {1.2, 3.0, 6.0, 12.0}) {
        const double sl = s.slewAt(50.0, load);
        EXPECT_GE(sl, prev - 0.5) << c.name;  // small table noise allowed
        prev = sl;
      }
    }
  }
}

TEST_P(CellGrid, LvfSigmasNonNegativeAndBounded) {
  const auto [fp, vt] = GetParam();
  const Cell& c = lib()->cell(lib()->variant(fp, vt, 1));
  for (const TimingArc& arc : c.arcs) {
    for (bool rise : {true, false}) {
      const LvfSurface& s = arc.lvf(rise);
      const NldmSurface& d = arc.surface(rise);
      for (double slew : {15.0, 140.0}) {
        for (double load : {1.2, 12.0}) {
          const double late = s.lateAt(slew, load);
          const double early = s.earlyAt(slew, load);
          EXPECT_GE(late, 0.0) << c.name;
          EXPECT_GE(early, 0.0) << c.name;
          const double delay = std::max(d.delayAt(slew, load), 1.0);
          EXPECT_LT(late, 0.5 * delay) << c.name;  // sigma << delay
        }
      }
    }
  }
}

TEST_P(CellGrid, DriveVariantsOrderedByStrength) {
  const auto [fp, vt] = GetParam();
  double prev = 1e18;
  for (int drive : {1, 2, 4, 8}) {
    const int idx = lib()->variant(fp, vt, drive);
    if (idx < 0) continue;
    const Cell& c = lib()->cell(idx);
    const double d = c.arcs[0].rise.delayAt(40.0, 10.0);
    EXPECT_LT(d, prev) << c.name;
    prev = d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombCells, CellGrid,
    ::testing::Values(
        CellCase{"INV", VtClass::kUlvt}, CellCase{"INV", VtClass::kSvt},
        CellCase{"INV", VtClass::kHvt}, CellCase{"BUF", VtClass::kSvt},
        CellCase{"NAND2", VtClass::kLvt}, CellCase{"NAND2", VtClass::kHvt},
        CellCase{"NAND3", VtClass::kSvt}, CellCase{"NOR2", VtClass::kSvt},
        CellCase{"NOR3", VtClass::kLvt}, CellCase{"AOI21", VtClass::kSvt},
        CellCase{"OAI21", VtClass::kHvt}),
    [](const auto& info) {
      return std::string(info.param.footprint) + "_" +
             toString(info.param.vt);
    });

// ---------------------------------------------------------------------------
// BEOL corner invariants over the full corner set
// ---------------------------------------------------------------------------

class CornerGrid : public ::testing::TestWithParam<BeolCorner> {};

TEST_P(CornerGrid, ScalesArePositiveAndTightenable) {
  const BeolCorner corner = GetParam();
  const CornerScales full = cornerScales(corner);
  EXPECT_GT(full.r, 0.5);
  EXPECT_GT(full.cg, 0.5);
  EXPECT_GT(full.cc, 0.3);
  // Tightening interpolates monotonically toward typical.
  double prevDist = 1e9;
  for (double k : {3.0, 2.0, 1.0, 0.0}) {
    const CornerScales t = tightenedScales(corner, k);
    const double dist = std::abs(t.r - 1.0) + std::abs(t.cg - 1.0) +
                        std::abs(t.cc - 1.0);
    EXPECT_LE(dist, prevDist + 1e-12);
    prevDist = dist;
  }
}

TEST_P(CornerGrid, ExtractionRespectsCornerPolarity) {
  const BeolCorner corner = GetParam();
  auto L = lib();
  Netlist nl = generatePipeline(L, 1, 3);
  Extractor ex(nl, BeolStack::forNode(techNode(28)));
  ExtractionOptions typ;
  ExtractionOptions opt;
  opt.corner = corner;
  const NetId n = nl.instance(0).fanout;
  const auto pTyp = ex.extract(n, typ);
  const auto pCor = ex.extract(n, opt);
  const double dTyp = pTyp.tree.elmore(pTyp.sinkNode[0]);
  const double dCor = pCor.tree.elmore(pCor.sinkNode[0]);
  switch (corner) {
    case BeolCorner::kTypical:
      EXPECT_NEAR(dCor, dTyp, 1e-9);
      break;
    case BeolCorner::kRCworst:
      // R and C both worse: delay unambiguously up.
      EXPECT_GT(dCor, dTyp);
      EXPECT_GT(pCor.wireCap, pTyp.wireCap);
      break;
    case BeolCorner::kRCbest:
      EXPECT_LT(dCor, dTyp);
      EXPECT_LT(pCor.wireCap, pTyp.wireCap);
      break;
    // The C corners trade R against C, so the *delay* direction depends on
    // whether the net is pin- or wire-cap dominated (footnote 10 of the
    // paper, in miniature); only the capacitance direction is invariant.
    case BeolCorner::kCworst:
    case BeolCorner::kCcworst:
      EXPECT_GT(pCor.wireCap, pTyp.wireCap);
      break;
    case BeolCorner::kCbest:
    case BeolCorner::kCcbest:
      EXPECT_LT(pCor.wireCap, pTyp.wireCap);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBeolCorners, CornerGrid,
                         ::testing::ValuesIn(allBeolCorners()),
                         [](const auto& info) {
                           return std::string(toString(info.param));
                         });

// ---------------------------------------------------------------------------
// STA invariants over derate modes
// ---------------------------------------------------------------------------

class DerateGrid : public ::testing::TestWithParam<DerateMode> {};

TEST_P(DerateGrid, LateNeverEarlierThanEarly) {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  Scenario sc;
  sc.lib = L;
  sc.derate.mode = GetParam();
  StaEngine eng(nl, sc);
  eng.run();
  for (const auto& ep : eng.endpoints()) {
    if (ep.flop < 0) continue;
    EXPECT_GE(ep.dataLate, ep.dataEarly - 1e-6);
    EXPECT_GE(ep.captureLate, ep.captureEarly - 1e-6);
  }
}

TEST_P(DerateGrid, CpprCreditNonNegativeAndBounded) {
  auto L = lib();
  Netlist nl = generatePipeline(L, 4, 5);
  Scenario sc;
  sc.lib = L;
  sc.derate.mode = GetParam();
  StaEngine eng(nl, sc);
  eng.run();
  for (const auto& ep : eng.endpoints()) {
    if (ep.flop < 0) continue;
    EXPECT_GE(ep.cpprSetup, -1e-9);
    // Credit cannot exceed the whole capture-clock late arrival.
    EXPECT_LE(ep.cpprSetup, ep.captureLate + 1e-6);
  }
}

TEST_P(DerateGrid, PbaNeverWorseAcrossModes) {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  Scenario sc;
  sc.lib = L;
  sc.derate.mode = GetParam();
  StaEngine eng(nl, sc);
  eng.run();
  PbaAnalyzer pba(eng);
  for (const auto& r : pba.recalcWorst(10, Check::kSetup))
    EXPECT_GE(r.pbaSlack, r.gbaSlack - 1e-9);
  // Hold is NOT monotone versus GBA: the exact retrace uses D2M wire
  // delays (<= Elmore) so early arrivals move earlier, and without the old
  // clamp that legitimately *lowers* hold pbaSlack below gbaSlack — the
  // conservative direction. What must hold instead: evaluating more paths
  // can only keep or lower the slack (min-over-paths is K-monotone).
  PbaOptions k4;
  k4.maxPaths = 4;
  PbaOptions exh;
  exh.exhaustive = true;
  const auto h1 = pba.recalcWorst(10, Check::kHold);
  const auto h4 = pba.recalcWorst(10, Check::kHold, k4);
  const auto hx = pba.recalcWorst(10, Check::kHold, exh);
  ASSERT_EQ(h1.size(), h4.size());
  ASSERT_EQ(h1.size(), hx.size());
  for (std::size_t i = 0; i < h1.size(); ++i) {
    EXPECT_LE(h4[i].pbaSlack, h1[i].pbaSlack + 1e-9);
    EXPECT_LE(hx[i].pbaSlack, h4[i].pbaSlack + 1e-9);
    EXPECT_TRUE(hx[i].cert.complete);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDerateModes, DerateGrid,
                         ::testing::Values(DerateMode::kNone,
                                           DerateMode::kFlatOcv,
                                           DerateMode::kAocv,
                                           DerateMode::kPocv,
                                           DerateMode::kLvf),
                         [](const auto& info) {
                           std::string s = toString(info.param);
                           for (char& ch : s)
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           return s;
                         });

// ---------------------------------------------------------------------------
// Closure-loop invariants over seeds
// ---------------------------------------------------------------------------

class SeedGrid : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedGrid, ClosureNeverDegradesWns) {
  auto L = lib();
  BlockProfile p = profileTiny();
  p.seed = GetParam();
  p.clockPeriod = 500.0;
  Netlist nl = generateBlock(L, p);
  Scenario sc;
  sc.lib = L;
  ClosureLoop loop(nl, sc);
  ClosureConfig cfg;
  cfg.iterations = 4;
  cfg.stopWhenClean = false;
  const ClosureResult res = loop.run(cfg);
  EXPECT_GE(res.final.setupWns,
            res.iterations.front().before.setupWns - 1e-9)
      << "seed " << GetParam();
  EXPECT_NO_THROW(nl.validate());
}

TEST_P(SeedGrid, GeneratedBlocksAlwaysValidAndPlaceable) {
  auto L = lib();
  BlockProfile p = profileTiny();
  p.seed = GetParam();
  Netlist nl = generateBlock(L, p);
  EXPECT_NO_THROW(nl.validate());
  const Floorplan fp = Floorplan::forDesign(nl);
  placeDesign(nl, fp, 2, GetParam());
  RowOccupancy occ(nl, fp);
  EXPECT_TRUE(occ.isLegal()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedGrid,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

// ---------------------------------------------------------------------------
// Statistical identities
// ---------------------------------------------------------------------------

class SigmaGrid : public ::testing::TestWithParam<double> {};

TEST_P(SigmaGrid, QuantileMatchesGaussianTheory) {
  const double sigma = GetParam();
  Rng rng(17);
  SampleSet s;
  for (int i = 0; i < 60000; ++i) s.add(rng.normal(100.0, sigma));
  // 3-sigma quantile within 5% of theory.
  EXPECT_NEAR(s.quantile(0.99865) - s.mean(), 3.0 * sigma, 0.15 * sigma);
  EXPECT_NEAR(s.sigmaAboveMean(), sigma, 0.05 * sigma);
  EXPECT_NEAR(s.sigmaBelowMean(), sigma, 0.05 * sigma);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, SigmaGrid,
                         ::testing::Values(1.0, 5.0, 25.0));

}  // namespace
}  // namespace tc
