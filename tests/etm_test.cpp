#include <gtest/gtest.h>

#include <cmath>

#include "liberty/builder.h"
#include "network/netgen.h"
#include "signoff/etm.h"

namespace tc {
namespace {

std::shared_ptr<const Library> lib() {
  return characterizedLibrary(LibraryPvt{}, true);
}

Scenario flatScenario() {
  Scenario sc;
  sc.lib = lib();
  sc.inputDelay = 180.0;  // fixed: ETM sensitivities assume a set value
  return sc;
}

TEST(Etm, ExtractionShapesAndCompression) {
  Netlist nl = generateBlock(lib(), profileTiny());
  Scenario sc = flatScenario();
  StaEngine eng(nl, sc);
  eng.run();
  const TimingModel m = extractTimingModel(eng, "tiny");
  EXPECT_GT(m.inputs.size(), 0u);
  EXPECT_GT(m.outputs.size(), 0u);
  EXPECT_TRUE(std::isfinite(m.internalSlackRef));
  // The model is vastly smaller than the flat graph.
  EXPECT_LT(m.modelArcCount(), m.flatVertexCount / 5);
  // Reference-point prediction equals the flat WNS.
  EXPECT_NEAR(m.predictSetupWns(m.refPeriod, m.refInputDelay),
              eng.wns(Check::kSetup), 1e-6);
}

TEST(Etm, PredictionExactUnderPeriodSweep) {
  Netlist nl = generateBlock(lib(), profileTiny());
  Scenario sc = flatScenario();
  StaEngine eng(nl, sc);
  eng.run();
  const TimingModel m = extractTimingModel(eng);
  for (Ps dT : {-150.0, -50.0, 80.0, 250.0}) {
    nl.clocks().front().period = m.refPeriod + dT;
    StaEngine flat(nl, sc);
    flat.run();
    EXPECT_NEAR(m.predictSetupWns(m.refPeriod + dT, m.refInputDelay),
                flat.wns(Check::kSetup), 1e-6)
        << "dT=" << dT;
  }
  nl.clocks().front().period = m.refPeriod;
}

TEST(Etm, PredictionExactUnderInputDelaySweep) {
  Netlist nl = generateBlock(lib(), profileTiny());
  Scenario sc = flatScenario();
  StaEngine eng(nl, sc);
  eng.run();
  const TimingModel m = extractTimingModel(eng);
  for (Ps d : {80.0, 140.0, 260.0, 380.0}) {
    Scenario sc2 = sc;
    sc2.inputDelay = d;
    StaEngine flat(nl, sc2);
    flat.run();
    EXPECT_NEAR(m.predictSetupWns(m.refPeriod, d), flat.wns(Check::kSetup),
                1e-6)
        << "inputDelay=" << d;
  }
}

TEST(Etm, InputArcsCarryRequiredArrivals) {
  Netlist nl = generateBlock(lib(), profileTiny());
  Scenario sc = flatScenario();
  StaEngine eng(nl, sc);
  eng.run();
  const TimingModel m = extractTimingModel(eng);
  for (const auto& in : m.inputs) {
    EXPECT_NEAR(in.requiredArrival, m.refInputDelay + in.slackRef, 1e-9);
    EXPECT_FALSE(in.name.empty());
  }
  // Clock-to-out delays are positive and below the period at reference
  // (the block met its PO constraints or the slack says otherwise).
  for (const auto& out : m.outputs) {
    EXPECT_GT(out.clockToOut, 0.0);
  }
}

TEST(Etm, InternalSlackIndependentOfBoundary) {
  // Internal (reg-to-reg) slack must not move with the input delay.
  Netlist nl = generateBlock(lib(), profileTiny());
  Scenario a = flatScenario();
  a.inputDelay = 100.0;
  Scenario b = flatScenario();
  b.inputDelay = 400.0;
  StaEngine ea(nl, a);
  ea.run();
  StaEngine eb(nl, b);
  eb.run();
  const TimingModel ma = extractTimingModel(ea);
  const TimingModel mb = extractTimingModel(eb);
  EXPECT_NEAR(ma.internalSlackRef, mb.internalSlackRef, 1e-6);
  EXPECT_NEAR(ma.internalHoldSlack, mb.internalHoldSlack, 1e-6);
}

}  // namespace
}  // namespace tc
