/// \file mcmm_determinism_test.cpp
/// \brief The parallel runtime's core contract: results are bit-identical
/// to the serial reference whatever the pool width. A full MCMM scenario
/// set is run serial and under pools of 1, 2, and 8 threads; WNS/TNS,
/// every endpoint's slacks, and the merged diagnostic stream must match
/// exactly (==, not near).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "liberty/builder.h"
#include "mcmm_identical.h"
#include "network/netgen.h"
#include "signoff/corners.h"
#include "sta/pba.h"
#include "util/log.h"

namespace tc {
namespace {

using testutil::expectIdentical;
using testutil::scenarioSet;

TEST(McmmDeterminism, ParallelMatchesSerialAtEveryPoolWidth) {
  LogCapture quiet;
  const std::vector<Scenario> scenarios = scenarioSet();
  Netlist nl = generateBlock(scenarios.front().lib, profileTiny());

  McmmRunner runner(nl, scenarios);
  const McmmResult serial = runner.run(McmmOptions{});  // pool == nullptr
  ASSERT_FALSE(serial.scenarios.empty());
  ASSERT_FALSE(serial.scenarios.front().endpoints.empty());

  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    McmmOptions opt;
    opt.pool = &pool;
    const McmmResult par = runner.run(opt);
    expectIdentical(serial, par, "threads=" + std::to_string(threads));
  }
}

TEST(McmmDeterminism, IntraScenarioOnlyAlsoMatches) {
  // Pool handed to the engines but scenario dispatch kept serial — the
  // level-parallel propagate/required/endpoint sweeps alone must already
  // be bit-identical.
  LogCapture quiet;
  const std::vector<Scenario> scenarios = scenarioSet();
  Netlist nl = generateBlock(scenarios.front().lib, profileTiny());

  Scenario sc = scenarios[1];  // slow corner with AOCV
  StaEngine serial(nl, sc);
  serial.run();

  ThreadPool pool(4);
  StaEngine par(nl, sc);
  par.setThreadPool(&pool);
  par.run();

  EXPECT_EQ(serial.wns(Check::kSetup), par.wns(Check::kSetup));
  EXPECT_EQ(serial.wns(Check::kHold), par.wns(Check::kHold));
  EXPECT_EQ(serial.tns(Check::kSetup), par.tns(Check::kSetup));
  ASSERT_EQ(serial.endpoints().size(), par.endpoints().size());
  for (std::size_t e = 0; e < serial.endpoints().size(); ++e) {
    EXPECT_EQ(serial.endpoints()[e].setupSlack, par.endpoints()[e].setupSlack);
    EXPECT_EQ(serial.endpoints()[e].holdSlack, par.endpoints()[e].holdSlack);
  }
}

TEST(McmmDeterminism, PbaRecalcMatchesSerialUnderPool) {
  LogCapture quiet;
  const std::vector<Scenario> scenarios = scenarioSet();
  Netlist nl = generateBlock(scenarios.front().lib, profileTiny());
  Scenario sc = scenarios[1];

  StaEngine eng(nl, sc);
  eng.run();
  PbaAnalyzer pba(eng);
  const auto ref = pba.recalcWorst(20, Check::kSetup);

  ThreadPool pool(4);
  const auto par = pba.recalcWorst(20, Check::kSetup, &pool);
  ASSERT_EQ(ref.size(), par.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].pbaSlack, par[i].pbaSlack) << "path " << i;
    EXPECT_EQ(ref[i].gbaSlack, par[i].gbaSlack) << "path " << i;
  }
}

TEST(McmmDeterminism, ScenarioPbaMatchesSerialUnderPool) {
  // The per-scenario PBA tail (McmmOptions::pbaEndpoints) rides the same
  // contract as everything else in the runner: enumerated results,
  // certificates, and the derived pbaSetupWns are bit-identical serial vs
  // pooled, at K=1 and with exhaustive enumeration.
  LogCapture quiet;
  const std::vector<Scenario> scenarios = scenarioSet();
  Netlist nl = generateBlock(scenarios.front().lib, profileTiny());
  McmmRunner runner(nl, scenarios);

  for (const bool exhaustive : {false, true}) {
    McmmOptions opt;
    opt.pbaEndpoints = 12;
    opt.pba.exhaustive = exhaustive;
    const McmmResult serial = runner.run(opt);

    ThreadPool pool(4);
    opt.pool = &pool;
    const McmmResult par = runner.run(opt);
    expectIdentical(serial, par,
                    exhaustive ? "pba exhaustive" : "pba retrace");
    ASSERT_EQ(serial.scenarios.size(), par.scenarios.size());
    for (std::size_t s = 0; s < serial.scenarios.size(); ++s) {
      const ScenarioResult& x = serial.scenarios[s];
      const ScenarioResult& y = par.scenarios[s];
      SCOPED_TRACE("scenario " + x.scenario);
      EXPECT_FALSE(x.pba.empty());
      EXPECT_EQ(x.pbaSetupWns, y.pbaSetupWns);
      ASSERT_EQ(x.pba.size(), y.pba.size());
      for (std::size_t i = 0; i < x.pba.size(); ++i) {
        EXPECT_EQ(x.pba[i].endpoint, y.pba[i].endpoint);
        EXPECT_EQ(x.pba[i].pbaSlack, y.pba[i].pbaSlack);
        EXPECT_EQ(x.pba[i].exactArrival, y.pba[i].exactArrival);
        EXPECT_EQ(x.pba[i].retraceGap, y.pba[i].retraceGap);
        EXPECT_EQ(x.pba[i].cert.complete, y.pba[i].cert.complete);
        EXPECT_EQ(x.pba[i].cert.pathsEvaluated, y.pba[i].cert.pathsEvaluated);
        EXPECT_EQ(x.pba[i].cert.pathsPruned, y.pba[i].cert.pathsPruned);
        if (exhaustive) {
          EXPECT_TRUE(x.pba[i].cert.complete);
        }
      }
      // The GBA-worst setup endpoint is always in the recalculated tail,
      // so the PBA WNS can never report better than min over it.
      EXPECT_LE(x.pbaSetupWns, x.pba.front().pbaSlack);
    }
  }
}

TEST(McmmDeterminism, RepeatedRunsAreStable) {
  // Same runner, same options, run twice: byte-identical (no hidden state
  // leaks between runs through the engine rebuild).
  LogCapture quiet;
  const std::vector<Scenario> scenarios = scenarioSet();
  Netlist nl = generateBlock(scenarios.front().lib, profileTiny());
  McmmRunner runner(nl, scenarios);
  ThreadPool pool(2);
  McmmOptions opt;
  opt.pool = &pool;
  const McmmResult first = runner.run(opt);
  const McmmResult second = runner.run(opt);
  expectIdentical(first, second, "repeat");
}

}  // namespace
}  // namespace tc
