/// \file serve_test.cpp
/// \brief Protocol-level tests for the goalposts-server: the command
/// lifecycle state machine, hostile-input handling (malformed JSON,
/// truncated frames, oversized requests, binary garbage), transaction
/// misuse, and live-socket behavior including mid-transaction disconnect.
///
/// Most cases drive Server::processLine() in-process — the protocol brain
/// is socket-free by design — and a focused set runs against a real
/// listener to cover the framing / disconnect paths the in-process calls
/// cannot reach.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mcmm_identical.h"
#include "network/netgen.h"
#include "serve/client.h"
#include "serve/epoch.h"
#include "serve/proto.h"
#include "serve/server.h"
#include "signoff/snapshot.h"

namespace tc {
namespace {

using serve::EcoOp;
using serve::Server;
using serve::ServeClient;
using serve::ServeOptions;

DesignSnapshot tinySnapshot() {
  std::vector<Scenario> scenarios = testutil::scenarioSet();
  Netlist nl = generateBlock(scenarios[0].lib, profileTiny());
  return makeSnapshot(nl, std::move(scenarios), /*includeSpef=*/false);
}

/// Parse the single response processLine produced for `line`.
Json one(Server& server, Server::Session& session, const std::string& line) {
  auto out = server.processLine(session, line);
  EXPECT_EQ(out.size(), 1u) << line;
  if (out.empty()) return Json();
  auto parsed = Json::parse(out.back());
  EXPECT_TRUE(parsed.ok()) << out.back();
  return parsed.ok() ? parsed.value() : Json();
}

/// Parse the LAST response line (lifecycle commands stream several).
Json last(Server& server, Server::Session& session, const std::string& line,
          std::size_t expectLines) {
  auto out = server.processLine(session, line);
  EXPECT_EQ(out.size(), expectLines) << line;
  if (out.empty()) return Json();
  auto parsed = Json::parse(out.back());
  EXPECT_TRUE(parsed.ok()) << out.back();
  return parsed.ok() ? parsed.value() : Json();
}

void expectErrorCode(const Json& resp, const char* code) {
  EXPECT_FALSE(resp["ok"].asBool(true)) << resp.dump();
  EXPECT_TRUE(resp["done"].asBool(false)) << resp.dump();
  EXPECT_EQ(resp["code"].asString(), code) << resp.dump();
}

class ServeProtocolTest : public ::testing::Test {
 protected:
  // One shared server for the whole suite: epoch-0 builds 4 scenario
  // engines, which is the expensive part. Tests that commit ECOs read the
  // epoch counter relatively, so ordering between tests doesn't matter.
  static void SetUpTestSuite() {
    server_ = new Server(ServeOptions());
    ASSERT_TRUE(server_->addDesign("d", tinySnapshot()).ok());
  }
  static void TearDownTestSuite() {
    delete server_;
    server_ = nullptr;
  }
  static Server* server_;
  Server::Session session_;
};
Server* ServeProtocolTest::server_ = nullptr;

TEST_F(ServeProtocolTest, LifecycleStrings) {
  EXPECT_STREQ(toString(serve::CmdStatus::kReceived), "received");
  EXPECT_STREQ(toString(serve::CmdStatus::kAccepted), "accepted");
  EXPECT_STREQ(toString(serve::CmdStatus::kApplied), "applied");
  EXPECT_STREQ(toString(serve::CmdStatus::kRejected), "rejected");
}

TEST_F(ServeProtocolTest, PingEchoesIdAndVersion) {
  Json r = one(*server_, session_, R"({"cmd":"ping","id":"abc"})");
  EXPECT_TRUE(r["ok"].asBool(false));
  EXPECT_TRUE(r["pong"].asBool(false));
  EXPECT_EQ(r["id"].asString(), "abc");
  EXPECT_EQ(r["version"].asInt(), serve::kProtocolVersion);
}

TEST_F(ServeProtocolTest, MalformedJsonIsCleanlyRejected) {
  expectErrorCode(one(*server_, session_, "{\"cmd\":"), "JSON_SYNTAX");
  expectErrorCode(one(*server_, session_, "not json at all"), "JSON_SYNTAX");
  expectErrorCode(one(*server_, session_, "{\"cmd\":\"ping\"} trailing"),
                  "JSON_TRAILING_DATA");
  expectErrorCode(one(*server_, session_, "{\"a\":1e999}"),
                  "JSON_BAD_NUMBER");
  expectErrorCode(one(*server_, session_, "{\"a\":\"\\q\"}"),
                  "JSON_BAD_ESCAPE");
}

TEST_F(ServeProtocolTest, BinaryGarbageIsCleanlyRejected) {
  std::string garbage = "\x01\x02\xfe\xff\x7f";
  garbage += std::string(64, '\xab');
  Json r = one(*server_, session_, garbage);
  EXPECT_FALSE(r["ok"].asBool(true));
}

TEST_F(ServeProtocolTest, DeepNestingHitsDepthCap) {
  std::string bomb(200, '[');
  expectErrorCode(one(*server_, session_, bomb + std::string(200, ']')),
                  "JSON_DEPTH_EXCEEDED");
}

TEST_F(ServeProtocolTest, NonObjectAndMissingCmd) {
  expectErrorCode(one(*server_, session_, "[1,2,3]"), "SERVE_BAD_REQUEST");
  expectErrorCode(one(*server_, session_, "42"), "SERVE_BAD_REQUEST");
  expectErrorCode(one(*server_, session_, R"({"design":"d"})"),
                  "SERVE_BAD_REQUEST");
  expectErrorCode(one(*server_, session_, R"({"cmd":17})"),
                  "SERVE_BAD_REQUEST");
}

TEST_F(ServeProtocolTest, UnknownCommandAndDesign) {
  expectErrorCode(one(*server_, session_, R"({"cmd":"frobnicate"})"),
                  "SERVE_UNKNOWN_COMMAND");
  expectErrorCode(one(*server_, session_,
                      R"({"cmd":"slack","design":"nope"})"),
                  "SERVE_UNKNOWN_DESIGN");
  expectErrorCode(one(*server_, session_, R"({"cmd":"slack"})"),
                  "SERVE_BAD_REQUEST");
}

TEST_F(ServeProtocolTest, BadScenarioEndpointCheckAndRanges) {
  expectErrorCode(
      one(*server_, session_,
          R"({"cmd":"endpoints","design":"d","scenario":"nope"})"),
      "SERVE_BAD_SCENARIO");
  expectErrorCode(one(*server_, session_,
                      R"({"cmd":"endpoints","design":"d","scenario":99})"),
                  "SERVE_BAD_SCENARIO");
  expectErrorCode(
      one(*server_, session_,
          R"({"cmd":"endpoints","design":"d","scenario":0,"check":"both"})"),
      "SERVE_BAD_REQUEST");
  expectErrorCode(one(*server_, session_,
                      R"({"cmd":"endpoints","design":"d","scenario":0,"k":0})"),
                  "SERVE_BAD_REQUEST");
  expectErrorCode(
      one(*server_, session_,
          R"({"cmd":"path","design":"d","scenario":0,"endpoint":1000000})"),
      "SERVE_BAD_ENDPOINT");
  expectErrorCode(one(*server_, session_,
                      R"({"cmd":"path","design":"d","scenario":0})"),
                  "SERVE_BAD_ENDPOINT");
  expectErrorCode(
      one(*server_, session_,
          R"({"cmd":"histogram","design":"d","scenario":0,"bins":100000})"),
      "SERVE_BAD_REQUEST");
}

TEST_F(ServeProtocolTest, OversizedRequestRejectedInline) {
  std::string big = R"({"cmd":"ping","pad":")";
  big += std::string(serve::kDefaultMaxRequestBytes, 'x');
  big += "\"}";
  expectErrorCode(one(*server_, session_, big), "SERVE_OVERSIZED");
}

TEST_F(ServeProtocolTest, EcoLifecycleStreamsStates) {
  Json eco = Json::object();
  eco.set("cmd", "eco").set("design", "d").set("id", 7);
  Json ops = Json::array();
  Json op = Json::object();
  op.set("op", "set_miller").set("net", 0).set("factor", 1.25);
  ops.push(std::move(op));
  eco.set("ops", std::move(ops));
  auto lines = server_->processLine(session_, eco.dump());
  ASSERT_EQ(lines.size(), 3u);
  auto received = Json::parse(lines[0]);
  auto accepted = Json::parse(lines[1]);
  auto applied = Json::parse(lines[2]);
  ASSERT_TRUE(received.ok() && accepted.ok() && applied.ok());
  EXPECT_EQ(received.value()["status"].asString(), "received");
  EXPECT_FALSE(received.value()["done"].asBool(true));
  EXPECT_EQ(received.value()["ops"].asInt(), 1);
  EXPECT_EQ(received.value()["id"].asInt(), 7);
  EXPECT_EQ(accepted.value()["status"].asString(), "accepted");
  EXPECT_FALSE(accepted.value()["done"].asBool(true));
  EXPECT_EQ(applied.value()["status"].asString(), "applied");
  EXPECT_TRUE(applied.value()["done"].asBool(false));
  EXPECT_GE(applied.value()["epoch"].asInt(), 1);
}

TEST_F(ServeProtocolTest, EcoRejectionNamesOpAndLeavesEpochAlone) {
  const std::uint64_t epochBefore = server_->design("d")->stats().epoch;
  // Out-of-range instance: the op parses, so the client sees "received"
  // first, then a terminal rejection from validation. No epoch published.
  Json r = last(*server_, session_,
                R"({"cmd":"eco","design":"d",)"
                R"("ops":[{"op":"set_useful_skew","inst":999999,"ps":1}]})",
                /*expectLines=*/2);
  expectErrorCode(r, "SERVE_TXN_REJECTED");
  EXPECT_EQ(r["status"].asString(), "rejected");
  EXPECT_EQ(server_->design("d")->stats().epoch, epochBefore);
  // Unknown op kind: rejected at parse, single terminal line.
  Json r2 = one(*server_, session_,
                R"({"cmd":"eco","design":"d","ops":[{"op":"explode"}]})");
  expectErrorCode(r2, "SERVE_BAD_REQUEST");
  EXPECT_EQ(r2["status"].asString(), "rejected");
  EXPECT_EQ(server_->design("d")->stats().epoch, epochBefore);
}

TEST_F(ServeProtocolTest, TxnStateMachine) {
  // Ops/commit/abort outside a transaction: clean state errors.
  expectErrorCode(
      one(*server_, session_,
          R"({"cmd":"txn_op","op":"set_miller","net":0,"factor":1})"),
      "SERVE_TXN_STATE");
  expectErrorCode(one(*server_, session_, R"({"cmd":"txn_commit"})"),
                  "SERVE_TXN_STATE");
  expectErrorCode(one(*server_, session_, R"({"cmd":"txn_abort"})"),
                  "SERVE_TXN_STATE");

  // Open, buffer two ops, double-open rejected, abort drops both.
  EXPECT_TRUE(one(*server_, session_,
                  R"({"cmd":"txn_begin","design":"d"})")["ok"]
                  .asBool(false));
  EXPECT_TRUE(
      one(*server_, session_,
          R"({"cmd":"txn_op","op":"set_miller","net":0,"factor":2})")["ok"]
          .asBool(false));
  Json second =
      one(*server_, session_,
          R"({"cmd":"txn_op","op":"set_ndr_class","net":1,"class":1})");
  EXPECT_EQ(second["ops"].asInt(), 2);
  expectErrorCode(one(*server_, session_,
                      R"({"cmd":"txn_begin","design":"d"})"),
                  "SERVE_TXN_STATE");
  Json aborted = one(*server_, session_, R"({"cmd":"txn_abort"})");
  EXPECT_TRUE(aborted["ok"].asBool(false));
  EXPECT_EQ(aborted["dropped"].asInt(), 2);

  // A fresh transaction commits through the full eco lifecycle.
  const std::uint64_t epochBefore = server_->design("d")->stats().epoch;
  EXPECT_TRUE(one(*server_, session_,
                  R"({"cmd":"txn_begin","design":"d"})")["ok"]
                  .asBool(false));
  EXPECT_TRUE(
      one(*server_, session_,
          R"({"cmd":"txn_op","op":"set_miller","net":2,"factor":1.5})")["ok"]
          .asBool(false));
  Json applied =
      last(*server_, session_, R"({"cmd":"txn_commit"})", /*expectLines=*/3);
  EXPECT_EQ(applied["status"].asString(), "applied");
  EXPECT_EQ(server_->design("d")->stats().epoch, epochBefore + 1);
  // The commit consumed the transaction.
  expectErrorCode(one(*server_, session_, R"({"cmd":"txn_commit"})"),
                  "SERVE_TXN_STATE");
}

TEST_F(ServeProtocolTest, MetricsDumpContainsServeCounters) {
  // Publish an epoch first so the dump is self-contained: ctest runs each
  // test in its own process, so counters from sibling tests don't exist.
  Json applied = last(
      *server_, session_,
      R"({"cmd":"eco","design":"d","ops":[{"op":"set_miller","net":5,"factor":1.1}]})",
      /*expectLines=*/3);
  ASSERT_EQ(applied["status"].asString(), "applied");
  Json r = one(*server_, session_, R"({"cmd":"metrics","prefix":"serve."})");
  ASSERT_TRUE(r["ok"].asBool(false));
  EXPECT_TRUE(r["metrics"].contains("serve.requests")) << r.dump();
  EXPECT_TRUE(r["metrics"].contains("serve.epochs_published")) << r.dump();
  EXPECT_GT(r["metrics"]["serve.requests"].asDouble(), 0.0);
  EXPECT_GE(r["metrics"]["serve.epochs_published"].asDouble(), 1.0);

  // The characterization-cache counters are registered by the Server ctor
  // (like prune.*), so operators can watch library cold-start cost from
  // the same `metrics` command without having characterized anything yet.
  Json c = one(*server_, session_,
               R"({"cmd":"metrics","prefix":"liberty.char."})");
  ASSERT_TRUE(c["ok"].asBool(false));
  for (const char* name :
       {"liberty.char.requests", "liberty.char.memo_hits",
        "liberty.char.disk_hits", "liberty.char.disk_misses",
        "liberty.char.builds", "liberty.char.sim_queries"})
    EXPECT_TRUE(c["metrics"].contains(name)) << name << " " << c.dump();
}

TEST_F(ServeProtocolTest, EcoOpWireCodecRoundTrips) {
  for (auto kind :
       {EcoOp::Kind::kSwapCell, EcoOp::Kind::kSetUsefulSkew,
        EcoOp::Kind::kSetNdrClass, EcoOp::Kind::kSetMillerOverride}) {
    EcoOp op;
    op.kind = kind;
    op.target = 5;
    op.intArg = 2;
    op.dblArg = -3.25;
    auto back = serve::ecoOpFromJson(serve::toJson(op));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(static_cast<int>(back.value().kind), static_cast<int>(kind));
    EXPECT_EQ(back.value().target, op.target);
  }
  EXPECT_FALSE(serve::ecoOpFromJson(Json(3.0)).ok());
  EXPECT_FALSE(
      serve::ecoOpFromJson(Json::parse(R"({"op":"swap_cell"})").value()).ok())
      << "missing fields must fail";
}

// ---------------------------------------------------------------------------
// Live-socket coverage: framing, disconnects, connection survival.
// ---------------------------------------------------------------------------

class ServeSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServeOptions opt;
    opt.maxRequestBytes = 4096;  // small cap keeps the oversized test cheap
    server_ = std::make_unique<Server>(opt);
    ASSERT_TRUE(server_->addDesign("d", tinySnapshot()).ok());
    auto port = server_->start();
    ASSERT_TRUE(port.ok()) << port.status().str();
    port_ = port.value();
  }
  void TearDown() override { server_->stop(); }

  void connectOrFail(ServeClient& c) {
    ASSERT_TRUE(c.connect("127.0.0.1", port_).ok());
  }

  /// Raw TCP connect for tests that need to send bytes ServeClient's
  /// framing cannot produce (partial lines, abrupt close).
  int rawConnect() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port_));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    return fd;
  }

  std::unique_ptr<Server> server_;
  int port_ = 0;
};

TEST_F(ServeSocketTest, QueryEcoQueryOverTheWire) {
  ServeClient c;
  connectOrFail(c);
  auto pong = c.callOne(Json::parse(R"({"cmd":"ping"})").value());
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong.value()["pong"].asBool(false));

  auto before =
      c.callOne(Json::parse(R"({"cmd":"slack","design":"d"})").value());
  ASSERT_TRUE(before.ok());
  const std::int64_t epoch0 = before.value()["epoch"].asInt();

  auto eco = c.call(
      Json::parse(
          R"({"cmd":"eco","design":"d","ops":[{"op":"set_miller","net":0,"factor":1.1}]})")
          .value());
  ASSERT_TRUE(eco.ok());
  ASSERT_EQ(eco.value().size(), 3u);
  EXPECT_EQ(eco.value()[2]["status"].asString(), "applied");

  auto after =
      c.callOne(Json::parse(R"({"cmd":"slack","design":"d"})").value());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value()["epoch"].asInt(), epoch0 + 1);
}

TEST_F(ServeSocketTest, GarbageThenValidRequestOnSameConnection) {
  ServeClient c;
  connectOrFail(c);
  ASSERT_TRUE(c.sendLine("\x01\x02garbage\xfe").ok());
  auto err = c.readLine();
  ASSERT_TRUE(err.ok());
  auto parsed = Json::parse(err.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value()["ok"].asBool(true));
  // The connection survives hostile input.
  auto pong = c.callOne(Json::parse(R"({"cmd":"ping"})").value());
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong.value()["pong"].asBool(false));
}

TEST_F(ServeSocketTest, OversizedRequestIsDrainedNotFatal) {
  ServeClient c;
  connectOrFail(c);
  // One 16 KiB line against a 4 KiB cap: the server answers
  // SERVE_OVERSIZED, drains the rest of the line, and keeps serving.
  ASSERT_TRUE(c.sendLine(std::string(16384, 'x')).ok());
  auto err = c.readLine();
  ASSERT_TRUE(err.ok());
  auto parsed = Json::parse(err.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value()["code"].asString(), "SERVE_OVERSIZED");
  auto pong = c.callOne(Json::parse(R"({"cmd":"ping"})").value());
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong.value()["pong"].asBool(false));
}

TEST_F(ServeSocketTest, UnterminatedOversizedLineIsDiscardedWhileDraining) {
  const int fd = rawConnect();
  const auto sendAll = [fd](const std::string& data) {
    ASSERT_EQ(::send(fd, data.data(), data.size(), 0),
              static_cast<ssize_t>(data.size()));
  };
  const auto recvLine = [fd] {
    std::string line;
    char c;
    while (::recv(fd, &c, 1, 0) == 1 && c != '\n') line.push_back(c);
    return line;
  };
  // Stream 16x the cap with *no* newline: the server must answer
  // SERVE_OVERSIZED once and then discard the endless tail instead of
  // buffering it — an unterminated line must not grow server memory.
  const std::string chunk(4096, 'x');
  for (int i = 0; i < 16; ++i) sendAll(chunk);
  auto err = Json::parse(recvLine());
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err.value()["code"].asString(), "SERVE_OVERSIZED");
  // Keep streaming while the server drains, then finally terminate the
  // line: the connection must still answer, with no second rejection.
  for (int i = 0; i < 16; ++i) sendAll(chunk);
  sendAll("\n{\"cmd\":\"ping\"}\n");
  auto pong = Json::parse(recvLine());
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong.value()["pong"].asBool(false)) << pong.value().dump();
  // The tail was *discarded*, not buffered: the second 64 KiB burst shows
  // up as drained (minus at most one recv chunk that may coalesce with the
  // terminating newline and get consumed by line extraction instead).
  sendAll("{\"cmd\":\"metrics\",\"prefix\":\"serve.drained\"}\n");
  auto metrics = Json::parse(recvLine());
  ASSERT_TRUE(metrics.ok());
  EXPECT_GE(metrics.value()["metrics"]["serve.drained_bytes"].asDouble(),
            15.0 * 4096.0)
      << metrics.value().dump();
  ::close(fd);
}

TEST_F(ServeSocketTest, TruncatedFrameThenDisconnectLeavesServerHealthy) {
  {
    const int fd = rawConnect();
    // Half a request, no terminating newline, then an abrupt close: the
    // classic truncated frame. The server must just drop the partial line.
    const char kPartial[] = "{\"cmd\":\"slack\",\"desi";
    EXPECT_GT(::send(fd, kPartial, sizeof(kPartial) - 1, 0), 0);
    ::close(fd);
  }
  ServeClient c;
  connectOrFail(c);
  auto pong = c.callOne(Json::parse(R"({"cmd":"ping"})").value());
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong.value()["pong"].asBool(false));
}

TEST_F(ServeSocketTest, MidTransactionDisconnectRollsBack) {
  const std::uint64_t epochBefore = server_->design("d")->stats().epoch;
  {
    ServeClient c;
    connectOrFail(c);
    auto open =
        c.callOne(Json::parse(R"({"cmd":"txn_begin","design":"d"})").value());
    ASSERT_TRUE(open.ok());
    ASSERT_TRUE(open.value()["ok"].asBool(false));
    auto op = c.callOne(
        Json::parse(
            R"({"cmd":"txn_op","op":"set_miller","net":0,"factor":2})")
            .value());
    ASSERT_TRUE(op.ok());
    ASSERT_TRUE(op.value()["ok"].asBool(false));
  }  // disconnect with the transaction open
  // The buffered ops died with the session: no epoch was published, and
  // the server still answers.
  ServeClient c2;
  connectOrFail(c2);
  auto slack =
      c2.callOne(Json::parse(R"({"cmd":"slack","design":"d"})").value());
  ASSERT_TRUE(slack.ok());
  EXPECT_EQ(static_cast<std::uint64_t>(slack.value()["epoch"].asInt()),
            epochBefore);
}

TEST_F(ServeSocketTest, EightClientsConcurrently) {
  constexpr int kClients = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, i, &failures] {
      ServeClient c;
      if (!c.connect("127.0.0.1", port_).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int q = 0; q < 10; ++q) {
        Json req = Json::object();
        if (i % 4 == 3 && q % 5 == 2) {
          // Writers: land a tiny ECO.
          req.set("cmd", "eco").set("design", "d");
          Json ops = Json::array();
          Json op = Json::object();
          op.set("op", "set_miller")
              .set("net", i)
              .set("factor", 1.0 + 0.01 * q);
          ops.push(std::move(op));
          req.set("ops", std::move(ops));
        } else {
          req.set("cmd", "slack").set("design", "d");
        }
        auto resp = c.call(req);
        if (!resp.ok() || resp.value().empty() ||
            !resp.value().back()["ok"].asBool(false))
          failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace tc
