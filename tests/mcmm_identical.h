#pragma once
/// \file mcmm_identical.h
/// \brief Shared fixtures for the bit-identity suites: a standard 4-corner
/// scenario set and the exact (==, not near) McmmResult comparator. Used
/// by mcmm_determinism_test, farm_determinism_test and
/// farm_faultinject_test so the farm is held to the same comparator as
/// the in-process runner — the contracts cannot drift apart.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "liberty/builder.h"
#include "signoff/corners.h"

namespace tc {
namespace testutil {

inline std::vector<Scenario> scenarioSet() {
  auto libAt = [](ProcessCorner pc, Volt v, Celsius t) {
    return characterizedLibrary(LibraryPvt{pc, v, t}, /*quick=*/true);
  };
  std::vector<Scenario> out;
  {
    Scenario s;
    s.name = "func_tt";
    s.lib = libAt(ProcessCorner::kTT, 0.9, 25.0);
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "func_ssg_cw";
    s.lib = libAt(ProcessCorner::kSSG, 0.81, 125.0);
    s.beol = BeolCorner::kCworst;
    s.derate.mode = DerateMode::kAocv;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "func_ffg_cb";
    s.lib = libAt(ProcessCorner::kFFG, 0.99, -40.0);
    s.beol = BeolCorner::kCbest;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "func_tt_lvf";
    s.lib = libAt(ProcessCorner::kTT, 0.9, 25.0);
    s.derate.mode = DerateMode::kLvf;
    out.push_back(s);
  }
  return out;
}

/// Exact (bitwise, via ==) comparison of two prune certificates.
inline void expectCertIdentical(const PruneCertificate& x,
                                const PruneCertificate& y) {
  EXPECT_EQ(x.scenario, y.scenario);
  EXPECT_EQ(x.scenarioName, y.scenarioName);
  EXPECT_EQ(x.predictedSetupWns, y.predictedSetupWns);
  EXPECT_EQ(x.predictedHoldWns, y.predictedHoldWns);
  EXPECT_EQ(x.boundSetupWns, y.boundSetupWns);
  EXPECT_EQ(x.boundHoldWns, y.boundHoldWns);
  EXPECT_EQ(x.uncertainty, y.uncertainty);
  EXPECT_EQ(x.evidenceSetup, y.evidenceSetup);
  EXPECT_EQ(x.evidenceHold, y.evidenceHold);
  EXPECT_EQ(x.evidenceSetupName, y.evidenceSetupName);
  EXPECT_EQ(x.evidenceHoldName, y.evidenceHoldName);
  EXPECT_EQ(x.round, y.round);
}

/// Exact (bitwise, via ==) comparison of one scenario slot: scalars, every
/// endpoint, the enumerated PBA tail, the per-scenario diagnostic stream,
/// and the prune flag/certificate. The prune oracle suite uses this
/// directly to hold each UNPRUNED slot of a pruned pass to the all-exact
/// run's bytes.
inline void expectScenarioIdentical(const ScenarioResult& x,
                                    const ScenarioResult& y) {
  SCOPED_TRACE("scenario " + x.scenario);
  EXPECT_EQ(x.scenario, y.scenario);
  EXPECT_EQ(x.setupWns, y.setupWns);
  EXPECT_EQ(x.holdWns, y.holdWns);
  EXPECT_EQ(x.setupTns, y.setupTns);
  EXPECT_EQ(x.holdTns, y.holdTns);
  EXPECT_EQ(x.setupViolations, y.setupViolations);
  EXPECT_EQ(x.holdViolations, y.holdViolations);
  EXPECT_EQ(x.drvViolations, y.drvViolations);
  EXPECT_EQ(x.nanQuarantined, y.nanQuarantined);
  ASSERT_EQ(x.endpoints.size(), y.endpoints.size());
  for (std::size_t e = 0; e < x.endpoints.size(); ++e) {
    SCOPED_TRACE("endpoint " + std::to_string(e));
    EXPECT_EQ(x.endpoints[e].vertex, y.endpoints[e].vertex);
    EXPECT_EQ(x.endpoints[e].setupSlack, y.endpoints[e].setupSlack);
    EXPECT_EQ(x.endpoints[e].holdSlack, y.endpoints[e].holdSlack);
    EXPECT_EQ(x.endpoints[e].dataLate, y.endpoints[e].dataLate);
    EXPECT_EQ(x.endpoints[e].dataEarly, y.endpoints[e].dataEarly);
    EXPECT_EQ(x.endpoints[e].cpprSetup, y.endpoints[e].cpprSetup);
  }
  EXPECT_EQ(x.pbaSetupWns, y.pbaSetupWns);
  ASSERT_EQ(x.pba.size(), y.pba.size());
  for (std::size_t i = 0; i < x.pba.size(); ++i) {
    SCOPED_TRACE("pba path " + std::to_string(i));
    EXPECT_EQ(x.pba[i].endpoint, y.pba[i].endpoint);
    EXPECT_EQ(x.pba[i].gbaSlack, y.pba[i].gbaSlack);
    EXPECT_EQ(x.pba[i].pbaSlack, y.pba[i].pbaSlack);
    EXPECT_EQ(x.pba[i].exactArrival, y.pba[i].exactArrival);
    EXPECT_EQ(x.pba[i].retraceGap, y.pba[i].retraceGap);
    EXPECT_EQ(x.pba[i].cert.complete, y.pba[i].cert.complete);
    EXPECT_EQ(x.pba[i].cert.pathsEvaluated, y.pba[i].cert.pathsEvaluated);
    EXPECT_EQ(x.pba[i].cert.pathsPruned, y.pba[i].cert.pathsPruned);
  }
  ASSERT_EQ(x.diagnostics.size(), y.diagnostics.size());
  for (std::size_t d = 0; d < x.diagnostics.size(); ++d) {
    SCOPED_TRACE("slot diagnostic " + std::to_string(d));
    EXPECT_EQ(x.diagnostics[d].severity, y.diagnostics[d].severity);
    EXPECT_EQ(x.diagnostics[d].code, y.diagnostics[d].code);
    EXPECT_EQ(x.diagnostics[d].message, y.diagnostics[d].message);
    EXPECT_EQ(x.diagnostics[d].entity, y.diagnostics[d].entity);
    EXPECT_EQ(x.diagnostics[d].line, y.diagnostics[d].line);
  }
  ASSERT_EQ(x.pruned, y.pruned);
  if (x.pruned) expectCertIdentical(x.certificate, y.certificate);
}

/// Exact (bitwise, via ==) comparison of two MCMM results, with readable
/// failure locations. Covers scalars, every endpoint, the enumerated PBA
/// tail, and the merged diagnostic stream.
inline void expectIdentical(const McmmResult& a, const McmmResult& b,
                            const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
  for (std::size_t s = 0; s < a.scenarios.size(); ++s)
    expectScenarioIdentical(a.scenarios[s], b.scenarios[s]);
  ASSERT_EQ(a.merged.size(), b.merged.size());
  for (std::size_t d = 0; d < a.merged.size(); ++d) {
    SCOPED_TRACE("diagnostic " + std::to_string(d));
    EXPECT_EQ(a.merged[d].severity, b.merged[d].severity);
    EXPECT_EQ(a.merged[d].code, b.merged[d].code);
    EXPECT_EQ(a.merged[d].message, b.merged[d].message);
    EXPECT_EQ(a.merged[d].entity, b.merged[d].entity);
    EXPECT_EQ(a.merged[d].line, b.merged[d].line);
  }
}

}  // namespace testutil
}  // namespace tc
