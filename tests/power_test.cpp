#include <gtest/gtest.h>

#include "liberty/builder.h"
#include "network/netgen.h"
#include "power/power.h"

namespace tc {
namespace {

std::shared_ptr<const Library> lib() {
  return characterizedLibrary(LibraryPvt{}, true);
}

TEST(Power, ComponentsPositiveAndSummed) {
  Netlist nl = generateBlock(lib(), profileTiny());
  const PowerReport r = analyzePower(nl);
  EXPECT_GT(r.leakage, 0.0);
  EXPECT_GT(r.dynamicLogic, 0.0);
  EXPECT_GT(r.dynamicClock, 0.0);
  EXPECT_GT(r.area, 0.0);
  EXPECT_DOUBLE_EQ(r.total(), r.leakage + r.dynamicLogic + r.dynamicClock);
}

TEST(Power, DynamicScalesWithActivityAndFrequency) {
  Netlist nl = generateBlock(lib(), profileTiny());
  PowerOptions lo;
  lo.dataActivity = 0.1;
  PowerOptions hi;
  hi.dataActivity = 0.3;
  EXPECT_NEAR(analyzePower(nl, hi).dynamicLogic,
              3.0 * analyzePower(nl, lo).dynamicLogic, 1e-9);
  // Clock power is activity-independent (always toggles).
  EXPECT_NEAR(analyzePower(nl, hi).dynamicClock,
              analyzePower(nl, lo).dynamicClock, 1e-9);
  // Double the period, half the dynamic power.
  const PowerReport before = analyzePower(nl);
  nl.clocks().front().period *= 2.0;
  const PowerReport after = analyzePower(nl);
  EXPECT_NEAR(after.dynamicLogic, 0.5 * before.dynamicLogic, 1e-9);
  EXPECT_NEAR(after.leakage, before.leakage, 1e-9);
}

TEST(Power, VoltageOverrideQuadraticOnDynamic) {
  Netlist nl = generateBlock(lib(), profileTiny());
  PowerOptions nom;
  PowerOptions high;
  high.vddOverride = 1.08;  // 1.2x of 0.9
  const double ratio = analyzePower(nl, high).dynamicLogic /
                       analyzePower(nl, nom).dynamicLogic;
  EXPECT_NEAR(ratio, 1.44, 0.01);
}

TEST(Power, LeakageScaleKnob) {
  Netlist nl = generateBlock(lib(), profileTiny());
  PowerOptions derated;
  derated.leakageScale = 0.5;
  EXPECT_NEAR(analyzePower(nl, derated).leakage,
              0.5 * analyzePower(nl).leakage, 1e-9);
}

TEST(Power, VtMixMovesLeakageNotArea) {
  Netlist nl = generateBlock(lib(), profileTiny());
  const PowerReport before = analyzePower(nl);
  const Library& L = nl.library();
  int swapped = 0;
  for (InstId i = 0; i < nl.instanceCount(); ++i) {
    const Cell& c = nl.cellOf(i);
    if (c.isSequential || c.vt != VtClass::kSvt) continue;
    const int cand = L.variant(c.footprint, VtClass::kLvt, c.drive);
    if (cand >= 0) {
      nl.swapCell(i, cand);
      ++swapped;
    }
  }
  ASSERT_GT(swapped, 0);
  const PowerReport after = analyzePower(nl);
  EXPECT_GT(after.leakage, 2.0 * before.leakage);
  EXPECT_DOUBLE_EQ(after.area, before.area);
}

}  // namespace
}  // namespace tc
