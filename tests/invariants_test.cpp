/// \file invariants_test.cpp
/// \brief Oracle-backed STA invariant suite (ctest label: invariants).
///
/// Two families of checks, both independent of the engine's internals:
///
///  1. A naive O(V*E) reference propagator: instead of the engine's single
///     levelized sweep, iterate over *raw vertex ids* recomputing every
///     vertex from scratch until the state reaches a bitwise fixpoint. The
///     schedule is deliberately wrong-order; only the per-vertex arithmetic
///     (taken straight from the documented relax/pull rules) is shared. On
///     a DAG the fixpoint is unique, so any divergence from StaEngine —
///     down to the last ULP — is a real propagation bug, not tolerance
///     noise. Cross-checked on 50+ randomized netgen designs across
///     derate modes kNone and kFlatOcv (the modes whose arrival selection
///     is exact in the mean domain).
///
///  2. Metamorphic properties that hold by construction of the timing
///     model, checked without any reference values:
///       - PBA slack >= GBA slack at every recalculated endpoint,
///       - CPPR can only improve (never hurt) setup slack,
///       - added load never decreases a characterized stage delay,
///       - quarantining a pin (graceful degradation) never improves WNS.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "liberty/builder.h"
#include "network/netgen.h"
#include "sta/engine.h"
#include "sta/pba.h"

namespace tc {
namespace {

constexpr double kInfD = std::numeric_limits<double>::infinity();

std::shared_ptr<const Library> testLib() {
  static std::shared_ptr<const Library> lib =
      characterizedLibrary(LibraryPvt{}, /*quick=*/true);
  return lib;
}

/// Naive reference propagator. Holds only (arrival, slew) per
/// [mode][transition] plus required times; recomputes whole vertices from
/// their in-edges (forward) / out-edges (backward) in raw id order until
/// nothing changes bitwise.
class NaiveSta {
 public:
  struct Vt {
    double arr[2][2];
    double slew[2][2];
  };

  explicit NaiveSta(StaEngine& eng)
      : eng_(eng),
        g_(eng.graph()),
        nl_(eng.netlist()),
        sc_(eng.scenario()),
        dc_(eng.delayCalc()) {}

  /// False when a fixpoint was not reached within V+2 passes (a cycle or
  /// an unstable recompute — either is a test failure).
  bool run() {
    initSources();
    if (!fixpoint([this](VertexId v) { return recomputeForward(v); }))
      return false;
    seedRequired();
    return fixpoint([this](VertexId v) { return recomputeBackward(v); });
  }

  const Vt& at(VertexId v) const { return vt_[static_cast<std::size_t>(v)]; }

  /// Same formula as StaEngine::vertexSlack, over the oracle's state.
  double slackAt(VertexId v) const {
    const auto& req = req_[static_cast<std::size_t>(v)];
    const Vt& t = vt_[static_cast<std::size_t>(v)];
    double slack = kInfD;
    for (int tr = 0; tr < 2; ++tr) {
      if (req[tr] == kInfD || t.arr[0][tr] == kNoTime) continue;
      slack = std::min(slack, req[tr] - t.arr[0][tr]);
    }
    return slack;
  }

 private:
  void initSources() {
    Vt unreached;
    for (int m = 0; m < 2; ++m)
      for (int tr = 0; tr < 2; ++tr) {
        unreached.arr[m][tr] = kNoTime;
        unreached.slew[m][tr] = 0.0;
      }
    vt_.assign(static_cast<std::size_t>(g_.vertexCount()), unreached);

    for (const auto& c : nl_.clocks()) {
      Vt& t = vt_[static_cast<std::size_t>(g_.portVertex(c.port))];
      for (int m = 0; m < 2; ++m)
        for (int tr = 0; tr < 2; ++tr) {
          t.arr[m][tr] = c.sourceLatency;
          t.slew[m][tr] = 20.0;
        }
    }
    const double inputDelay =
        sc_.inputDelay > 0.0
            ? sc_.inputDelay
            : (nl_.clocks().empty() ? 0.0
                                    : 0.25 * nl_.clocks().front().period);
    for (PortId p = 0; p < nl_.portCount(); ++p) {
      if (sc_.disableDataInputs) break;
      if (!nl_.port(p).isInput || nl_.port(p).constant) continue;
      bool isClock = false;
      for (const auto& c : nl_.clocks())
        if (c.port == p) isClock = true;
      if (isClock) continue;
      Vt& t = vt_[static_cast<std::size_t>(g_.portVertex(p))];
      for (int m = 0; m < 2; ++m)
        for (int tr = 0; tr < 2; ++tr) {
          t.arr[m][tr] = inputDelay;
          t.slew[m][tr] = sc_.inputSlew;
        }
    }
    const double borrowedLate =
        nl_.clocks().empty() ? inputDelay : nl_.clocks().front().period;
    for (const auto& qp : nl_.quarantinedPins()) {
      const VertexId v = g_.inputVertex(qp.inst, qp.pin);
      if (v < 0) continue;
      Vt& t = vt_[static_cast<std::size_t>(v)];
      for (int tr = 0; tr < 2; ++tr) {
        t.arr[0][tr] = borrowedLate;
        t.arr[1][tr] = 0.0;
        t.slew[0][tr] = t.slew[1][tr] = sc_.inputSlew;
      }
    }
  }

  template <typename Recompute>
  bool fixpoint(Recompute&& recompute) {
    const int n = g_.vertexCount();
    for (int pass = 0; pass <= n + 2; ++pass) {
      bool changed = false;
      for (VertexId v = 0; v < n; ++v)
        if (recompute(v)) changed = true;
      if (!changed) return true;
    }
    return false;  // no fixpoint: cycle or unstable arithmetic
  }

  static void relaxInto(Vt& t, int m, int tr, double arr, double slewIn) {
    if (!std::isfinite(arr) || !std::isfinite(slewIn)) return;
    const double cur = t.arr[m][tr];
    if (cur == kNoTime || (m == 0 ? arr > cur : arr < cur))
      t.arr[m][tr] = arr;
    if (t.slew[m][tr] <= 0.0)
      t.slew[m][tr] = slewIn;
    else if (m == 0)
      t.slew[m][tr] = std::max(t.slew[m][tr], slewIn);
    else
      t.slew[m][tr] = std::min(t.slew[m][tr], slewIn);
  }

  void processEdgeInto(EdgeId e, Vt& t) const {
    const TimingGraph::Edge& ed = g_.edge(e);
    const Vt& ft = vt_[static_cast<std::size_t>(ed.from)];
    const auto& d = sc_.derate;
    const double lateF = d.mode == DerateMode::kFlatOcv ? d.flatLate : 1.0;
    const double earlyF = d.mode == DerateMode::kFlatOcv ? d.flatEarly : 1.0;
    switch (ed.kind) {
      case TimingGraph::EdgeKind::kNetArc: {
        Ps skew = 0.0;
        const TimingGraph::Vertex& tv = g_.vertex(ed.to);
        if (tv.kind == TimingGraph::VertexKind::kCellInput && tv.pin == 1 &&
            nl_.isSequential(tv.inst))
          skew = nl_.instance(tv.inst).usefulSkew;
        for (int m = 0; m < 2; ++m) {
          const double f = m == 0 ? lateF : earlyF;
          for (int tr = 0; tr < 2; ++tr) {
            if (ft.arr[m][tr] == kNoTime) continue;
            const auto w = dc_.wire(ed.net, ed.sinkIndex, ft.slew[m][tr]);
            relaxInto(t, m, tr, ft.arr[m][tr] + w.delay * f + skew,
                      w.outSlew);
          }
        }
        break;
      }
      case TimingGraph::EdgeKind::kCellArc: {
        const InstId inst = g_.vertex(ed.from).inst;
        const TimingArc& arc =
            dc_.cellOf(inst).arcs[static_cast<std::size_t>(ed.arcIndex)];
        for (int m = 0; m < 2; ++m) {
          const double f = m == 0 ? lateF : earlyF;
          for (int trIn = 0; trIn < 2; ++trIn) {
            if (ft.arr[m][trIn] == kNoTime) continue;
            int outLo = 0, outHi = 1;
            if (arc.unate == Unateness::kNegative) outLo = outHi = 1 - trIn;
            if (arc.unate == Unateness::kPositive) outLo = outHi = trIn;
            for (int trOut = outLo; trOut <= outHi; ++trOut) {
              const auto r = dc_.cellArc(inst, ed.arcIndex, trOut == 0,
                                         ft.slew[m][trIn]);
              relaxInto(t, m, trOut, ft.arr[m][trIn] + r.delay * f,
                        r.outSlew);
            }
          }
        }
        break;
      }
      case TimingGraph::EdgeKind::kClockToQ: {
        const InstId flop = g_.vertex(ed.from).inst;
        for (int m = 0; m < 2; ++m) {
          const double f = m == 0 ? lateF : earlyF;
          if (ft.arr[m][0] == kNoTime) continue;  // rising-edge CK
          for (int trQ = 0; trQ < 2; ++trQ) {
            const auto r = dc_.clockToQ(flop, trQ == 0, ft.slew[m][0]);
            relaxInto(t, m, trQ, ft.arr[m][0] + r.delay * f, r.outSlew);
          }
        }
        break;
      }
    }
  }

  bool recomputeForward(VertexId v) {
    if (g_.inEdges(v).empty()) return false;  // sources keep their seeds
    Vt fresh;
    for (int m = 0; m < 2; ++m)
      for (int tr = 0; tr < 2; ++tr) {
        fresh.arr[m][tr] = kNoTime;
        fresh.slew[m][tr] = 0.0;
      }
    for (EdgeId e : g_.inEdges(v)) processEdgeInto(e, fresh);
    Vt& cur = vt_[static_cast<std::size_t>(v)];
    if (std::memcmp(&fresh, &cur, sizeof(Vt)) == 0) return false;
    cur = fresh;
    return true;
  }

  /// Seeds reconstructed the same way StaEngine::endpointReqSeed does:
  /// worst-transition mean arrival + reported setup slack. Arrivals come
  /// from the oracle's own forward fixpoint (asserted equal to the
  /// engine's before required times are compared).
  void seedRequired() {
    seed_.assign(static_cast<std::size_t>(g_.vertexCount()), {kInfD, kInfD});
    for (const auto& ep : eng_.endpoints()) {
      if (ep.setupSlack == kInfD) continue;
      const int wt = ep.setupTrans;
      const double arr = vt_[static_cast<std::size_t>(ep.vertex)].arr[0][wt];
      if (arr == kNoTime) continue;
      const double reqTime = arr + ep.setupSlack;
      seed_[static_cast<std::size_t>(ep.vertex)] = {reqTime, reqTime};
    }
    req_ = seed_;
  }

  bool recomputeBackward(VertexId u) {
    const auto& d = sc_.derate;
    const double lateF = d.mode == DerateMode::kFlatOcv ? d.flatLate : 1.0;
    const Vt& ft = vt_[static_cast<std::size_t>(u)];
    std::array<double, 2> fresh = seed_[static_cast<std::size_t>(u)];
    for (EdgeId e : g_.outEdges(u)) {
      const TimingGraph::Edge& ed = g_.edge(e);
      const auto& reqV = req_[static_cast<std::size_t>(ed.to)];
      if (reqV[0] == kInfD && reqV[1] == kInfD) continue;
      switch (ed.kind) {
        case TimingGraph::EdgeKind::kNetArc: {
          Ps skew = 0.0;
          const TimingGraph::Vertex& tv = g_.vertex(ed.to);
          if (tv.kind == TimingGraph::VertexKind::kCellInput && tv.pin == 1 &&
              nl_.isSequential(tv.inst))
            skew = nl_.instance(tv.inst).usefulSkew;
          for (int tr = 0; tr < 2; ++tr) {
            if (reqV[tr] == kInfD || ft.arr[0][tr] == kNoTime) continue;
            const auto w = dc_.wire(ed.net, ed.sinkIndex, ft.slew[0][tr]);
            fresh[static_cast<std::size_t>(tr)] =
                std::min(fresh[static_cast<std::size_t>(tr)],
                         reqV[tr] - w.delay * lateF - skew);
          }
          break;
        }
        case TimingGraph::EdgeKind::kCellArc: {
          const InstId inst = g_.vertex(u).inst;
          const TimingArc& arc =
              dc_.cellOf(inst).arcs[static_cast<std::size_t>(ed.arcIndex)];
          for (int trIn = 0; trIn < 2; ++trIn) {
            if (ft.arr[0][trIn] == kNoTime) continue;
            int outLo = 0, outHi = 1;
            if (arc.unate == Unateness::kNegative) outLo = outHi = 1 - trIn;
            if (arc.unate == Unateness::kPositive) outLo = outHi = trIn;
            for (int trOut = outLo; trOut <= outHi; ++trOut) {
              if (reqV[trOut] == kInfD) continue;
              const auto r = dc_.cellArc(inst, ed.arcIndex, trOut == 0,
                                         ft.slew[0][trIn]);
              fresh[static_cast<std::size_t>(trIn)] =
                  std::min(fresh[static_cast<std::size_t>(trIn)],
                           reqV[trOut] - r.delay * lateF);
            }
          }
          break;
        }
        case TimingGraph::EdgeKind::kClockToQ: {
          const InstId flop = g_.vertex(u).inst;
          if (ft.arr[0][0] == kNoTime) break;
          for (int trQ = 0; trQ < 2; ++trQ) {
            if (reqV[trQ] == kInfD) continue;
            const auto r = dc_.clockToQ(flop, trQ == 0, ft.slew[0][0]);
            fresh[0] = std::min(fresh[0], reqV[trQ] - r.delay * lateF);
          }
          break;
        }
      }
    }
    auto& cur = req_[static_cast<std::size_t>(u)];
    if (std::memcmp(fresh.data(), cur.data(), sizeof(fresh)) == 0)
      return false;
    cur = fresh;
    return true;
  }

  StaEngine& eng_;
  const TimingGraph& g_;
  const Netlist& nl_;
  const Scenario& sc_;
  DelayCalculator& dc_;
  std::vector<Vt> vt_;
  std::vector<std::array<double, 2>> req_, seed_;
};

/// Run engine + oracle on one design and demand bitwise agreement on every
/// arrival key, slew, and vertex slack.
void crossCheck(const Netlist& nl, const Scenario& sc,
                const std::string& tag) {
  StaEngine eng(nl, sc);
  eng.run();
  NaiveSta oracle(eng);
  ASSERT_TRUE(oracle.run()) << tag << ": oracle did not reach a fixpoint";

  const TimingGraph& g = eng.graph();
  for (VertexId v = 0; v < g.vertexCount(); ++v) {
    const NaiveSta::Vt& t = oracle.at(v);
    for (int m = 0; m < 2; ++m) {
      for (int tr = 0; tr < 2; ++tr) {
        const double a = t.arr[m][tr];
        const double expect = a == kNoTime ? (m == 0 ? kNoTime : kInfD) : a;
        ASSERT_EQ(eng.arrivalKey(v, static_cast<Mode>(m), tr), expect)
            << tag << ": arrival mismatch at v=" << v << " m=" << m
            << " tr=" << tr;
      }
      ASSERT_EQ(eng.slewAt(v, static_cast<Mode>(m)),
                std::max(t.slew[m][0], t.slew[m][1]))
          << tag << ": slew mismatch at v=" << v << " m=" << m;
    }
    ASSERT_EQ(eng.vertexSlack(v), oracle.slackAt(v))
        << tag << ": slack mismatch at v=" << v;
  }
}

BlockProfile randomProfile(int i) {
  BlockProfile p = profileTiny();
  p.name = "inv" + std::to_string(i);
  p.numGates = 60 + 7 * i;
  p.numFlops = 8 + i % 5;
  p.numInputs = 8 + i % 7;
  p.numOutputs = 6 + i % 5;
  p.levels = 6 + i % 9;
  p.fanoutSkew = 0.05 + 0.01 * (i % 6);
  p.seed = static_cast<std::uint64_t>(1000 + 17 * i);
  return p;
}

// --- 1. oracle cross-check over randomized designs --------------------------

TEST(InvariantsOracle, MatchesEngineOnRandomDesignsNoDerate) {
  for (int i = 0; i < 25; ++i) {
    Netlist nl = generateBlock(testLib(), randomProfile(i));
    Scenario sc;
    sc.lib = testLib();
    sc.derate.mode = DerateMode::kNone;
    crossCheck(nl, sc, "none/seed" + std::to_string(i));
    if (HasFatalFailure()) return;
  }
}

TEST(InvariantsOracle, MatchesEngineOnRandomDesignsFlatOcv) {
  for (int i = 0; i < 25; ++i) {
    Netlist nl = generateBlock(testLib(), randomProfile(100 + i));
    Scenario sc;
    sc.lib = testLib();
    sc.derate.mode = DerateMode::kFlatOcv;
    crossCheck(nl, sc, "flat/seed" + std::to_string(i));
    if (HasFatalFailure()) return;
  }
}

TEST(InvariantsOracle, MatchesEngineOnPipelines) {
  for (int lanes : {1, 3}) {
    for (int depth : {2, 9}) {
      Netlist nl = generatePipeline(testLib(), lanes, depth, 800.0,
                                    static_cast<std::uint64_t>(lanes * 10 +
                                                               depth));
      Scenario sc;
      sc.lib = testLib();
      sc.derate.mode = DerateMode::kFlatOcv;
      crossCheck(nl, sc, "pipe" + std::to_string(lanes) + "x" +
                             std::to_string(depth));
      if (HasFatalFailure()) return;
    }
  }
}

// --- 2. metamorphic properties ----------------------------------------------

// PBA retraces the worst path with path-specific slews and the tighter
// two-moment wire metric; it can only recover pessimism, never add it.
TEST(InvariantsMetamorphic, PbaSlackNeverBelowGba) {
  BlockProfile p = randomProfile(7);
  p.numGates = 220;
  Netlist nl = generateBlock(testLib(), p);
  Scenario sc;
  sc.lib = testLib();
  sc.derate.mode = DerateMode::kLvf;
  StaEngine eng(nl, sc);
  eng.run();
  PbaAnalyzer pba(eng);
  const auto results = pba.recalcWorst(100, Check::kSetup);
  ASSERT_FALSE(results.empty());
  for (const auto& r : results)
    EXPECT_GE(r.pbaSlack, r.gbaSlack - 1e-9)
        << "PBA must never be more pessimistic than GBA";
}

// CPPR removes pessimism common to launch and capture clock paths; the
// credit is clamped non-negative, so slacks can only improve.
TEST(InvariantsMetamorphic, CpprCreditNeverHurtsSetupSlack) {
  for (int i : {3, 11}) {
    Netlist nl = generateBlock(testLib(), randomProfile(i));
    Scenario noCppr;
    noCppr.lib = testLib();
    noCppr.derate.cppr = false;
    Scenario withCppr = noCppr;
    withCppr.derate.cppr = true;
    StaEngine a(nl, noCppr), b(nl, withCppr);
    a.run();
    b.run();
    ASSERT_EQ(a.endpoints().size(), b.endpoints().size());
    for (std::size_t e = 0; e < a.endpoints().size(); ++e) {
      const EndpointTiming &ea = a.endpoints()[e], &eb = b.endpoints()[e];
      ASSERT_EQ(ea.vertex, eb.vertex);
      EXPECT_GE(eb.cpprSetup, 0.0);
      EXPECT_GE(eb.setupSlack, ea.setupSlack - 1e-9)
          << "CPPR made endpoint " << e << " worse";
    }
  }
}

// Every characterized delay surface must be monotone non-decreasing in
// load at each slew grid point: driving more capacitance can never make a
// stage faster. (Checked on the grid values themselves; bilinear
// interpolation preserves monotonicity between grid points.)
TEST(InvariantsMetamorphic, AddedLoadNeverDecreasesStageDelay) {
  const auto lib = testLib();
  int surfacesChecked = 0;
  auto checkSurface = [&](const NldmSurface& s, const std::string& what) {
    if (s.empty()) return;
    ++surfacesChecked;
    const Axis& slews = s.delay.xAxis();
    const Axis& loads = s.delay.yAxis();
    for (std::size_t ix = 0; ix < slews.size(); ++ix)
      for (std::size_t iy = 0; iy + 1 < loads.size(); ++iy)
        EXPECT_LE(s.delay.at(ix, iy), s.delay.at(ix, iy + 1) + 1e-12)
            << what << " delay decreases from load " << loads[iy] << " to "
            << loads[iy + 1] << " at slew " << slews[ix];
  };
  for (int c = 0; c < lib->cellCount(); ++c) {
    const Cell& cell = lib->cell(c);
    for (std::size_t a = 0; a < cell.arcs.size(); ++a) {
      checkSurface(cell.arcs[a].rise, cell.name + " arc" +
                                          std::to_string(a) + " rise");
      checkSurface(cell.arcs[a].fall, cell.name + " arc" +
                                          std::to_string(a) + " fall");
    }
    if (cell.flop) {
      checkSurface(cell.flop->c2qRise, cell.name + " c2q rise");
      checkSurface(cell.flop->c2qFall, cell.name + " c2q fall");
    }
  }
  EXPECT_GT(surfacesChecked, 0);
}

// Graceful degradation's bounded-pessimism contract: quarantining a pin
// seeds it with a borrowed arrival at least as late as any real arrival
// the quarantined arc could have delivered, so WNS can only get worse.
// Pins are chosen so the premise holds (clean arrival <= borrowed seed).
TEST(InvariantsMetamorphic, QuarantinedPinNeverImprovesWns) {
  for (int i : {2, 9, 14}) {
    const BlockProfile p = randomProfile(i);
    Netlist clean = generateBlock(testLib(), p);
    Scenario sc;
    sc.lib = testLib();
    StaEngine cleanEng(clean, sc);
    cleanEng.run();
    const double cleanWns = cleanEng.wns(Check::kSetup);
    const double borrowed = cleanEng.clockPeriod();

    // Same profile + seed regenerates the identical netlist; quarantine a
    // few combinational input pins whose clean arrival respects the bound.
    Netlist degraded = generateBlock(testLib(), p);
    int quarantined = 0;
    for (InstId inst = 0;
         inst < clean.instanceCount() && quarantined < 4; ++inst) {
      if (clean.isSequential(inst)) continue;
      if (clean.instance(inst).isClockTreeBuffer) continue;
      if (clean.instance(inst).fanin.empty() ||
          clean.instance(inst).fanin[0] < 0)
        continue;
      const VertexId v = cleanEng.graph().inputVertex(inst, 0);
      if (v < 0) continue;
      const double arr = cleanEng.arrivalKey(v, Mode::kLate);
      if (arr == kNoTime || arr > borrowed) continue;
      degraded.quarantinePin(inst, 0);
      ++quarantined;
    }
    ASSERT_GT(quarantined, 0);
    StaEngine degEng(degraded, sc);
    degEng.run();
    EXPECT_LE(degEng.wns(Check::kSetup), cleanWns + 1e-9)
        << "quarantine improved WNS on seed " << i;
  }
}

}  // namespace
}  // namespace tc
