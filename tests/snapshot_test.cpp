/// \file snapshot_test.cpp
/// \brief Design-snapshot contracts: (1) serialize -> deserialize ->
/// re-serialize is byte-identical across a population of random designs,
/// (2) a reloaded snapshot times identically (bitwise) to the original,
/// and (3) EVERY single-byte corruption of a snapshot file is rejected
/// with a clean tc::Status — exhaustively, byte by byte, which is why the
/// corruption fixture uses a hand-built micro library instead of a full
/// characterized one.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "liberty/builder.h"
#include "liberty/serialize.h"
#include "network/netgen.h"
#include "signoff/snapshot.h"
#include "sta/engine.h"
#include "util/log.h"

namespace tc {
namespace {

std::vector<Scenario> twoScenarios() {
  auto libAt = [](ProcessCorner pc, Volt v, Celsius t) {
    return characterizedLibrary(LibraryPvt{pc, v, t}, /*quick=*/true);
  };
  std::vector<Scenario> out;
  {
    Scenario s;
    s.name = "func_tt";
    s.lib = libAt(ProcessCorner::kTT, 0.9, 25.0);
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "func_ssg_cw";
    s.lib = libAt(ProcessCorner::kSSG, 0.81, 125.0);
    s.beol = BeolCorner::kCworst;
    s.derate.mode = DerateMode::kAocv;
    s.tightenSigma = 2.5;
    s.clockUncertaintySetup = 35.0;
    out.push_back(s);
  }
  return out;
}

std::string serialize(const DesignSnapshot& snap) {
  std::ostringstream os(std::ios::binary);
  const Status st = writeSnapshot(snap, os);
  EXPECT_TRUE(st.ok()) << st.str();
  return os.str();
}

Result<DesignSnapshot> deserialize(const std::string& bytes,
                                   DiagnosticSink* sink) {
  std::istringstream is(bytes, std::ios::binary);
  return readSnapshot(is, sink);
}

TEST(Snapshot, RoundTripIsByteIdenticalAcrossRandomDesigns) {
  LogCapture quiet;
  const std::vector<Scenario> scenarios = twoScenarios();
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    BlockProfile prof = profileTiny();
    prof.seed = seed;
    prof.numGates = 60 + static_cast<int>(seed % 7) * 15;
    prof.numFlops = 8 + static_cast<int>(seed % 3) * 4;
    const Netlist nl = generateBlock(scenarios.front().lib, prof);

    // SPEF embedding exercised on a sample; it multiplies the blob size.
    const bool withSpef = seed % 10 == 0;
    const DesignSnapshot snap = makeSnapshot(nl, scenarios, withSpef);
    const std::string bytes = serialize(snap);

    DiagnosticSink sink;
    auto reloaded = deserialize(bytes, &sink);
    ASSERT_TRUE(reloaded.ok()) << reloaded.status().str();
    EXPECT_EQ(sink.errorCount(), 0);
    const std::string bytes2 = serialize(reloaded.value());
    ASSERT_EQ(bytes.size(), bytes2.size());
    ASSERT_TRUE(bytes == bytes2) << "re-serialization diverged";
  }
}

TEST(Snapshot, ReloadedDesignTimesIdentically) {
  LogCapture quiet;
  const std::vector<Scenario> scenarios = twoScenarios();
  BlockProfile prof = profileTiny();
  prof.seed = 7;
  const Netlist nl = generateBlock(scenarios.front().lib, prof);
  const std::string bytes =
      serialize(makeSnapshot(nl, scenarios, /*includeSpef=*/false));
  auto reloaded = deserialize(bytes, nullptr);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().str();

  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    SCOPED_TRACE("scenario " + scenarios[s].name);
    StaEngine ref(nl, scenarios[s]);
    ref.run();
    StaEngine snap(*reloaded->netlist, reloaded->scenarios[s]);
    snap.run();
    EXPECT_EQ(ref.wns(Check::kSetup), snap.wns(Check::kSetup));
    EXPECT_EQ(ref.wns(Check::kHold), snap.wns(Check::kHold));
    EXPECT_EQ(ref.tns(Check::kSetup), snap.tns(Check::kSetup));
    ASSERT_EQ(ref.endpoints().size(), snap.endpoints().size());
    for (std::size_t e = 0; e < ref.endpoints().size(); ++e) {
      EXPECT_EQ(ref.endpoints()[e].setupSlack,
                snap.endpoints()[e].setupSlack);
      EXPECT_EQ(ref.endpoints()[e].holdSlack,
                snap.endpoints()[e].holdSlack);
    }
  }
}

TEST(Snapshot, SadpScenarioIsUnsupported) {
  LogCapture quiet;
  std::vector<Scenario> scenarios = twoScenarios();
  const SadpModel sadp{};
  scenarios[1].sadp = &sadp;
  const Netlist nl =
      generateBlock(scenarios.front().lib, profileTiny());
  const DesignSnapshot snap =
      makeSnapshot(nl, scenarios, /*includeSpef=*/false);
  std::ostringstream os(std::ios::binary);
  const Status st = writeSnapshot(snap, os);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), DiagCode::kSnapUnsupported);
}

// --- exhaustive corruption sweep --------------------------------------------

/// Micro fixture: a hand-built two-cell library and a small hand-wired
/// netlist, so the whole snapshot is a few KB and flipping every byte
/// stays cheap (the sweep is O(bytes^2) in CRC work).
DesignSnapshot microSnapshot() {
  auto lib = std::make_shared<Library>(
      "micro", LibraryPvt{ProcessCorner::kTT, 0.9, 25.0});
  Cell inv;
  inv.name = "INV_X1_SVT";
  inv.footprint = "INV";
  TimingArc arc;
  Axis slew({10.0, 100.0});
  Axis load({1.0, 10.0});
  std::vector<double> vals{20.0, 30.0, 40.0, 60.0};
  arc.rise = {Table2D(slew, load, vals), Table2D(slew, load, vals)};
  arc.fall = arc.rise;
  inv.arcs.push_back(arc);
  lib->addCell(inv);

  auto nl = std::make_shared<Netlist>(lib);
  const PortId in = nl->addPort("in", true);
  const PortId out = nl->addPort("out", false);
  const NetId nIn = nl->addNet("n_in");
  const NetId nOut = nl->addNet("n_out");
  const InstId u1 = nl->addInstance("u1", 0);
  nl->connectPortToNet(in, nIn);
  nl->connectInput(u1, 0, nIn);
  nl->connectOutput(u1, nOut);
  nl->connectPortToNet(out, nOut);

  DesignSnapshot snap;
  snap.libraries.push_back(lib);
  snap.netlist = nl;
  Scenario sc;
  sc.name = "micro_tt";
  sc.lib = lib;
  snap.scenarios.push_back(sc);
  return snap;
}

/// The micro fixture with a populated corner-pruning audit section
/// (format v2): a second scenario so certificates can reference distinct
/// evidence, a fitted-looking predictor, and one certificate. Keeps the
/// sweep exercising every byte of the new record types.
DesignSnapshot microSnapshotWithAudit() {
  DesignSnapshot snap = microSnapshot();
  Scenario sc2 = snap.scenarios[0];
  sc2.name = "micro_tt_harsh";
  sc2.clockUncertaintySetup = 40.0;
  snap.scenarios.push_back(sc2);

  snap.prunePredictor.valid = true;
  snap.prunePredictor.seed = 0x9E3779B97F4A7C15ull;
  snap.prunePredictor.rounds = 2;
  snap.prunePredictor.trainingScenarios = {1};
  snap.prunePredictor.trainingSetupWns = {-42.5};
  snap.prunePredictor.trainingHoldWns = {-7.25};
  for (int i = 0; i < 15; ++i) {
    snap.prunePredictor.setupWeights.push_back(0.125 * i - 1.0);
    snap.prunePredictor.holdWeights.push_back(-0.25 * i + 0.5);
  }
  snap.prunePredictor.setupResidual = 3.5;
  snap.prunePredictor.holdResidual = 1.75;

  PruneCertificate cert;
  cert.scenario = 0;
  cert.scenarioName = "micro_tt";
  cert.predictedSetupWns = -40.0;
  cert.predictedHoldWns = -6.0;
  cert.boundSetupWns = -42.5;
  cert.boundHoldWns = -7.25;
  cert.uncertainty = 5.5;
  cert.evidenceSetup = 1;
  cert.evidenceHold = 1;
  cert.evidenceSetupName = "micro_tt_harsh";
  cert.evidenceHoldName = "micro_tt_harsh";
  cert.round = 2;
  snap.pruneCerts.push_back(cert);
  return snap;
}

TEST(Snapshot, EverySingleByteCorruptionIsCaughtCleanly) {
  LogCapture quiet;
  // Both fixtures: the empty-audit layout and the prune-populated one, so
  // the sweep also walks every byte of the predictor and certificate
  // records (format v2).
  const struct {
    const char* name;
    DesignSnapshot snap;
  } fixtures[] = {{"plain", microSnapshot()},
                  {"prune-audit", microSnapshotWithAudit()}};
  for (const auto& fixture : fixtures) {
    SCOPED_TRACE(fixture.name);
    const std::string good = serialize(fixture.snap);
    ASSERT_LT(good.size(), 64u * 1024)
        << "micro fixture grew too large for the exhaustive sweep";
    {
      auto ok = deserialize(good, nullptr);
      ASSERT_TRUE(ok.ok()) << ok.status().str();
    }
    for (std::size_t i = 0; i < good.size(); ++i) {
      std::string bad = good;
      bad[i] = static_cast<char>(bad[i] ^ 0x01);
      DiagnosticSink sink;
      auto r = deserialize(bad, &sink);
      ASSERT_FALSE(r.ok()) << "flip at byte " << i << " was not detected";
      const DiagCode code = r.status().code();
      EXPECT_TRUE(code == DiagCode::kSnapBadMagic ||
                  code == DiagCode::kSnapVersionMismatch ||
                  code == DiagCode::kSnapTruncated ||
                  code == DiagCode::kSnapChecksumMismatch ||
                  code == DiagCode::kSnapCorrupt)
          << "flip at byte " << i << " produced " << r.status().str();
      EXPECT_GE(sink.errorCount(), 1) << "flip at byte " << i;
    }
  }
}

// The characterization disk cache shares the byte-flip contract with
// snapshots: its CRC-framed files must reject EVERY single-byte corruption
// with a diagnostic, never parse garbage. Same micro-fixture trick — the
// sweep is O(bytes^2) in CRC work, so the file must stay a few KB.
TEST(Snapshot, LibraryCacheFileEveryByteFlipIsCaught) {
  LogCapture quiet;
  const DesignSnapshot snap = microSnapshot();
  const std::string path =
      std::string(::testing::TempDir()) + "micro_flip.tclib";
  ASSERT_TRUE(writeLibraryFile(*snap.libraries.front(), path));
  std::string good;
  {
    std::ifstream is(path, std::ios::binary);
    good.assign(std::istreambuf_iterator<char>(is),
                std::istreambuf_iterator<char>());
  }
  ASSERT_LT(good.size(), 64u * 1024)
      << "micro library grew too large for the exhaustive sweep";
  ASSERT_NE(readLibraryFile(path), nullptr);

  const std::string badPath = path + ".bad";
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    {
      std::ofstream os(badPath, std::ios::binary | std::ios::trunc);
      os.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    }
    DiagnosticSink sink;
    sink.setEcho(false);
    ASSERT_EQ(readLibraryFile(badPath, &sink), nullptr)
        << "flip at byte " << i << " was not detected";
    ASSERT_GT(sink.diagnostics().size(), 0u)
        << "silent nullptr for flip at byte " << i;
    bool knownCode = false;
    for (const auto& d : sink.diagnostics())
      knownCode = knownCode || d.code == DiagCode::kLibBadMagic ||
                  d.code == DiagCode::kLibVersionMismatch ||
                  d.code == DiagCode::kLibTruncated ||
                  d.code == DiagCode::kLibChecksumMismatch ||
                  d.code == DiagCode::kLibCorrupt;
    EXPECT_TRUE(knownCode) << "flip at byte " << i
                           << " produced an unexpected diagnostic";
  }
  std::remove(path.c_str());
  std::remove(badPath.c_str());
}

TEST(Snapshot, PruneAuditRoundTripsByteIdentically) {
  LogCapture quiet;
  const DesignSnapshot snap = microSnapshotWithAudit();
  const std::string bytes = serialize(snap);
  DiagnosticSink sink;
  auto reloaded = deserialize(bytes, &sink);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().str();
  EXPECT_EQ(sink.errorCount(), 0);

  const PrunePredictor& pp = reloaded->prunePredictor;
  EXPECT_TRUE(pp.valid);
  EXPECT_EQ(pp.seed, snap.prunePredictor.seed);
  EXPECT_EQ(pp.rounds, 2);
  EXPECT_EQ(pp.trainingScenarios, snap.prunePredictor.trainingScenarios);
  EXPECT_EQ(pp.trainingSetupWns, snap.prunePredictor.trainingSetupWns);
  EXPECT_EQ(pp.trainingHoldWns, snap.prunePredictor.trainingHoldWns);
  EXPECT_EQ(pp.setupWeights, snap.prunePredictor.setupWeights);
  EXPECT_EQ(pp.holdWeights, snap.prunePredictor.holdWeights);
  EXPECT_EQ(pp.setupResidual, snap.prunePredictor.setupResidual);
  EXPECT_EQ(pp.holdResidual, snap.prunePredictor.holdResidual);
  ASSERT_EQ(reloaded->pruneCerts.size(), 1u);
  const PruneCertificate& c = reloaded->pruneCerts[0];
  EXPECT_EQ(c.scenario, 0);
  EXPECT_EQ(c.scenarioName, "micro_tt");
  EXPECT_EQ(c.boundSetupWns, -42.5);
  EXPECT_EQ(c.boundHoldWns, -7.25);
  EXPECT_EQ(c.uncertainty, 5.5);
  EXPECT_EQ(c.evidenceSetup, 1);
  EXPECT_EQ(c.evidenceHold, 1);
  EXPECT_EQ(c.evidenceSetupName, "micro_tt_harsh");
  EXPECT_EQ(c.round, 2);

  const std::string bytes2 = serialize(reloaded.value());
  ASSERT_TRUE(bytes == bytes2) << "audit re-serialization diverged";
}

TEST(Snapshot, PruneAuditCanonicalOrderIsEnforcedOnWrite) {
  LogCapture quiet;
  // Certificates out of strictly-increasing scenario order (here: two
  // certs for the same index) are rejected at write time — the canonical
  // form is what makes the bitwise round-trip contract meaningful.
  DesignSnapshot snap = microSnapshotWithAudit();
  snap.pruneCerts.push_back(snap.pruneCerts[0]);
  std::ostringstream os(std::ios::binary);
  const Status st = writeSnapshot(snap, os);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), DiagCode::kSnapUnsupported);

  DesignSnapshot outOfRange = microSnapshotWithAudit();
  outOfRange.pruneCerts[0].scenario = 99;
  std::ostringstream os2(std::ios::binary);
  EXPECT_EQ(writeSnapshot(outOfRange, os2).code(),
            DiagCode::kSnapUnsupported);
}

TEST(Snapshot, HeaderCorruptionClassesAreDistinguished) {
  LogCapture quiet;
  const std::string good = serialize(microSnapshot());

  std::string badMagic = good;
  badMagic[0] = static_cast<char>(badMagic[0] ^ 0xFF);
  EXPECT_EQ(deserialize(badMagic, nullptr).status().code(),
            DiagCode::kSnapBadMagic);

  std::string badVersion = good;
  badVersion[4] = static_cast<char>(badVersion[4] ^ 0x40);
  EXPECT_EQ(deserialize(badVersion, nullptr).status().code(),
            DiagCode::kSnapVersionMismatch);

  // Trailing truncation: payload shorter than the header promises.
  std::string truncated = good.substr(0, good.size() - 5);
  EXPECT_EQ(deserialize(truncated, nullptr).status().code(),
            DiagCode::kSnapTruncated);

  std::string flipped = good;
  flipped[good.size() / 2] =
      static_cast<char>(flipped[good.size() / 2] ^ 0x10);
  EXPECT_EQ(deserialize(flipped, nullptr).status().code(),
            DiagCode::kSnapChecksumMismatch);

  EXPECT_EQ(deserialize(std::string("abc"), nullptr).status().code(),
            DiagCode::kSnapTruncated);
}

}  // namespace
}  // namespace tc
