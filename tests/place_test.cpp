#include <gtest/gtest.h>

#include "liberty/builder.h"
#include "network/netgen.h"
#include "place/minia.h"
#include "place/placement.h"

namespace tc {
namespace {

std::shared_ptr<const Library> lib() {
  return characterizedLibrary(LibraryPvt{}, true);
}

TEST(Floorplan, SizedToUtilization) {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  const Floorplan fp = Floorplan::forDesign(nl, 0.7);
  long total = 0;
  for (InstId i = 0; i < nl.instanceCount(); ++i)
    total += nl.cellOf(i).widthSites;
  const long capacity = static_cast<long>(fp.numRows) * fp.sitesPerRow;
  EXPECT_GE(capacity, total);
  EXPECT_LE(static_cast<double>(total) / capacity, 0.75);
  EXPECT_GE(static_cast<double>(total) / capacity, 0.45);
}

TEST(Floorplan, CoordinateMapsRoundTrip) {
  Floorplan fp;
  EXPECT_EQ(fp.siteOf(fp.xOf(17)), 17);
  EXPECT_EQ(fp.rowOf(fp.yOf(5)), 5);
  EXPECT_EQ(fp.siteOf(-4.0), 0);
  EXPECT_EQ(fp.rowOf(1e9), fp.numRows - 1);
}

TEST(Placer, ProducesLegalPlacement) {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  const Floorplan fp = Floorplan::forDesign(nl);
  placeDesign(nl, fp);
  RowOccupancy occ(nl, fp);
  EXPECT_TRUE(occ.isLegal());
  // Every instance got a row and coordinates inside the floorplan.
  for (InstId i = 0; i < nl.instanceCount(); ++i) {
    const Instance& inst = nl.instance(i);
    EXPECT_GE(inst.row, 0);
    EXPECT_LT(inst.row, fp.numRows);
    EXPECT_GE(inst.siteLo, 0);
    EXPECT_LE(inst.siteLo + nl.cellOf(i).widthSites, fp.sitesPerRow);
  }
}

TEST(Placer, ConnectivityBeatsRandomShuffleOnHpwl) {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  const Floorplan fp = Floorplan::forDesign(nl);
  placeDesign(nl, fp, /*refineSweeps=*/3);
  const Um placed = totalHpwl(nl);
  // Zero refinement sweeps (nearly random y, depth-only x) is worse.
  Netlist nl2 = generateBlock(L, profileTiny());
  placeDesign(nl2, fp, /*refineSweeps=*/0);
  const Um rough = totalHpwl(nl2);
  EXPECT_LT(placed, rough);
}

TEST(RowOccupancy, GapSearchFindsNearestFit) {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  const Floorplan fp = Floorplan::forDesign(nl, 0.5);
  placeDesign(nl, fp);
  RowOccupancy occ(nl, fp);
  const auto gap = occ.findGapNear(fp, 1, fp.sitesPerRow / 2, 4, 10000);
  ASSERT_GE(gap.row, 0);
  // The gap is genuinely free: move a cell there and stay legal.
  InstId victim = -1;
  for (InstId i = 0; i < nl.instanceCount(); ++i)
    if (nl.cellOf(i).widthSites <= 4 && nl.instance(i).row >= 0) victim = i;
  ASSERT_GE(victim, 0);
  occ.moveCell(nl, fp, victim, gap.row, gap.siteLo);
  EXPECT_TRUE(occ.isLegal());
  EXPECT_EQ(nl.instance(victim).row, gap.row);
}

TEST(RowOccupancy, SwapCellsPreservesLegality) {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  const Floorplan fp = Floorplan::forDesign(nl);
  placeDesign(nl, fp);
  RowOccupancy occ(nl, fp);
  // Find two same-width cells.
  InstId a = -1, b = -1;
  for (InstId i = 0; i < nl.instanceCount() && b < 0; ++i) {
    if (nl.instance(i).row < 0) continue;
    if (a < 0) {
      a = i;
    } else if (nl.cellOf(i).widthSites == nl.cellOf(a).widthSites && i != a) {
      b = i;
    }
  }
  ASSERT_GE(b, 0);
  const int rowA = nl.instance(a).row;
  const int rowB = nl.instance(b).row;
  occ.swapCells(nl, fp, a, b);
  EXPECT_TRUE(occ.isLegal());
  EXPECT_EQ(nl.instance(a).row, rowB);
  EXPECT_EQ(nl.instance(b).row, rowA);
}

// --- MinIA (Sec. 2.4, [24]) ----------------------------------------------------

/// Craft a row with a known island: A(vt1) B(vt2) C(vt1), all abutted.
Netlist craftIsland(std::shared_ptr<const Library> L, const Floorplan& fp) {
  Netlist nl(L);
  const int invSvt = L->variant("INV", VtClass::kSvt, 1);
  const int invHvt = L->variant("INV", VtClass::kHvt, 1);
  const PortId in = nl.addPort("in", true);
  NetId prev = nl.addNet("n0");
  nl.connectPortToNet(in, prev);
  int site = 10;
  for (int i = 0; i < 3; ++i) {
    const int cellIdx = i == 1 ? invHvt : invSvt;
    const InstId g = nl.addInstance("g" + std::to_string(i), cellIdx);
    nl.connectInput(g, 0, prev);
    prev = nl.addNet("n" + std::to_string(i + 1));
    nl.connectOutput(g, prev);
    Instance& inst = nl.instance(g);
    inst.row = 0;
    inst.siteLo = site;
    inst.x = fp.xOf(site);
    inst.y = fp.yOf(0);
    site += L->cell(cellIdx).widthSites;  // abutted
  }
  const PortId po = nl.addPort("po", false);
  nl.connectPortToNet(po, prev);
  return nl;
}

TEST(MinIa, DetectsSandwichedIsland) {
  auto L = lib();
  Floorplan fp;
  fp.numRows = 4;
  fp.sitesPerRow = 60;
  Netlist nl = craftIsland(L, fp);
  RowOccupancy occ(nl, fp);
  const auto v = checkMinIa(nl, occ, 3);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].vt, VtClass::kHvt);
  EXPECT_EQ(v[0].cells.size(), 1u);
  EXPECT_EQ(nl.instance(v[0].cells[0]).name, "g1");
}

TEST(MinIa, GapNeighborLegalizesIsland) {
  auto L = lib();
  Floorplan fp;
  fp.numRows = 4;
  fp.sitesPerRow = 60;
  Netlist nl = craftIsland(L, fp);
  // Move the right neighbor away: island now borders a gap -> legal.
  nl.instance(2).siteLo += 5;
  RowOccupancy occ(nl, fp);
  EXPECT_TRUE(checkMinIa(nl, occ, 3).empty());
}

TEST(MinIa, WideIslandPasses) {
  auto L = lib();
  Floorplan fp;
  fp.numRows = 4;
  fp.sitesPerRow = 60;
  Netlist nl = craftIsland(L, fp);
  // minSites = 2: the X1 INV (2 sites) just meets the rule.
  RowOccupancy occ(nl, fp);
  EXPECT_TRUE(checkMinIa(nl, occ, 2).empty());
  EXPECT_EQ(checkMinIa(nl, occ, 4).size(), 1u);
}

TEST(MinIa, FixerClearsCraftedViolation) {
  auto L = lib();
  Floorplan fp;
  fp.numRows = 4;
  fp.sitesPerRow = 60;
  Netlist nl = craftIsland(L, fp);
  RowOccupancy occ(nl, fp);
  MinIaFixConfig cfg;
  const auto rep = fixMinIa(nl, occ, fp, nullptr, cfg);
  EXPECT_EQ(rep.violationsBefore, 1);
  EXPECT_EQ(rep.violationsAfter, 0);
  EXPECT_TRUE(occ.isLegal());
}

TEST(MinIa, FixerClearsMostViolationsOnRealBlock) {
  // Random Vt assignment on a placed block creates islands; the [24]-style
  // fixer must remove (nearly) all with bounded displacement.
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  const Floorplan fp = Floorplan::forDesign(nl);
  placeDesign(nl, fp);
  // Random Vt swaps to seed violations.
  Rng rng(9);
  for (InstId i = 0; i < nl.instanceCount(); ++i) {
    const Cell& c = nl.cellOf(i);
    if (c.isSequential || nl.instance(i).isClockTreeBuffer) continue;
    if (!rng.chance(0.35)) continue;
    const VtClass vt = rng.chance(0.5) ? VtClass::kHvt : VtClass::kLvt;
    const int cand = L->variant(c.footprint, vt, c.drive);
    if (cand >= 0) nl.swapCell(i, cand);
  }
  RowOccupancy occ(nl, fp);
  const int before = static_cast<int>(checkMinIa(nl, occ, 3).size());
  ASSERT_GT(before, 0) << "expected seeded violations";
  MinIaFixConfig cfg;
  const auto rep = fixMinIa(nl, occ, fp, nullptr, cfg);
  EXPECT_EQ(rep.violationsBefore, before);
  EXPECT_LE(rep.violationsAfter, before / 5);  // >= 80% fixed
  EXPECT_TRUE(occ.isLegal());
}

TEST(MinIa, NaiveFixerBurnsLeakageOrTiming) {
  // The baseline vt-aligns unconditionally; compare leakage deltas.
  auto L = lib();
  Netlist nlA = generateBlock(L, profileTiny());
  const Floorplan fp = Floorplan::forDesign(nlA);
  placeDesign(nlA, fp);
  Rng rng(9);
  std::vector<std::pair<InstId, int>> swaps;
  for (InstId i = 0; i < nlA.instanceCount(); ++i) {
    const Cell& c = nlA.cellOf(i);
    if (c.isSequential || nlA.instance(i).isClockTreeBuffer) continue;
    if (!rng.chance(0.35)) continue;
    const VtClass vt = rng.chance(0.5) ? VtClass::kHvt : VtClass::kLvt;
    const int cand = L->variant(c.footprint, vt, c.drive);
    if (cand >= 0) {
      nlA.swapCell(i, cand);
      swaps.push_back({i, cand});
    }
  }
  Netlist nlB = generateBlock(L, profileTiny());
  placeDesign(nlB, fp);
  for (const auto& [i, cand] : swaps) nlB.swapCell(i, cand);

  RowOccupancy occA(nlA, fp);
  RowOccupancy occB(nlB, fp);
  MinIaFixConfig cfg;
  const auto smart = fixMinIa(nlA, occA, fp, nullptr, cfg);
  const auto naive = fixMinIaNaive(nlB, occB, fp, 3);
  // Both reduce violations; the naive one does it purely with Vt swaps.
  EXPECT_LT(naive.violationsAfter, naive.violationsBefore);
  EXPECT_EQ(naive.moves, 0);
  EXPECT_GE(naive.vtSwaps, smart.vtSwaps);
}

}  // namespace
}  // namespace tc
