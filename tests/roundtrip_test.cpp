/// \file roundtrip_test.cpp
/// \brief Write -> read -> equivalence property tests for the interchange
/// formats: structural Verilog and SPEF survive a round trip with no
/// diagnostics and no structural drift, across several generator seeds.

#include <gtest/gtest.h>

#include <cmath>

#include "interconnect/extract.h"
#include "interconnect/spef.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "network/verilog.h"
#include "util/log.h"

namespace tc {
namespace {

std::shared_ptr<const Library> lib() {
  static std::shared_ptr<const Library> L =
      characterizedLibrary(LibraryPvt{}, true);
  return L;
}

/// Structural equivalence: same ports, same instances (name, cell), same
/// connectivity expressed through net names.
void expectEquivalent(const Netlist& a, const Netlist& b) {
  ASSERT_EQ(a.portCount(), b.portCount());
  ASSERT_EQ(a.instanceCount(), b.instanceCount());
  ASSERT_EQ(a.netCount(), b.netCount());
  for (PortId p = 0; p < a.portCount(); ++p) {
    EXPECT_EQ(a.port(p).name, b.port(p).name);
    EXPECT_EQ(a.port(p).isInput, b.port(p).isInput);
  }
  // Port-attached nets are written through the port identifier, so their
  // internal names do not survive the trip; canonicalize them to the port
  // name on both sides.
  auto netName = [](const Netlist& nl, NetId n) {
    if (n < 0) return std::string("<nc>");
    const Net& net = nl.net(n);
    if (net.driverPort >= 0) return nl.port(net.driverPort).name;
    if (net.loadPort >= 0) return nl.port(net.loadPort).name;
    return net.name;
  };
  for (InstId i = 0; i < a.instanceCount(); ++i) {
    const Instance& ia = a.instance(i);
    const Instance& ib = b.instance(i);
    EXPECT_EQ(ia.name, ib.name);
    EXPECT_EQ(a.cellOf(i).name, b.cellOf(i).name);
    ASSERT_EQ(ia.fanin.size(), ib.fanin.size()) << ia.name;
    for (std::size_t pin = 0; pin < ia.fanin.size(); ++pin)
      EXPECT_EQ(netName(a, ia.fanin[pin]), netName(b, ib.fanin[pin]))
          << ia.name << " pin " << pin;
    EXPECT_EQ(netName(a, ia.fanout), netName(b, ib.fanout)) << ia.name;
  }
}

TEST(RoundTrip, VerilogPreservesStructureAcrossSeeds) {
  for (std::uint64_t seed : {1ull, 7ull, 23ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    BlockProfile prof = profileTiny();
    prof.seed = seed;
    const Netlist orig = generateBlock(lib(), prof);
    const std::string text = toVerilog(orig);

    DiagnosticSink sink;
    sink.setEcho(false);
    auto r = parseVerilog(text, lib(), sink);
    ASSERT_TRUE(r.ok()) << (sink.diagnostics().empty()
                                ? "no diagnostics"
                                : sink.diagnostics().front().str());
    EXPECT_EQ(sink.errorCount(), 0);
    expectEquivalent(orig, r.value());
  }
}

TEST(RoundTrip, VerilogReachesTextualFixedPoint) {
  const Netlist orig = generateBlock(lib(), profileTiny());
  DiagnosticSink sink;
  sink.setEcho(false);
  auto once = parseVerilog(toVerilog(orig), lib(), sink);
  ASSERT_TRUE(once.ok());
  const std::string gen1 = toVerilog(once.value());
  auto twice = parseVerilog(gen1, lib(), sink);
  ASSERT_TRUE(twice.ok());
  // After one trip the port-name canonicalization has settled: the text
  // is a fixed point of write -> read -> write.
  EXPECT_EQ(gen1, toVerilog(twice.value()));
  EXPECT_EQ(sink.errorCount(), 0);
}

TEST(RoundTrip, SpefPreservesParasiticsAcrossSeeds) {
  for (std::uint64_t seed : {1ull, 11ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Netlist nl = generatePipeline(lib(), 2, 4, 800.0, seed);
    Extractor ex(nl, BeolStack::forNode(techNode(28)));
    const ExtractionOptions opt;
    const std::string text = toSpef(nl, ex, opt);

    DiagnosticSink sink;
    sink.setEcho(false);
    auto r = parseSpef(text, sink);
    ASSERT_TRUE(r.ok()) << (sink.diagnostics().empty()
                                ? "no diagnostics"
                                : sink.diagnostics().front().str());
    EXPECT_EQ(sink.errorCount(), 0);
    const SpefDesign& d = r.value();
    EXPECT_EQ(d.nets.size(), static_cast<std::size_t>(nl.netCount()));

    for (NetId n = 0; n < nl.netCount(); ++n) {
      const auto p = ex.extract(n, opt);
      const SpefNet* sn = d.findNet(nl.net(n).name);
      ASSERT_NE(sn, nullptr) << nl.net(n).name;
      EXPECT_NEAR(sn->totalCap, p.totalCap,
                  1e-4 * std::max(1.0, std::abs(p.totalCap)))
          << nl.net(n).name;
      // One resistor per non-root RC node.
      EXPECT_EQ(sn->res.size(),
                static_cast<std::size_t>(p.tree.nodeCount() - 1))
          << nl.net(n).name;
      // Distributed cap adds up to what the writer put down.
      double nodeCapSum = 0.0;
      for (int node = 0; node < p.tree.nodeCount(); ++node)
        if (p.tree.nodeCap(node) > 0.0) nodeCapSum += p.tree.nodeCap(node);
      EXPECT_NEAR(sn->capSum(), nodeCapSum,
                  1e-4 * std::max(1.0, nodeCapSum))
          << nl.net(n).name;
    }
  }
}

}  // namespace
}  // namespace tc
