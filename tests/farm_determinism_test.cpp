/// \file farm_determinism_test.cpp
/// \brief The farm's headline contract: runMcmmFarm() is byte-identical to
/// the in-process McmmRunner on the same inputs, at every worker count,
/// and across repeated passes. Runs in the determinism ctest label next to
/// the thread-pool identity suite it extends — same comparator
/// (tests/mcmm_identical.h), new process boundary.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "network/netgen.h"
#include "mcmm_identical.h"
#include "signoff/farm.h"
#include "util/log.h"

namespace tc {
namespace {

using testutil::expectIdentical;
using testutil::scenarioSet;

TEST(FarmDeterminism, FarmMatchesInProcessAtEveryWorkerCount) {
  LogCapture quiet;
  // Fault variables left over from other suites must not leak in here.
  unsetenv("TC_FARM_FAULT");
  const std::vector<Scenario> scenarios = scenarioSet();
  const Netlist nl = generateBlock(scenarios.front().lib, profileTiny());

  // PBA tail on: the serialized ScenarioResult must carry the enumeration
  // results and certificates across the process boundary bit-for-bit.
  McmmOptions mcmm;
  mcmm.pbaEndpoints = 3;

  McmmRunner runner(nl, scenarios);
  const McmmResult ref = runner.run(mcmm);
  ASSERT_FALSE(ref.scenarios.empty());
  ASSERT_FALSE(ref.scenarios.front().endpoints.empty());
  ASSERT_FALSE(ref.scenarios.front().pba.empty());

  for (int workers : {1, 4, 16}) {
    FarmOptions opt;
    opt.workers = workers;
    opt.mcmm = mcmm;
    FarmStats stats;
    const McmmResult farm = runMcmmFarm(nl, scenarios, opt, &stats);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    EXPECT_EQ(stats.quarantined, 0);
    EXPECT_EQ(stats.crashes, 0);
    EXPECT_EQ(stats.frameErrors, 0);
    expectIdentical(ref, farm, "farm workers=" + std::to_string(workers));
  }
}

TEST(FarmDeterminism, RepeatedFarmPassesAreStable) {
  LogCapture quiet;
  unsetenv("TC_FARM_FAULT");
  const std::vector<Scenario> scenarios = scenarioSet();
  const Netlist nl = generateBlock(scenarios.front().lib, profileTiny());

  FarmOptions opt;
  opt.workers = 4;
  const McmmResult first = runMcmmFarm(nl, scenarios, opt, nullptr);
  const McmmResult second = runMcmmFarm(nl, scenarios, opt, nullptr);
  expectIdentical(first, second, "repeat");
}

TEST(FarmDeterminism, SnapshotOverloadMatchesNetlistOverload) {
  // Explicit snapshot (the artifact a real farm would ship) and the
  // convenience overload produce the same merged result.
  LogCapture quiet;
  unsetenv("TC_FARM_FAULT");
  const std::vector<Scenario> scenarios = scenarioSet();
  const Netlist nl = generateBlock(scenarios.front().lib, profileTiny());

  FarmOptions opt;
  opt.workers = 2;
  const McmmResult viaNetlist = runMcmmFarm(nl, scenarios, opt, nullptr);
  const DesignSnapshot snap =
      makeSnapshot(nl, scenarios, /*includeSpef=*/false);
  const McmmResult viaSnapshot = runMcmmFarm(snap, opt, nullptr);
  expectIdentical(viaNetlist, viaSnapshot, "snapshot overload");
}

}  // namespace
}  // namespace tc
