#include <gtest/gtest.h>

#include <cmath>

#include "liberty/builder.h"
#include "network/netgen.h"
#include "sta/engine.h"
#include "sta/mc.h"
#include "sta/mis.h"
#include "sta/pba.h"
#include "sta/report.h"

namespace tc {
namespace {

std::shared_ptr<const Library> lib() {
  return characterizedLibrary(LibraryPvt{}, true);
}

Scenario baseScenario() {
  Scenario sc;
  sc.lib = lib();
  return sc;
}

TEST(TimingGraph, StructureOfPipeline) {
  Netlist nl = generatePipeline(lib(), 1, 4);
  TimingGraph g(nl);
  EXPECT_GT(g.vertexCount(), 0);
  EXPECT_GT(g.edgeCount(), 0);
  // Endpoints: 2 flop D pins + po port + overflow/tie-free check.
  EXPECT_GE(g.endpoints().size(), 2u);
  EXPECT_EQ(g.clockPins().size(), 2u);
  // Every edge respects the topological order.
  std::vector<int> pos(static_cast<std::size_t>(g.vertexCount()));
  const auto& topo = g.topoOrder();
  for (std::size_t i = 0; i < topo.size(); ++i)
    pos[static_cast<std::size_t>(topo[i])] = static_cast<int>(i);
  for (EdgeId e = 0; e < g.edgeCount(); ++e)
    EXPECT_LT(pos[static_cast<std::size_t>(g.edge(e).from)],
              pos[static_cast<std::size_t>(g.edge(e).to)]);
}

TEST(TimingGraph, ClockNetworkMarked) {
  Netlist nl = generatePipeline(lib(), 1, 4);
  TimingGraph g(nl);
  // Clock buffers' pins are on the clock network; datapath gates are not.
  for (InstId i = 0; i < nl.instanceCount(); ++i) {
    if (nl.instance(i).isClockTreeBuffer) {
      EXPECT_TRUE(g.vertex(g.inputVertex(i, 0)).onClockNetwork)
          << nl.instance(i).name;
    } else if (!nl.isSequential(i)) {
      EXPECT_FALSE(g.vertex(g.inputVertex(i, 0)).onClockNetwork)
          << nl.instance(i).name;
    }
  }
  // Flop CK pins are clock endpoints.
  for (VertexId v : g.clockPins())
    EXPECT_TRUE(g.vertex(v).onClockNetwork);
}

TEST(StaEngine, ChainArrivalMatchesManualSum) {
  // Single-lane pipeline: D-arrival at the capture flop must equal clock
  // insertion + c2q + sum of stage and wire delays along the lane.
  auto L = lib();
  Netlist nl = generatePipeline(L, 1, 5);
  Scenario sc = baseScenario();
  sc.derate.mode = DerateMode::kNone;
  StaEngine eng(nl, sc);
  eng.run();

  // Locate the capture endpoint.
  const EndpointTiming* cap = nullptr;
  for (const auto& ep : eng.endpoints())
    if (ep.flop >= 0 && nl.instance(ep.flop).name == "capture0") cap = &ep;
  ASSERT_NE(cap, nullptr);

  const auto path = eng.tracePath(cap->vertex, Mode::kLate, cap->setupTrans);
  ASSERT_GE(path.size(), 5u);
  // Sum of step edge delays + source arrival == endpoint arrival.
  double sum = path.front().arrival;
  for (std::size_t i = 1; i < path.size(); ++i) sum += path[i].edgeDelay;
  EXPECT_NEAR(sum, path.back().arrival, 1e-6);
  EXPECT_NEAR(path.back().arrival, cap->dataLate, 1e-6);
  // The path starts at the clock port (launch through the clock tree).
  EXPECT_EQ(eng.graph().vertex(path.front().vertex).kind,
            TimingGraph::VertexKind::kPort);
}

TEST(StaEngine, SlacksConsistentWithPeriodScaling) {
  auto L = lib();
  Netlist nl = generatePipeline(L, 2, 6);
  Scenario sc = baseScenario();
  sc.inputDelay = 150.0;  // fixed, so it does not scale with the period
  StaEngine eng(nl, sc);
  eng.run();
  const Ps wns1 = eng.wns(Check::kSetup);
  // Stretch the period by 100ps: every setup slack gains exactly 100ps.
  nl.clocks().front().period += 100.0;
  StaEngine eng2(nl, sc);
  eng2.run();
  EXPECT_NEAR(eng2.wns(Check::kSetup), wns1 + 100.0, 1e-6);
  // Hold slacks are same-edge: unchanged.
  EXPECT_NEAR(eng2.wns(Check::kHold), eng.wns(Check::kHold), 1e-6);
}

TEST(StaEngine, CpprCreditsCommonClockPath) {
  auto L = lib();
  Netlist nl = generatePipeline(L, 4, 4);
  Scenario sc = baseScenario();
  sc.derate.mode = DerateMode::kFlatOcv;  // late/early spread on the tree
  StaEngine eng(nl, sc);
  eng.run();
  bool sawCredit = false;
  for (const auto& ep : eng.endpoints()) {
    if (ep.flop < 0) continue;
    if (nl.instance(ep.flop).name.rfind("capture", 0) == 0) {
      EXPECT_GE(ep.cpprSetup, 0.0);
      if (ep.cpprSetup > 1.0) sawCredit = true;
    }
  }
  EXPECT_TRUE(sawCredit) << "flop-to-flop paths should earn CPPR credit";

  // Disabling CPPR must not improve slack.
  Scenario noCppr = sc;
  noCppr.derate.cppr = false;
  StaEngine eng2(nl, noCppr);
  eng2.run();
  EXPECT_LE(eng2.wns(Check::kSetup), eng.wns(Check::kSetup) + 1e-9);
}

TEST(StaEngine, DerateLadderOrdering) {
  // Flat OCV is the most pessimistic; AOCV/POCV/LVF recover pessimism but
  // stay above the underated analysis (the paper's modeling-ladder story).
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  std::map<DerateMode, Ps> wns;
  for (DerateMode m : {DerateMode::kNone, DerateMode::kFlatOcv,
                       DerateMode::kAocv, DerateMode::kPocv,
                       DerateMode::kLvf}) {
    Scenario sc = baseScenario();
    sc.derate.mode = m;
    StaEngine eng(nl, sc);
    eng.run();
    wns[m] = eng.wns(Check::kSetup);
  }
  EXPECT_LT(wns[DerateMode::kFlatOcv], wns[DerateMode::kNone]);
  EXPECT_GT(wns[DerateMode::kAocv], wns[DerateMode::kFlatOcv]);
  EXPECT_GT(wns[DerateMode::kPocv], wns[DerateMode::kFlatOcv]);
  EXPECT_GT(wns[DerateMode::kLvf], wns[DerateMode::kFlatOcv]);
  EXPECT_LT(wns[DerateMode::kPocv], wns[DerateMode::kNone]);
}

TEST(StaEngine, UsefulSkewMovesSlack) {
  auto L = lib();
  Netlist nl = generatePipeline(L, 1, 6);
  Scenario sc = baseScenario();
  StaEngine eng(nl, sc);
  eng.run();
  const EndpointTiming* cap = nullptr;
  for (const auto& ep : eng.endpoints())
    if (ep.flop >= 0 && nl.instance(ep.flop).name == "capture0") cap = &ep;
  ASSERT_NE(cap, nullptr);
  const Ps before = cap->setupSlack;
  nl.instance(cap->flop).usefulSkew = 50.0;
  StaEngine eng2(nl, sc);
  eng2.run();
  const EndpointTiming* cap2 = nullptr;
  for (const auto& ep : eng2.endpoints())
    if (ep.flop == cap->flop) cap2 = &ep;
  ASSERT_NE(cap2, nullptr);
  EXPECT_NEAR(cap2->setupSlack, before + 50.0, 1.0);
  EXPECT_LT(cap2->holdSlack, eng.endpoints().size() ? 1e9 : 0);  // finite
}

TEST(StaEngine, DrvChecksFireOnOverload) {
  auto L = lib();
  Netlist nl = generatePipeline(L, 1, 2);
  Scenario sc = baseScenario();
  sc.limits.maxCapacitance = 0.5;  // absurdly tight: everything violates
  StaEngine eng(nl, sc);
  eng.run();
  EXPECT_GT(eng.drvViolations().size(), 0u);
  int caps = 0;
  for (const auto& v : eng.drvViolations())
    if (!v.isTransition) ++caps;
  EXPECT_GT(caps, 0);
}

TEST(StaEngine, VertexSlackMatchesEndpointOnWorstPath) {
  auto L = lib();
  Netlist nl = generatePipeline(L, 1, 5);
  Scenario sc = baseScenario();
  sc.derate.mode = DerateMode::kNone;  // mean domain == key domain
  StaEngine eng(nl, sc);
  eng.run();
  const auto eps = worstEndpoints(eng, Check::kSetup, 1);
  ASSERT_FALSE(eps.empty());
  const auto path = eng.tracePath(eps[0].vertex, Mode::kLate,
                                  eps[0].setupTrans);
  // Slack at intermediate vertices on the worst path >= endpoint slack
  // minus small bookkeeping tolerance; the endpoint itself matches.
  EXPECT_NEAR(eng.vertexSlack(eps[0].vertex), eps[0].setupSlack, 1.0);
}

TEST(StaEngine, ScenarioWithoutLibraryThrows) {
  Netlist nl = generatePipeline(lib(), 1, 2);
  Scenario sc;  // lib not set
  EXPECT_THROW(StaEngine eng(nl, sc), std::invalid_argument);
}

// --- PBA -------------------------------------------------------------------------

TEST(Pba, NeverMorePessimisticThanGba) {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  for (DerateMode m :
       {DerateMode::kFlatOcv, DerateMode::kPocv, DerateMode::kLvf}) {
    Scenario sc = baseScenario();
    sc.derate.mode = m;
    StaEngine eng(nl, sc);
    eng.run();
    PbaAnalyzer pba(eng);
    for (const auto& r : pba.recalcWorst(20, Check::kSetup)) {
      EXPECT_GE(r.pbaSlack, r.gbaSlack - 1e-9) << toString(m);
    }
  }
}

TEST(Pba, RemovesMeasurablePessimismSomewhere) {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  Scenario sc = baseScenario();
  sc.derate.mode = DerateMode::kPocv;
  StaEngine eng(nl, sc);
  eng.run();
  PbaAnalyzer pba(eng);
  double total = 0.0;
  for (const auto& r : pba.recalcWorst(24, Check::kSetup))
    total += r.pessimismRemoved();
  EXPECT_GT(total, 0.0);
}

TEST(Pba, PathArrivalMatchesGbaWithoutMergingPessimism) {
  // On a single-lane pipeline there is exactly one path per endpoint, so
  // the only GBA-vs-PBA gap is the wire metric (D2M <= Elmore).
  auto L = lib();
  Netlist nl = generatePipeline(L, 1, 5);
  Scenario sc = baseScenario();
  sc.derate.mode = DerateMode::kNone;
  StaEngine eng(nl, sc);
  eng.run();
  PbaAnalyzer pba(eng);
  for (const auto& ep : eng.endpoints()) {
    if (ep.flop < 0) continue;
    const Ps exact = pba.pathArrival(ep.vertex, Mode::kLate, ep.setupTrans);
    EXPECT_LE(exact, ep.dataLate + 1e-9);
    EXPECT_GT(exact, 0.5 * ep.dataLate);
  }
}

TEST(Pba, AocvDeratesArcDelaysNotLaunchOffset) {
  // The launch offset at a data input port is a constraint, not a cell
  // whose delay varies with depth: shifting set_input_delay by D must
  // shift the exact AOCV arrival of a port-launched path by exactly D.
  // (The old retrace multiplied the *whole* arrival by the depth derate,
  // scaling the offset too — this test discriminates the two.)
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  Scenario sc1 = baseScenario();
  sc1.derate.mode = DerateMode::kAocv;
  sc1.inputDelay = 100.0;
  Scenario sc2 = sc1;
  sc2.inputDelay = 300.0;
  StaEngine e1(nl, sc1), e2(nl, sc2);
  e1.run();
  e2.run();
  PbaAnalyzer p1(e1), p2(e2);
  int checked = 0;
  for (const auto& ep : e1.endpoints()) {
    const auto path1 = e1.tracePath(ep.vertex, Mode::kLate, ep.setupTrans);
    const auto path2 = e2.tracePath(ep.vertex, Mode::kLate, ep.setupTrans);
    if (path1.empty() || path1.size() != path2.size()) continue;
    const auto& front = e1.graph().vertex(path1.front().vertex);
    // Only port-launched paths carry the input-delay offset; require the
    // two runs traced the *same* path so the arc sum cancels exactly.
    if (front.kind != TimingGraph::VertexKind::kPort || front.onClockNetwork)
      continue;
    bool same = true;
    for (std::size_t i = 0; i < path1.size(); ++i)
      same = same && path1[i].viaEdge == path2[i].viaEdge &&
             path1[i].trans == path2[i].trans;
    if (!same) continue;
    const Ps a1 = p1.pathArrival(ep.vertex, Mode::kLate, ep.setupTrans);
    const Ps a2 = p2.pathArrival(ep.vertex, Mode::kLate, ep.setupTrans);
    EXPECT_NEAR(a2 - a1, 200.0, 1e-6) << "endpoint vertex " << ep.vertex;
    ++checked;
  }
  EXPECT_GT(checked, 0);
  // And the K=1 consistency GBA promises: exact AOCV arrivals never exceed
  // the fully-derated GBA key, so pbaSlack stays >= gbaSlack.
  for (const auto& r : p1.recalcWorst(20, Check::kSetup))
    EXPECT_GE(r.pbaSlack, r.gbaSlack - 1e-9);
}

TEST(Pba, HoldRetraceNeverFalselyPasses) {
  // PBA hold uses the same D2M wire metric as setup. D2M <= Elmore, so on
  // a single-path design (exact slews == GBA slews under kNone) the exact
  // early arrival can only be *earlier* than GBA's: hold pbaSlack <=
  // gbaSlack — PBA may newly fail hold but never falsely pass it.
  auto L = lib();
  Netlist nl = generatePipeline(L, 2, 6);
  Scenario sc = baseScenario();
  sc.derate.mode = DerateMode::kNone;
  StaEngine eng(nl, sc);
  eng.run();
  PbaAnalyzer pba(eng);
  for (const auto& ep : eng.endpoints()) {
    if (ep.flop < 0) continue;
    const PbaResult r = pba.recalcEndpoint(ep, Check::kHold);
    EXPECT_LE(r.pbaSlack, r.gbaSlack + 1e-9);
    if (r.exactArrival != kNoTime)
      EXPECT_LE(r.exactArrival, ep.dataEarly + 1e-9);
  }
}

TEST(Pba, RetraceWorseThanGbaIsSurfacedNotClamped) {
  // Force a modeling inconsistency: MIS speed-up factors < 1 shrink the
  // GBA late arrivals, but the exact retrace (which deliberately ignores
  // MIS) evaluates larger. The old clamp silently reported pbaSlack ==
  // gbaSlack here; now the exact value stands and a diagnostic fires.
  auto L = lib();
  Netlist nl = generatePipeline(L, 2, 6);
  Scenario sc = baseScenario();
  sc.derate.mode = DerateMode::kNone;
  StaEngine eng(nl, sc);
  std::vector<std::array<double, 2>> fast(
      static_cast<std::size_t>(nl.instanceCount()), {0.9, 0.9});
  eng.setMisFactors(fast, fast);
  eng.run();
  PbaAnalyzer pba(eng);
  DiagnosticSink sink;
  sink.setEcho(false);
  pba.setDiagnosticSink(&sink);
  bool sawGap = false;
  for (const auto& r : pba.recalcWorst(100, Check::kSetup)) {
    if (r.retraceGap > 1e-9) {
      sawGap = true;
      EXPECT_LT(r.pbaSlack, r.gbaSlack);  // no clamp
    }
  }
  ASSERT_TRUE(sawGap);
  EXPECT_GT(sink.warningCount(), 0);
  bool sawCode = false;
  for (const auto& d : sink.diagnostics())
    sawCode = sawCode || d.code == DiagCode::kPbaRetraceWorseThanGba;
  EXPECT_TRUE(sawCode);
}

// --- MIS --------------------------------------------------------------------------

TEST(Mis, FindsOverlapsOnSimultaneousInputs) {
  // Both NAND inputs driven from the same source through equal-ish paths:
  // switching windows must overlap.
  auto L = lib();
  Netlist nl(L);
  const int inv = L->variant("INV", VtClass::kSvt, 1);
  const int nand = L->variant("NAND2", VtClass::kSvt, 1);
  const PortId in = nl.addPort("in", true);
  const NetId nIn = nl.addNet("nin");
  nl.connectPortToNet(in, nIn);
  const InstId a = nl.addInstance("a", inv);
  nl.connectInput(a, 0, nIn);
  const NetId na = nl.addNet("na");
  nl.connectOutput(a, na);
  const InstId b = nl.addInstance("b", inv);
  nl.connectInput(b, 0, nIn);
  const NetId nb = nl.addNet("nb");
  nl.connectOutput(b, nb);
  const InstId g = nl.addInstance("g", nand);
  nl.connectInput(g, 0, na);
  nl.connectInput(g, 1, nb);
  const NetId out = nl.addNet("out");
  nl.connectOutput(g, out);
  const PortId po = nl.addPort("po", false);
  nl.connectPortToNet(po, out);

  Scenario sc = baseScenario();
  StaEngine eng(nl, sc);
  eng.run();
  MisAnalyzer mis(eng);
  const auto overlaps = mis.findOverlaps();
  ASSERT_EQ(overlaps.size(), 1u);
  EXPECT_EQ(overlaps[0].inst, g);
  EXPECT_GT(overlaps[0].overlapWindow, 0.0);
}

TEST(Mis, RefineIsSignoffSafe) {
  // MIS refinement may only degrade setup WNS (series slow-down) and hold
  // WNS (parallel speed-up) — never improve either.
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  Scenario sc = baseScenario();
  StaEngine eng(nl, sc);
  eng.run();
  const Ps setupBefore = eng.wns(Check::kSetup);
  const Ps holdBefore = eng.wns(Check::kHold);
  MisAnalyzer mis(eng);
  const auto overlaps = mis.refine();
  EXPECT_GT(overlaps.size(), 0u);
  EXPECT_LE(eng.wns(Check::kSetup), setupBefore + 1e-9);
  EXPECT_LE(eng.wns(Check::kHold), holdBefore + 1e-9);
}

// --- Monte Carlo -------------------------------------------------------------------

TEST(Mc, PathModelNominalMatchesTrace) {
  auto L = lib();
  Netlist nl = generatePipeline(L, 1, 6);
  Scenario sc = baseScenario();
  sc.derate.mode = DerateMode::kNone;
  StaEngine eng(nl, sc);
  eng.run();
  MonteCarloTiming mc(eng);
  const auto eps = worstEndpoints(eng, Check::kSetup, 1);
  ASSERT_FALSE(eps.empty());
  const PathModel pm = mc.compilePath(eps[0].vertex, eps[0].setupTrans);
  EXPECT_GT(pm.depth(), 4);
  // Nominal path delay ~ data arrival minus clock-source portion; both are
  // sums of the same pieces, so the model nominal is close to dataLate.
  EXPECT_NEAR(pm.nominal, eps[0].dataLate, 0.25 * eps[0].dataLate);
}

TEST(Mc, SamplingMomentsReflectSigmas) {
  auto L = lib();
  Netlist nl = generatePipeline(L, 1, 8);
  Scenario sc = baseScenario();
  StaEngine eng(nl, sc);
  eng.run();
  MonteCarloTiming mc(eng);
  const auto eps = worstEndpoints(eng, Check::kSetup, 1);
  const PathModel pm = mc.compilePath(eps[0].vertex, eps[0].setupTrans);
  McOptions opt;
  opt.samples = 4000;
  const SampleSet s = mc.run(pm, opt);
  EXPECT_NEAR(s.mean(), pm.nominal, 0.05 * pm.nominal);
  EXPECT_GT(s.stddev(), 0.0);
  // Disabling all variation collapses the distribution.
  McOptions off;
  off.sampleGateMismatch = false;
  off.sampleBeolLayers = false;
  off.samples = 16;
  const SampleSet s0 = mc.run(pm, off);
  EXPECT_NEAR(s0.stddev(), 0.0, 1e-9);
}

TEST(Mc, CornerDelayOrdering) {
  auto L = lib();
  Netlist nl = generatePipeline(L, 1, 8);
  Scenario sc = baseScenario();
  StaEngine eng(nl, sc);
  eng.run();
  MonteCarloTiming mc(eng);
  const auto eps = worstEndpoints(eng, Check::kSetup, 1);
  const PathModel pm = mc.compilePath(eps[0].vertex, eps[0].setupTrans);
  const Ps typ = mc.pathDelayAtCorner(pm, BeolCorner::kTypical);
  EXPECT_NEAR(typ, pm.nominal, 1e-6);
  EXPECT_GT(mc.pathDelayAtCorner(pm, BeolCorner::kCworst), typ);
  EXPECT_GT(mc.pathDelayAtCorner(pm, BeolCorner::kRCworst), typ);
  EXPECT_LT(mc.pathDelayAtCorner(pm, BeolCorner::kRCbest), typ);
  // Tightening shrinks the excursion.
  const Ps full = mc.pathDelayAtCorner(pm, BeolCorner::kCworst, 3.0);
  const Ps tight = mc.pathDelayAtCorner(pm, BeolCorner::kCworst, 1.5);
  EXPECT_LT(tight, full);
  EXPECT_GT(tight, typ);
}

// --- reports ----------------------------------------------------------------------

TEST(Report, SummaryAndPathRendersNames) {
  auto L = lib();
  Netlist nl = generatePipeline(L, 1, 3);
  Scenario sc = baseScenario();
  StaEngine eng(nl, sc);
  eng.run();
  const std::string sum = timingSummary(eng);
  EXPECT_NE(sum.find("WNS"), std::string::npos);
  const EndpointTiming* cap = nullptr;
  for (const auto& ep : eng.endpoints())
    if (ep.flop >= 0 && nl.instance(ep.flop).name == "capture0") cap = &ep;
  ASSERT_NE(cap, nullptr);
  const std::string rep = pathReport(eng, *cap, Check::kSetup);
  EXPECT_NE(rep.find("Setup path"), std::string::npos);
  EXPECT_NE(rep.find("capture0"), std::string::npos);
  EXPECT_NE(rep.find("launch0"), std::string::npos);
  EXPECT_FALSE(slackHistogram(eng, Check::kSetup).empty());
}

TEST(Report, BreakdownCountsMatchEngine) {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  Scenario sc = baseScenario();
  StaEngine eng(nl, sc);
  eng.run();
  const auto b = breakdown(eng);
  EXPECT_EQ(b.setupViolations, eng.violationCount(Check::kSetup));
  EXPECT_EQ(b.holdViolations, eng.violationCount(Check::kHold));
  EXPECT_DOUBLE_EQ(b.setupWns, eng.wns(Check::kSetup));
}

}  // namespace
}  // namespace tc
