#include <gtest/gtest.h>

#include <cmath>

#include "device/latch.h"
#include "liberty/builder.h"
#include "liberty/interdep.h"
#include "liberty/library.h"

namespace tc {
namespace {

/// Shared quick library (characterized once per process).
std::shared_ptr<const Library> lib() {
  return characterizedLibrary(LibraryPvt{}, /*quick=*/true);
}

TEST(Library, HasFullCellZoo) {
  auto L = lib();
  for (const char* fp : {"INV", "BUF", "NAND2", "NAND3", "NOR2", "NOR3",
                         "AOI21", "OAI21", "DFF"}) {
    EXPECT_FALSE(L->variants(fp).empty()) << fp;
  }
  // 7 comb templates x 4 drives x 4 vt + BUF x4x4 + DFF x3x4 = 140.
  EXPECT_EQ(L->cellCount(), 140);
}

TEST(Library, VariantLookupAndOrdering) {
  auto L = lib();
  const auto v = L->variants("NAND2");
  EXPECT_EQ(v.size(), 16u);  // 4 vt x 4 drives
  // Sorted by (vt, drive).
  for (std::size_t i = 1; i < v.size(); ++i) {
    const Cell& a = L->cell(v[i - 1]);
    const Cell& b = L->cell(v[i]);
    EXPECT_TRUE(a.vt < b.vt || (a.vt == b.vt && a.drive < b.drive));
  }
  EXPECT_GE(L->variant("NAND2", VtClass::kLvt, 4), 0);
  EXPECT_EQ(L->variant("NAND2", VtClass::kLvt, 16), -1);
  EXPECT_THROW(L->cellByName("XOR9_X1_SVT"), std::invalid_argument);
}

TEST(Library, DuplicateCellRejected) {
  Library l("t", LibraryPvt{});
  Cell c;
  c.name = "A";
  c.footprint = "A";
  l.addCell(c);
  EXPECT_THROW(l.addCell(c), std::invalid_argument);
}

TEST(Library, DelayMonotoneInLoadAndSlew) {
  auto L = lib();
  const Cell& inv = L->cellByName("INV_X1_SVT");
  const auto& surf = inv.arcs[0].rise;
  double prev = 0.0;
  for (double load : {1.0, 2.0, 5.0, 12.0, 20.0}) {
    const double d = surf.delayAt(40.0, load);
    EXPECT_GT(d, prev);
    prev = d;
  }
  // Delay grows (weakly) with input slew at fixed load.
  EXPECT_GT(surf.delayAt(140.0, 6.0), surf.delayAt(15.0, 6.0));
}

TEST(Library, DriveScalingExact) {
  // delay_k(s, l) == delay_1(s, l/k) by construction (and by physics in
  // this device model: widths scale currents and caps together).
  auto L = lib();
  const Cell& x1 = L->cellByName("NAND2_X1_SVT");
  const Cell& x4 = L->cellByName("NAND2_X4_SVT");
  for (double slew : {20.0, 60.0}) {
    for (double load : {4.0, 12.0}) {
      EXPECT_NEAR(x4.arcs[0].rise.delayAt(slew, load),
                  x1.arcs[0].rise.delayAt(slew, load / 4.0), 1e-9);
    }
  }
  EXPECT_NEAR(x4.pinCap, 4.0 * x1.pinCap, 1e-9);
  EXPECT_GT(x4.widthSites, x1.widthSites);
  EXPECT_NEAR(x4.leakagePower, 4.0 * x1.leakagePower, 1e-9);
}

TEST(Library, VtOrderingInDelayAndLeakage) {
  auto L = lib();
  const double d_ulvt =
      L->cellByName("INV_X1_ULVT").arcs[0].rise.delayAt(40, 6);
  const double d_svt = L->cellByName("INV_X1_SVT").arcs[0].rise.delayAt(40, 6);
  const double d_hvt = L->cellByName("INV_X1_HVT").arcs[0].rise.delayAt(40, 6);
  EXPECT_LT(d_ulvt, d_svt);
  EXPECT_LT(d_svt, d_hvt);
  EXPECT_GT(L->cellByName("INV_X1_ULVT").leakagePower,
            L->cellByName("INV_X1_HVT").leakagePower * 10.0);
}

TEST(Library, MisFactorsDirectionallyCorrect) {
  auto L = lib();
  const Cell& nand = L->cellByName("NAND2_X1_SVT");
  EXPECT_LT(nand.mis.parallelFactor, 0.95);  // parallel pull-up speeds up
  EXPECT_GT(nand.mis.seriesFactor, 1.02);    // series stack slows down
  EXPECT_TRUE(nand.mis.parallelIsRise);
  const Cell& nor = L->cellByName("NOR2_X1_SVT");
  EXPECT_FALSE(nor.mis.parallelIsRise);  // NOR: parallel NMOS drives fall
  EXPECT_LT(nor.mis.parallelFactor, 0.95);
}

TEST(Library, LvfSigmasPositiveAndPlausible) {
  auto L = lib();
  const Cell& c = L->cellByName("NAND2_X1_SVT");
  const double d = c.arcs[0].rise.delayAt(40, 6);
  const double sl = c.arcs[0].riseLvf.lateAt(40, 6);
  const double se = c.arcs[0].riseLvf.earlyAt(40, 6);
  EXPECT_GT(sl, 0.0);
  EXPECT_GT(se, 0.0);
  // Single-stage sigma is a few percent of delay.
  EXPECT_LT(sl, 0.15 * d);
  EXPECT_GT(sl, 0.002 * d);
  EXPECT_GT(c.pocvSigmaRatio, 0.005);
  EXPECT_LT(c.pocvSigmaRatio, 0.12);
}

TEST(Library, BufferComposedAndPositiveUnate) {
  auto L = lib();
  const Cell& buf = L->cellByName("BUF_X4_SVT");
  EXPECT_TRUE(buf.isBuffer);
  EXPECT_FALSE(buf.isInverting());
  EXPECT_EQ(buf.arcs[0].unate, Unateness::kPositive);
  // Buffer is slower than a single inverter (two stages).
  const Cell& inv = L->cellByName("INV_X4_SVT");
  EXPECT_GT(buf.arcs[0].rise.delayAt(30, 8),
            inv.arcs[0].rise.delayAt(30, 8));
}

TEST(Library, AocvDeratesShrinkWithDepth) {
  auto L = lib();
  const auto& aocv = L->aocv();
  EXPECT_GT(aocv.late(1), aocv.late(16));
  EXPECT_GT(aocv.late(16), 1.0);
  EXPECT_LT(aocv.early(1), aocv.early(16));
  EXPECT_LT(aocv.early(16), 1.0);
  // Distance term adds derate.
  EXPECT_GT(aocv.late(4, 1000.0), aocv.late(4, 0.0));
}

TEST(Library, FlopTimingCharacterized) {
  auto L = lib();
  const Cell& dff = L->cellByName("DFF_X1_SVT");
  ASSERT_TRUE(dff.flop.has_value());
  EXPECT_GT(dff.flop->clockToQ, 5.0);
  EXPECT_LT(dff.flop->clockToQ, 300.0);
  EXPECT_GT(dff.flop->setup, dff.flop->hold);  // typical flop shape
  EXPECT_FALSE(dff.flop->c2qRise.empty());
  // c2q grows with clock slew and load.
  EXPECT_GT(dff.flop->c2qRise.delayAt(120, 4), dff.flop->c2qRise.delayAt(12, 4));
  EXPECT_GT(dff.flop->c2qRise.delayAt(40, 12), dff.flop->c2qRise.delayAt(40, 1));
}

TEST(LibraryPvt, OrderingAndNames) {
  LibraryPvt a{ProcessCorner::kTT, 0.9, 25.0};
  LibraryPvt b{ProcessCorner::kTT, 0.9, 125.0};
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_TRUE(a == a);
  EXPECT_NE(a.toString().find("TT"), std::string::npos);
}

TEST(LibGroup, VoltageInterpolation) {
  // Two tiny hand-built libraries at 0.8V and 1.0V.
  auto mk = [](Volt v, double delay) {
    auto l = std::make_shared<Library>("l", LibraryPvt{ProcessCorner::kTT, v, 25.0});
    Cell c;
    c.name = "INV_X1_SVT";
    c.footprint = "INV";
    TimingArc arc;
    Axis s({10.0, 100.0});
    Axis ld({1.0, 10.0});
    std::vector<double> vals(4, delay);
    arc.rise = {Table2D(s, ld, vals), Table2D(s, ld, vals)};
    arc.fall = arc.rise;
    c.arcs.push_back(arc);
    l->addCell(c);
    return l;
  };
  LibGroup g;
  g.add(mk(0.8, 100.0));
  g.add(mk(1.0, 60.0));
  EXPECT_DOUBLE_EQ(g.delayAt(0.8, "INV_X1_SVT", 0, true, 20, 5), 100.0);
  EXPECT_DOUBLE_EQ(g.delayAt(1.0, "INV_X1_SVT", 0, true, 20, 5), 60.0);
  EXPECT_DOUBLE_EQ(g.delayAt(0.9, "INV_X1_SVT", 0, true, 20, 5), 80.0);
  // Clamped outside the characterized range.
  EXPECT_DOUBLE_EQ(g.delayAt(0.5, "INV_X1_SVT", 0, true, 20, 5), 100.0);
  EXPECT_DOUBLE_EQ(g.delayAt(1.2, "INV_X1_SVT", 0, true, 20, 5), 60.0);
}

// --- interdependent flop model ------------------------------------------------

TEST(Interdep, SurfaceShapeMatchesLatchSim) {
  LatchSim sim{LatchConditions{}};
  const InterdepFlopModel m = fitInterdepModel(sim, /*quick=*/true);
  EXPECT_GT(m.c2q0, 5.0);
  EXPECT_GT(m.tauS, 0.5);
  EXPECT_GT(m.aS, 0.0);
  // Surface is decreasing in both setup and hold.
  EXPECT_GT(m.clockToQ(m.s0, 300.0), m.clockToQ(m.s0 + 30.0, 300.0));
  EXPECT_GT(m.clockToQ(300.0, m.h0), m.clockToQ(300.0, m.h0 + 30.0));
  // At generous margins it approaches c2q0.
  EXPECT_NEAR(m.clockToQ(300.0, 300.0), m.c2q0, 0.05 * m.c2q0 + 1.0);
}

TEST(Interdep, InverseFunctionsRoundTrip) {
  InterdepFlopModel m;  // defaults are a valid surface
  const Ps budget = m.c2q0 * 1.2;
  const Ps s = m.setupForC2q(budget, 300.0);
  EXPECT_NEAR(m.clockToQ(s, 300.0), budget, 0.5);
  const Ps h = m.holdForC2q(budget, 300.0);
  EXPECT_NEAR(m.clockToQ(300.0, h), budget, 0.5);
  // Unattainable budget clamps to the large-margin sentinel.
  EXPECT_GE(m.setupForC2q(m.c2q0 * 0.5, 300.0), 299.0);
}

TEST(Interdep, ConventionalPointOnSurface) {
  InterdepFlopModel m;
  const Ps su = m.conventionalSetup(0.10);
  EXPECT_NEAR(m.clockToQ(su, 300.0), 1.10 * m.c2q0, 0.10 * m.c2q0);
  // Tighter pushout criterion => larger setup time.
  EXPECT_GT(m.conventionalSetup(0.05), m.conventionalSetup(0.20));
}

TEST(Interdep, SetupHoldTradeoffCurve) {
  InterdepFlopModel m;
  // Fixed c2q budget: shrinking setup forces growing hold (Fig 10 iii).
  const Ps budget = m.c2q0 * 1.15;
  const Ps s1 = m.setupForC2q(budget, 300.0);
  // Spend half the pushout budget on hold instead:
  const Ps h2 = m.holdForC2q(budget, s1 + 5.0);
  const Ps h3 = m.holdForC2q(budget, s1 + 15.0);
  EXPECT_GT(h2, h3);  // more setup margin -> less hold needed
}

}  // namespace
}  // namespace tc
