/// \file prune_test.cpp
/// \brief Corner-pruning units and the quarantine-poison regression (ctest
/// label: prune). The synthetic-executor cases exercise the active-learning
/// loop against a closed-form ground truth where soundness is checkable
/// exactly; the farm case reproduces the bug class the pruner must be
/// immune to — a poisoned (quarantined) exact run silently serving as
/// another corner's bound evidence or training point.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "liberty/builder.h"
#include "mcmm_identical.h"
#include "network/netgen.h"
#include "signoff/prune.h"
#include "util/log.h"

namespace tc {
namespace {

std::shared_ptr<const Library> quickLib() {
  return characterizedLibrary(LibraryPvt{ProcessCorner::kTT, 0.9, 25.0},
                              /*quick=*/true);
}

Scenario baseScenario() {
  Scenario s;
  s.name = "func_tt";
  s.lib = quickLib();
  return s;
}

/// Closed-form "true WNS" the synthetic executor answers with: linear and
/// strictly decreasing in every harshness knob, so dominance in scenario
/// space implies ordering in WNS space exactly — which is what makes the
/// certificate-soundness assertions exact instead of approximate.
double trueSetupWns(const Scenario& sc) {
  return -(sc.derate.flatLate * 1000.0 + sc.clockUncertaintySetup * 2.0 +
           sc.extraSetupMargin * 3.0);
}
double trueHoldWns(const Scenario& sc) {
  return -((1.0 - sc.derate.flatEarly) * 800.0 +
           sc.clockUncertaintyHold * 4.0 + sc.extraHoldMargin * 2.0);
}

ScenarioResult syntheticResult(const Scenario& sc) {
  ScenarioResult r;
  r.scenario = sc.name;
  r.setupWns = trueSetupWns(sc);
  r.holdWns = trueHoldWns(sc);
  r.setupTns = r.setupWns * 3.0;
  r.holdTns = r.holdWns * 2.0;
  r.setupViolations = 5;
  r.holdViolations = 2;
  return r;
}

/// Batch executor over the synthetic truth that also records every batch
/// it was handed (for budget/ordering assertions).
struct RecordingRunner {
  const std::vector<Scenario>* scenarios;
  std::vector<std::vector<std::size_t>> batches;

  ExactBatchRunner fn() {
    return [this](const std::vector<std::size_t>& batch) {
      batches.push_back(batch);
      std::vector<ScenarioResult> out;
      for (std::size_t i : batch)
        out.push_back(syntheticResult((*scenarios)[i]));
      return out;
    };
  }
};

OcvLadderSpec smallSpec() {
  OcvLadderSpec spec;
  spec.lateFactors = {1.03, 1.08, 1.13};
  spec.earlyFactors = {0.97, 0.92, 0.87};
  spec.setupUncertainties = {15.0, 25.0, 40.0};
  spec.extraSetupMargins = {0.0, 10.0, 25.0};
  spec.sigmaCounts = {3.0};
  return spec;
}

// --- feature vector ---------------------------------------------------------

TEST(PruneFeatures, VectorTracksTheScenarioKnobs) {
  Scenario s = baseScenario();
  s.derate.flatLate = 1.11;
  s.derate.flatEarly = 0.89;
  s.derate.sigmaCount = 2.5;
  s.clockUncertaintySetup = 37.0;
  s.clockUncertaintyHold = 7.4;
  s.extraSetupMargin = 12.0;
  s.extraHoldMargin = 3.0;
  s.tightenSigma = 2.75;
  s.inputSlew = 55.0;
  const auto f = pruneFeatures(s);
  EXPECT_EQ(f[0], s.vdd());
  EXPECT_EQ(f[1], s.temp());
  EXPECT_GT(f[2], 0.0);  // device-model delay score
  EXPECT_EQ(f[3], static_cast<double>(s.beol));
  EXPECT_EQ(f[4], static_cast<double>(s.derate.mode));
  EXPECT_EQ(f[5], 1.11);
  EXPECT_EQ(f[6], 0.89);
  EXPECT_EQ(f[7], 2.5);
  EXPECT_EQ(f[8], 37.0);
  EXPECT_EQ(f[9], 7.4);
  EXPECT_EQ(f[10], 12.0);
  EXPECT_EQ(f[11], 3.0);
  EXPECT_EQ(f[12], 2.75);
  EXPECT_EQ(f[13], 55.0);
}

// --- dominance relation -----------------------------------------------------

TEST(PruneDominance, ReflexiveAndMonotoneOnMarginKnobs) {
  const Scenario a = baseScenario();
  EXPECT_TRUE(dominatesForBound(a, a));

  Scenario harsher = a;
  harsher.derate.flatLate = a.derate.flatLate + 0.05;
  harsher.derate.flatEarly = a.derate.flatEarly - 0.05;
  harsher.clockUncertaintySetup = a.clockUncertaintySetup + 10.0;
  harsher.extraSetupMargin = a.extraSetupMargin + 20.0;
  EXPECT_TRUE(dominatesForBound(harsher, a));
  EXPECT_FALSE(dominatesForBound(a, harsher));

  // Mixed ordering (harsher on one axis, softer on another): no relation.
  Scenario mixed = a;
  mixed.derate.flatLate = a.derate.flatLate + 0.05;
  mixed.clockUncertaintySetup = a.clockUncertaintySetup - 5.0;
  EXPECT_FALSE(dominatesForBound(mixed, a));
  EXPECT_FALSE(dominatesForBound(a, mixed));
}

TEST(PruneDominance, StructuralMismatchNeverDominates) {
  const Scenario a = baseScenario();
  Scenario b = a;
  b.derate.flatLate = a.derate.flatLate + 0.10;  // harsher on margins...
  b.beol = BeolCorner::kCworst;                  // ...different wires
  EXPECT_FALSE(dominatesForBound(b, a));

  Scenario c = a;
  c.derate.flatLate = a.derate.flatLate + 0.10;
  c.derate.mode = DerateMode::kAocv;  // different modeling style
  EXPECT_FALSE(dominatesForBound(c, a));

  Scenario d = a;
  d.derate.flatLate = a.derate.flatLate + 0.10;
  d.inputSlew = a.inputSlew + 1.0;  // different boundary condition
  EXPECT_FALSE(dominatesForBound(d, a));
}

// --- ladder generator -------------------------------------------------------

TEST(PruneLadder, GridSizeNamesAndPairing) {
  const OcvLadderSpec spec = smallSpec();
  const std::vector<Scenario> bases{baseScenario()};
  const std::vector<Scenario> ladder = deriveOcvLadder(bases, spec);
  ASSERT_EQ(ladder.size(), 3u * 3u * 3u * 1u);

  std::set<std::string> names;
  for (const Scenario& sc : ladder) {
    names.insert(sc.name);
    EXPECT_EQ(sc.clockUncertaintyHold, sc.clockUncertaintySetup / 5.0);
    EXPECT_EQ(sc.lib.get(), bases[0].lib.get());
  }
  EXPECT_EQ(names.size(), ladder.size()) << "derived names must be unique";
  EXPECT_EQ(ladder.front().name, "func_tt@L0U0M0S0");
  // Late/early factors are paired by index, never cross-combined.
  for (const Scenario& sc : ladder) {
    const auto itL = std::find(spec.lateFactors.begin(),
                               spec.lateFactors.end(), sc.derate.flatLate);
    ASSERT_NE(itL, spec.lateFactors.end());
    const std::size_t l =
        static_cast<std::size_t>(itL - spec.lateFactors.begin());
    EXPECT_EQ(sc.derate.flatEarly, spec.earlyFactors[l]);
  }
  // The full ladder of one base has exactly one dominance-maximal corner:
  // the harshest grid point on every axis.
  int maximal = 0;
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < ladder.size() && !dominated; ++j)
      if (i != j && dominatesForBound(ladder[j], ladder[i]) &&
          !dominatesForBound(ladder[i], ladder[j]))
        dominated = true;
    if (!dominated) ++maximal;
  }
  EXPECT_EQ(maximal, 1);
}

// --- active-learning loop over the synthetic truth --------------------------

TEST(PruneLoop, ClosesTheLadderWithinBudgetAndZeroOptimism) {
  const std::vector<Scenario> ladder =
      deriveOcvLadder({baseScenario()}, smallSpec());
  RecordingRunner rec{&ladder, {}};
  PruneOptions opt;
  opt.seedRuns = 6;
  opt.batchSize = 4;
  opt.maxExactRuns = 12;
  const PrunedMcmmResult pruned = runPruned(ladder, opt, rec.fn());

  EXPECT_LE(pruned.exactRuns, opt.maxExactRuns);
  EXPECT_EQ(pruned.certificates.size(),
            ladder.size() - static_cast<std::size_t>(pruned.exactRuns));
  EXPECT_GE(pruned.certificates.size(), 1u);
  ASSERT_EQ(pruned.result.scenarios.size(), ladder.size());
  EXPECT_EQ(pruned.quarantinedExact, 0);
  EXPECT_TRUE(pruned.predictor.valid);

  // Every batch the loop dispatched was ascending and duplicate-free.
  for (const auto& batch : rec.batches) {
    ASSERT_FALSE(batch.empty());
    for (std::size_t k = 1; k < batch.size(); ++k)
      EXPECT_LT(batch[k - 1], batch[k]);
  }

  // Soundness against the closed-form truth: every certificate's bound is
  // <= the scenario's true WNS (pessimistic-or-equal, never optimistic),
  // and the bound is exactly the evidence run's WNS.
  std::int32_t prev = -1;
  for (const PruneCertificate& c : pruned.certificates) {
    SCOPED_TRACE("certificate for " + c.scenarioName);
    EXPECT_GT(c.scenario, prev) << "certificates must be in input order";
    prev = c.scenario;
    const Scenario& sc = ladder[static_cast<std::size_t>(c.scenario)];
    EXPECT_LE(c.boundSetupWns, trueSetupWns(sc));
    EXPECT_LE(c.boundHoldWns, trueHoldWns(sc));
    ASSERT_GE(c.evidenceSetup, 0);
    ASSERT_GE(c.evidenceHold, 0);
    const Scenario& evS = ladder[static_cast<std::size_t>(c.evidenceSetup)];
    const Scenario& evH = ladder[static_cast<std::size_t>(c.evidenceHold)];
    EXPECT_TRUE(dominatesForBound(evS, sc));
    EXPECT_TRUE(dominatesForBound(evH, sc));
    EXPECT_EQ(c.boundSetupWns, trueSetupWns(evS));
    EXPECT_EQ(c.boundHoldWns, trueHoldWns(evH));
    EXPECT_EQ(c.evidenceSetupName, evS.name);
    EXPECT_EQ(c.evidenceHoldName, evH.name);
    // The merged slot carries the certificate bounds.
    const ScenarioResult& slot =
        pruned.result.scenarios[static_cast<std::size_t>(c.scenario)];
    EXPECT_TRUE(slot.pruned);
    EXPECT_EQ(slot.setupWns, c.boundSetupWns);
    EXPECT_EQ(slot.holdWns, c.boundHoldWns);
    EXPECT_TRUE(slot.endpoints.empty());
  }

  // Unpruned slots hold the exact synthetic result verbatim.
  for (const ScenarioResult& slot : pruned.result.scenarios)
    if (!slot.pruned) {
      const auto it = std::find_if(
          ladder.begin(), ladder.end(),
          [&](const Scenario& s) { return s.name == slot.scenario; });
      ASSERT_NE(it, ladder.end());
      EXPECT_EQ(slot.setupWns, trueSetupWns(*it));
      EXPECT_EQ(slot.holdWns, trueHoldWns(*it));
    }
}

TEST(PruneLoop, DecisionsAreDeterministicAcrossRepeats) {
  const std::vector<Scenario> ladder =
      deriveOcvLadder({baseScenario()}, smallSpec());
  PruneOptions opt;
  opt.seedRuns = 6;
  opt.batchSize = 4;
  opt.maxExactRuns = 12;
  RecordingRunner a{&ladder, {}}, b{&ladder, {}};
  const PrunedMcmmResult ra = runPruned(ladder, opt, a.fn());
  const PrunedMcmmResult rb = runPruned(ladder, opt, b.fn());
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(ra.exactRuns, rb.exactRuns);
  EXPECT_EQ(ra.rounds, rb.rounds);
  EXPECT_EQ(ra.predictor.trainingScenarios, rb.predictor.trainingScenarios);
  ASSERT_EQ(ra.certificates.size(), rb.certificates.size());
  for (std::size_t i = 0; i < ra.certificates.size(); ++i)
    testutil::expectCertIdentical(ra.certificates[i], rb.certificates[i]);
  testutil::expectIdentical(ra.result, rb.result, "repeat");
}

TEST(PruneLoop, MaxPrunedFloorForcesExtraExactRuns) {
  const std::vector<Scenario> ladder =
      deriveOcvLadder({baseScenario()}, smallSpec());
  RecordingRunner rec{&ladder, {}};
  PruneOptions opt;
  opt.seedRuns = 6;
  opt.batchSize = 4;
  opt.maxExactRuns = 12;
  opt.maxPruned = 3;
  const PrunedMcmmResult pruned = runPruned(ladder, opt, rec.fn());
  EXPECT_LE(pruned.certificates.size(), 3u);
  // The floor overrides the exact-run budget.
  EXPECT_GE(pruned.exactRuns, static_cast<int>(ladder.size()) - 3);
}

TEST(PruneLoop, MandatoryEvidenceOverridesTheBudget) {
  // A budget too small even for the seed: the dominance-maximal corner and
  // evidence-less corners still get exact runs, because a corner with no
  // dominating exact run can never be soundly pruned.
  const std::vector<Scenario> ladder =
      deriveOcvLadder({baseScenario()}, smallSpec());
  RecordingRunner rec{&ladder, {}};
  PruneOptions opt;
  opt.seedRuns = 1;
  opt.batchSize = 1;
  opt.maxExactRuns = 1;
  const PrunedMcmmResult pruned = runPruned(ladder, opt, rec.fn());
  for (const PruneCertificate& c : pruned.certificates) {
    const Scenario& sc = ladder[static_cast<std::size_t>(c.scenario)];
    EXPECT_TRUE(
        dominatesForBound(ladder[static_cast<std::size_t>(c.evidenceSetup)],
                          sc));
    EXPECT_TRUE(
        dominatesForBound(ladder[static_cast<std::size_t>(c.evidenceHold)],
                          sc));
  }
  EXPECT_EQ(pruned.certificates.size() +
                static_cast<std::size_t>(pruned.exactRuns),
            ladder.size());
}

// --- quarantine poison: synthetic reproduction ------------------------------

/// Two independent dominance groups (A: func_tt, B: func_cw — different
/// BEOL corner, so no cross-group dominance), 2x2 flat/uncertainty grid
/// each. Indices: A = 0..3, B = 4..7, maximal corners A=3 ("@L1U1"),
/// B=7. With seedRuns=2 the seed is exactly the two maximals; poisoning
/// A's maximal makes every decision afterwards exactly computable, so the
/// poison tests can assert the outcome bit-for-bit instead of
/// property-only.
std::vector<Scenario> twoGroupLadder() {
  Scenario a = baseScenario();
  Scenario b = baseScenario();
  b.name = "func_cw";
  b.beol = BeolCorner::kCworst;
  OcvLadderSpec spec;
  spec.lateFactors = {1.03, 1.08};
  spec.earlyFactors = {0.97, 0.92};
  spec.setupUncertainties = {15.0, 40.0};
  spec.extraSetupMargins = {0.0};
  spec.sigmaCounts = {3.0};
  return deriveOcvLadder({a, b}, spec);
}
constexpr std::size_t kPoisonedMaximal = 3;  // func_tt@L1U1M0S0

/// The regression this suite exists for: a quarantined exact run (the
/// farm's conservative -inf marker) must never become another corner's
/// bound evidence or a predictor training point — and corners whose every
/// dominator got poisoned must fall back to exact runs of their own.
TEST(PruneQuarantine, PoisonedRunNeverServesAsEvidenceOrTraining) {
  const std::vector<Scenario> ladder = twoGroupLadder();
  ASSERT_EQ(ladder.size(), 8u);
  ASSERT_EQ(ladder[kPoisonedMaximal].name, "func_tt@L1U1M0S0");

  RecordingRunner rec{&ladder, {}};
  auto inner = rec.fn();
  ExactBatchRunner poisoning = [&](const std::vector<std::size_t>& batch) {
    std::vector<ScenarioResult> out = inner(batch);
    for (std::size_t k = 0; k < batch.size(); ++k)
      if (batch[k] == kPoisonedMaximal) {
        ScenarioResult& r = out[k];
        r.setupWns = -std::numeric_limits<double>::infinity();
        r.holdWns = -std::numeric_limits<double>::infinity();
        Diagnostic d;
        d.severity = Severity::kError;
        d.code = DiagCode::kFarmScenarioQuarantined;
        d.message = "synthetic quarantine";
        r.diagnostics.push_back(std::move(d));
      }
    return out;
  };

  PruneOptions opt;
  opt.seedRuns = 2;
  opt.batchSize = 8;
  opt.maxExactRuns = 6;
  const PrunedMcmmResult pruned = runPruned(ladder, opt, poisoning);

  EXPECT_EQ(pruned.quarantinedExact, 1);
  // Exactly computable outcome: seed = both maximals {3, 7}; round 1 must
  // force A's three remaining corners exact (their only evidence source
  // was quarantined) plus one budget-capped B contender; round 2 finds the
  // budget spent and stops, leaving B corners 5 and 6 pruned on corner 7's
  // evidence.
  EXPECT_EQ(pruned.exactRuns, 6);
  ASSERT_EQ(pruned.certificates.size(), 2u);
  EXPECT_EQ(pruned.certificates[0].scenario, 5);
  EXPECT_EQ(pruned.certificates[1].scenario, 6);
  for (const PruneCertificate& c : pruned.certificates) {
    EXPECT_EQ(c.evidenceSetup, 7);
    EXPECT_EQ(c.evidenceHold, 7);
    // Bounds stay sound and finite against the synthetic truth.
    const Scenario& sc = ladder[static_cast<std::size_t>(c.scenario)];
    EXPECT_LE(c.boundSetupWns, trueSetupWns(sc));
    EXPECT_LE(c.boundHoldWns, trueHoldWns(sc));
    EXPECT_TRUE(std::isfinite(c.boundSetupWns));
    EXPECT_TRUE(std::isfinite(c.boundHoldWns));
  }
  // Not a training point.
  for (std::uint32_t t : pruned.predictor.trainingScenarios)
    EXPECT_NE(static_cast<std::size_t>(t), kPoisonedMaximal);
  // The poisoned slot keeps its conservative marker, annotated.
  const ScenarioResult& slot = pruned.result.scenarios[kPoisonedMaximal];
  EXPECT_FALSE(slot.pruned);
  EXPECT_EQ(slot.setupWns, -std::numeric_limits<double>::infinity());
  bool sawNote = false;
  for (const Diagnostic& d : slot.diagnostics)
    if (d.code == DiagCode::kPruneQuarantinedEvidence) sawNote = true;
  EXPECT_TRUE(sawNote);
  // Every group-A corner lost its only dominator to quarantine and must
  // have been forced exact.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_FALSE(pruned.result.scenarios[i].pruned)
        << ladder[i].name << " lost its only dominator to quarantine";
}

// --- quarantine poison: real farm, real STA ---------------------------------

/// RAII TC_FARM_FAULT setter (same idiom as farm_faultinject_test).
class ScopedFault {
 public:
  explicit ScopedFault(const std::string& spec) {
    setenv("TC_FARM_FAULT", spec.c_str(), 1);
  }
  ~ScopedFault() { unsetenv("TC_FARM_FAULT"); }
};

FarmOptions tolerantFarm() {
  FarmOptions opt;
  opt.workers = 3;
  opt.scenarioTimeoutSec = 120.0;
  opt.heartbeatSec = 0.05;
  opt.heartbeatTimeoutSec = 3.0;
  opt.maxAttempts = 2;
  opt.backoffBaseSec = 0.01;
  return opt;
}

TEST(PruneQuarantine, FarmPoisonedCornerCannotTightenAnotherBound) {
  // End to end over real workers and real STA: every attempt at group A's
  // maximal corner aborts (name filter — the pruner dispatches batches as
  // sub-snapshots with batch-local indices, so TC_FARM_FAULT's scn filter
  // cannot address one corner here), the farm quarantines it, and the
  // pruned pass must absorb that without a single optimistic certificate
  // against the fault-free all-exact oracle.
  LogCapture quiet;
  const std::vector<Scenario> ladder = twoGroupLadder();
  const Netlist nl =
      generateBlock(ladder.front().lib, profileTiny());

  // Fault-free all-exact oracle.
  const McmmResult oracle = runMcmm(nl, ladder, McmmOptions{});

  ScopedFault fault("abort@run:name=func_tt@L1U1");
  PruneOptions popt;
  popt.seedRuns = 2;
  popt.batchSize = 8;
  popt.maxExactRuns = 6;
  FarmStats stats;
  const PrunedMcmmResult pruned =
      runMcmmFarmPruned(nl, ladder, popt, tolerantFarm(), &stats);

  EXPECT_EQ(stats.quarantined, 1);
  EXPECT_EQ(pruned.quarantinedExact, 1);
  ASSERT_EQ(pruned.result.scenarios.size(), ladder.size());

  // Same exactly-computable outcome as the synthetic case: B corners 5
  // and 6 pruned on corner 7's evidence, everything else exact.
  EXPECT_EQ(pruned.exactRuns, 6);
  ASSERT_EQ(pruned.certificates.size(), 2u);
  EXPECT_EQ(pruned.certificates[0].scenario, 5);
  EXPECT_EQ(pruned.certificates[1].scenario, 6);

  EXPECT_FALSE(pruned.result.scenarios[kPoisonedMaximal].pruned);
  EXPECT_EQ(pruned.result.scenarios[kPoisonedMaximal].setupWns,
            -std::numeric_limits<double>::infinity());
  for (std::uint32_t t : pruned.predictor.trainingScenarios)
    EXPECT_NE(static_cast<std::size_t>(t), kPoisonedMaximal);
  for (const PruneCertificate& c : pruned.certificates) {
    SCOPED_TRACE("certificate for " + c.scenarioName);
    EXPECT_NE(static_cast<std::size_t>(c.evidenceSetup), kPoisonedMaximal);
    EXPECT_NE(static_cast<std::size_t>(c.evidenceHold), kPoisonedMaximal);
    const ScenarioResult& truth =
        oracle.scenarios[static_cast<std::size_t>(c.scenario)];
    EXPECT_LE(c.boundSetupWns, truth.setupWns);
    EXPECT_LE(c.boundHoldWns, truth.holdWns);
    EXPECT_TRUE(std::isfinite(c.boundSetupWns));
    EXPECT_TRUE(std::isfinite(c.boundHoldWns));
  }
  // Unpruned, unpoisoned slots are bitwise the oracle's.
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const ScenarioResult& slot = pruned.result.scenarios[i];
    if (slot.pruned || i == kPoisonedMaximal) continue;
    testutil::expectScenarioIdentical(slot, oracle.scenarios[i]);
  }
}

}  // namespace
}  // namespace tc
