#pragma once
/// \file aos_reference.h
/// \brief Pinned pre-refactor AoS propagator: the oracle for the SoA arena.
///
/// This is the engine's forward/backward propagation exactly as it stood
/// before the timing words moved into the level-contiguous SoA arena — one
/// struct per vertex, scalar per-edge delay-calc calls, no gather/batch/
/// scatter. It is deliberately frozen: when the arena or the batched level
/// sweep changes, this file must NOT change with it. soa_equivalence_test
/// compares every arrival/slew/variance/depth/required word bitwise against
/// the engine, and bench_sta_scale races it against the arena sweeps to
/// report an honest refactor speedup.
///
/// Scope: the base engine without MIS overrides (setMisFactors) — neither
/// the equivalence property test nor the scale bench enables them. Shares
/// the engine's DelayCalculator so both sides evaluate identical NLDM
/// tables and parasitics (rc caches are warm by the time this runs, so the
/// sharing does not perturb hit/miss counters differently per side).

#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "sta/engine.h"
#include "sta/graph.h"

namespace tc::aosref {

/// Per-vertex timing words, array-of-structs, indexed [mode][transition]
/// like the pre-arena VertexTiming.
struct Vt {
  double arr[2][2];
  double slew[2][2];
  double var[2][2];
  int depth[2][2];
};

class AosPropagator {
 public:
  /// Binds to an engine that has completed run(): the graph, delay
  /// calculator, scenario and endpoint results are read through its public
  /// API; all propagated state lives here.
  explicit AosPropagator(const StaEngine& eng)
      : eng_(eng),
        g_(eng.graph()),
        dc_(eng.delayCalc()),
        sc_(eng.scenario()),
        nl_(eng.netlist()) {}

  /// Forward arrival sweep: seed sources, then relax every vertex's
  /// in-edges in ascending level order (the scalar pull order).
  void runForward() {
    seedSources();
    for (int li = 0; li < g_.levelCount(); ++li)
      for (VertexId v : g_.level(li))
        for (EdgeId e : g_.inEdges(v)) processEdge(e);
  }

  /// Backward required pull, seeded from the engine's endpoint slacks
  /// (the seed arithmetic uses *this propagator's* arrivals, which the
  /// equivalence test has already pinned bitwise to the engine's).
  void runBackward() {
    req_.assign(static_cast<std::size_t>(g_.vertexCount()),
                {kInf, kInf});
    for (const EndpointTiming& ep : eng_.endpoints()) {
      if (ep.setupSlack == kInf) continue;
      const Vt& t = vt_[static_cast<std::size_t>(ep.vertex)];
      const int wt = ep.setupTrans;
      if (t.arr[0][wt] == kNoTime) continue;
      const double reqTime = t.arr[0][wt] + ep.setupSlack;
      req_[static_cast<std::size_t>(ep.vertex)] = {reqTime, reqTime};
    }
    for (int li = g_.levelCount(); li-- > 0;)
      for (VertexId u : g_.level(li)) pullRequired(u);
  }

  const Vt& at(VertexId v) const {
    return vt_[static_cast<std::size_t>(v)];
  }
  double required(VertexId v, int trans) const {
    return req_[static_cast<std::size_t>(v)][static_cast<std::size_t>(trans)];
  }

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  void seedSources() {
    Vt init;
    for (int m = 0; m < 2; ++m)
      for (int tr = 0; tr < 2; ++tr) {
        init.arr[m][tr] = kNoTime;
        init.slew[m][tr] = 0.0;
        init.var[m][tr] = 0.0;
        init.depth[m][tr] = 0;
      }
    vt_.assign(static_cast<std::size_t>(g_.vertexCount()), init);

    for (const auto& c : nl_.clocks()) {
      Vt& t = vt_[static_cast<std::size_t>(g_.portVertex(c.port))];
      for (int m = 0; m < 2; ++m)
        for (int tr = 0; tr < 2; ++tr) {
          t.arr[m][tr] = c.sourceLatency;
          t.slew[m][tr] = 20.0;
        }
    }
    const Ps inputDelay =
        sc_.inputDelay > 0.0
            ? sc_.inputDelay
            : (nl_.clocks().empty() ? 0.0
                                    : 0.25 * nl_.clocks().front().period);
    for (PortId p = 0; p < nl_.portCount(); ++p) {
      if (sc_.disableDataInputs) break;
      if (!nl_.port(p).isInput) continue;
      if (nl_.port(p).constant) continue;
      bool isClock = false;
      for (const auto& c : nl_.clocks())
        if (c.port == p) isClock = true;
      if (isClock) continue;
      Vt& t = vt_[static_cast<std::size_t>(g_.portVertex(p))];
      for (int m = 0; m < 2; ++m)
        for (int tr = 0; tr < 2; ++tr) {
          t.arr[m][tr] = inputDelay;
          t.slew[m][tr] = sc_.inputSlew;
        }
    }
    const Ps borrowedLate =
        nl_.clocks().empty() ? inputDelay : nl_.clocks().front().period;
    for (const auto& qp : nl_.quarantinedPins()) {
      const VertexId v = g_.inputVertex(qp.inst, qp.pin);
      if (v < 0) continue;
      Vt& t = vt_[static_cast<std::size_t>(v)];
      for (int tr = 0; tr < 2; ++tr) {
        t.arr[0][tr] = borrowedLate;
        t.arr[1][tr] = 0.0;
        t.slew[0][tr] = t.slew[1][tr] = sc_.inputSlew;
      }
    }
  }

  void relax(VertexId to, Mode m, int trans, double arr, double slewIn,
             double var, int depth) {
    if (!std::isfinite(arr) || !std::isfinite(slewIn) || !std::isfinite(var))
      return;
    Vt& t = vt_[static_cast<std::size_t>(to)];
    const int mi = static_cast<int>(m);
    const auto& d = sc_.derate;

    double candKey = arr;
    double curKey = t.arr[mi][trans];
    if (d.mode == DerateMode::kPocv || d.mode == DerateMode::kLvf) {
      const double sc = d.sigmaCount;
      candKey = m == Mode::kLate ? arr + sc * std::sqrt(std::max(var, 0.0))
                                 : arr - sc * std::sqrt(std::max(var, 0.0));
      if (curKey != kNoTime) {
        const double cs = std::sqrt(std::max(t.var[mi][trans], 0.0));
        curKey = m == Mode::kLate ? t.arr[mi][trans] + sc * cs
                                  : t.arr[mi][trans] - sc * cs;
      }
    }

    const bool better =
        curKey == kNoTime ||
        (m == Mode::kLate ? candKey > curKey : candKey < curKey);
    if (better) {
      t.arr[mi][trans] = arr;
      t.var[mi][trans] = var;
      t.depth[mi][trans] = depth;
    }
    double& sl = t.slew[mi][trans];
    if (sl <= 0.0) {
      sl = slewIn;
    } else if (m == Mode::kLate) {
      sl = std::max(sl, slewIn);
    } else {
      sl = std::min(sl, slewIn);
    }
  }

  void processEdge(EdgeId e) {
    const TimingGraph::Edge& ed = g_.edge(e);
    const Vt& from = vt_[static_cast<std::size_t>(ed.from)];
    const auto& d = sc_.derate;
    for (int m = 0; m < 2; ++m) {
      const double f =
          d.mode == DerateMode::kFlatOcv
              ? (m == static_cast<int>(Mode::kLate) ? d.flatLate
                                                    : d.flatEarly)
              : 1.0;
      for (int trIn = 0; trIn < 2; ++trIn) {
        if (from.arr[m][trIn] == kNoTime) continue;
        const double inSlew = from.slew[m][trIn];
        switch (ed.kind) {
          case TimingGraph::EdgeKind::kNetArc: {
            Ps skew = 0.0;
            const TimingGraph::Vertex& tv = g_.vertex(ed.to);
            if (tv.kind == TimingGraph::VertexKind::kCellInput &&
                tv.pin == 1 && nl_.isSequential(tv.inst))
              skew = nl_.instance(tv.inst).usefulSkew;
            const auto w = dc_.wire(ed.net, ed.sinkIndex, inSlew);
            relax(ed.to, static_cast<Mode>(m), trIn,
                  from.arr[m][trIn] + w.delay * f + skew, w.outSlew,
                  from.var[m][trIn], from.depth[m][trIn]);
            break;
          }
          case TimingGraph::EdgeKind::kCellArc: {
            const InstId inst = g_.vertex(ed.from).inst;
            const Cell& cell = dc_.cellOf(inst);
            const TimingArc& arc =
                cell.arcs[static_cast<std::size_t>(ed.arcIndex)];
            int outLo = 0, outHi = 1;
            if (arc.unate == Unateness::kNegative) outLo = outHi = 1 - trIn;
            if (arc.unate == Unateness::kPositive) outLo = outHi = trIn;
            for (int trOut = outLo; trOut <= outHi; ++trOut) {
              const auto r = dc_.cellArc(inst, ed.arcIndex, trOut == 0,
                                         inSlew);
              double sigma = 0.0;
              if (d.mode == DerateMode::kLvf)
                sigma = m == static_cast<int>(Mode::kLate) ? r.sigmaLate
                                                           : r.sigmaEarly;
              else if (d.mode == DerateMode::kPocv)
                sigma = cell.pocvSigmaRatio * r.delay;
              relax(ed.to, static_cast<Mode>(m), trOut,
                    from.arr[m][trIn] + r.delay * f, r.outSlew,
                    from.var[m][trIn] + sigma * sigma,
                    from.depth[m][trIn] + 1);
            }
            break;
          }
          case TimingGraph::EdgeKind::kClockToQ: {
            if (trIn != 0) break;
            const InstId flop = g_.vertex(ed.from).inst;
            const Cell& cell = dc_.cellOf(flop);
            for (int trQ = 0; trQ < 2; ++trQ) {
              const auto r = dc_.clockToQ(flop, trQ == 0, inSlew);
              double sigma = 0.0;
              if (d.mode == DerateMode::kLvf || d.mode == DerateMode::kPocv)
                sigma = (cell.pocvSigmaRatio > 0 ? cell.pocvSigmaRatio
                                                 : 0.03) *
                        r.delay;
              relax(ed.to, static_cast<Mode>(m), trQ,
                    from.arr[m][trIn] + r.delay * f, r.outSlew,
                    from.var[m][trIn] + sigma * sigma,
                    from.depth[m][trIn] + 1);
            }
            break;
          }
        }
      }
    }
  }

  void pullRequired(VertexId u) {
    const auto& d = sc_.derate;
    const double lateF = d.mode == DerateMode::kFlatOcv ? d.flatLate : 1.0;
    const Vt& tu = vt_[static_cast<std::size_t>(u)];
    auto& ru = req_[static_cast<std::size_t>(u)];
    for (EdgeId e : g_.outEdges(u)) {
      const TimingGraph::Edge& ed = g_.edge(e);
      const auto& rv = req_[static_cast<std::size_t>(ed.to)];
      if (rv[0] == kInf && rv[1] == kInf) continue;
      switch (ed.kind) {
        case TimingGraph::EdgeKind::kNetArc: {
          Ps skew = 0.0;
          const TimingGraph::Vertex& tv = g_.vertex(ed.to);
          if (tv.kind == TimingGraph::VertexKind::kCellInput &&
              tv.pin == 1 && nl_.isSequential(tv.inst))
            skew = nl_.instance(tv.inst).usefulSkew;
          for (int tr = 0; tr < 2; ++tr) {
            if (rv[static_cast<std::size_t>(tr)] == kInf ||
                tu.arr[0][tr] == kNoTime)
              continue;
            const auto w = dc_.wire(ed.net, ed.sinkIndex, tu.slew[0][tr]);
            ru[static_cast<std::size_t>(tr)] =
                std::min(ru[static_cast<std::size_t>(tr)],
                         rv[static_cast<std::size_t>(tr)] -
                             w.delay * lateF - skew);
          }
          break;
        }
        case TimingGraph::EdgeKind::kCellArc: {
          const InstId inst = g_.vertex(u).inst;
          const Cell& cell = dc_.cellOf(inst);
          const TimingArc& arc =
              cell.arcs[static_cast<std::size_t>(ed.arcIndex)];
          for (int trIn = 0; trIn < 2; ++trIn) {
            if (tu.arr[0][trIn] == kNoTime) continue;
            int outLo = 0, outHi = 1;
            if (arc.unate == Unateness::kNegative) outLo = outHi = 1 - trIn;
            if (arc.unate == Unateness::kPositive) outLo = outHi = trIn;
            for (int trOut = outLo; trOut <= outHi; ++trOut) {
              if (rv[static_cast<std::size_t>(trOut)] == kInf) continue;
              const auto r = dc_.cellArc(inst, ed.arcIndex, trOut == 0,
                                         tu.slew[0][trIn]);
              ru[static_cast<std::size_t>(trIn)] =
                  std::min(ru[static_cast<std::size_t>(trIn)],
                           rv[static_cast<std::size_t>(trOut)] -
                               r.delay * lateF);
            }
          }
          break;
        }
        case TimingGraph::EdgeKind::kClockToQ: {
          const InstId flop = g_.vertex(u).inst;
          if (tu.arr[0][0] == kNoTime) break;
          for (int trQ = 0; trQ < 2; ++trQ) {
            if (rv[static_cast<std::size_t>(trQ)] == kInf) continue;
            const auto r = dc_.clockToQ(flop, trQ == 0, tu.slew[0][0]);
            ru[0] = std::min(
                ru[0], rv[static_cast<std::size_t>(trQ)] - r.delay * lateF);
          }
          break;
        }
      }
    }
  }

  const StaEngine& eng_;
  const TimingGraph& g_;
  const DelayCalculator& dc_;
  const Scenario& sc_;
  const Netlist& nl_;
  std::vector<Vt> vt_;
  std::vector<std::array<double, 2>> req_;
};

}  // namespace tc::aosref
