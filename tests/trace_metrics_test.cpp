/// \file trace_metrics_test.cpp
/// \brief Observability-layer contracts: trace span nesting and
/// thread-safety, Chrome trace JSON validity, deterministic metric export,
/// and the zero-overhead-when-disabled guarantee (no events, no
/// allocations) that lets the instrumentation stay compiled into every
/// hot path.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

// --- allocation counting ----------------------------------------------------
// Replace global operator new/delete for the whole test binary with a
// malloc-backed pair that counts this thread's allocations. The disabled
// trace path promises "one relaxed atomic load, no allocation"; the counter
// makes that promise testable.
namespace {
thread_local std::uint64_t gThreadAllocs = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++gThreadAllocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tc {
namespace {

// --- minimal JSON validator -------------------------------------------------
// Recursive-descent structural check (objects, arrays, strings with
// escapes, numbers, literals). Schema assertions on top of it use plain
// substring checks; this guarantees chrome://tracing can parse the file.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s)
      : p_(s.data()), end_(s.data() + s.size()) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return p_ == end_;
  }

 private:
  void skipWs() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                         *p_ == '\r'))
      ++p_;
  }
  bool literal(const char* s) {
    const char* q = p_;
    while (*s) {
      if (q >= end_ || *q != *s) return false;
      ++q, ++s;
    }
    p_ = q;
    return true;
  }
  bool string() {
    if (p_ >= end_ || *p_ != '"') return false;
    ++p_;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ >= end_) return false;
      }
      ++p_;
    }
    if (p_ >= end_) return false;
    ++p_;  // closing quote
    return true;
  }
  bool number() {
    const char* start = p_;
    if (p_ < end_ && *p_ == '-') ++p_;
    while (p_ < end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' ||
                         *p_ == 'e' || *p_ == 'E' || *p_ == '+' ||
                         *p_ == '-'))
      ++p_;
    return p_ > start;
  }
  bool value() {
    skipWs();
    if (p_ >= end_) return false;
    switch (*p_) {
      case '{': {
        ++p_;
        skipWs();
        if (p_ < end_ && *p_ == '}') return ++p_, true;
        while (true) {
          skipWs();
          if (!string()) return false;
          skipWs();
          if (p_ >= end_ || *p_ != ':') return false;
          ++p_;
          if (!value()) return false;
          skipWs();
          if (p_ < end_ && *p_ == ',') {
            ++p_;
            continue;
          }
          break;
        }
        if (p_ >= end_ || *p_ != '}') return false;
        ++p_;
        return true;
      }
      case '[': {
        ++p_;
        skipWs();
        if (p_ < end_ && *p_ == ']') return ++p_, true;
        while (true) {
          if (!value()) return false;
          skipWs();
          if (p_ < end_ && *p_ == ',') {
            ++p_;
            continue;
          }
          break;
        }
        if (p_ >= end_ || *p_ != ']') return false;
        ++p_;
        return true;
      }
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  const char* p_;
  const char* end_;
};

int countOccurrences(const std::string& hay, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    traceSetEnabled(false);
    traceClear();
  }
  void TearDown() override {
    traceSetEnabled(false);
    traceClear();
  }
};

#if TC_TRACING_ENABLED

TEST_F(TraceTest, SpanRecordsCompleteEventWithArgs) {
  traceSetEnabled(true);
  {
    TraceSpan outer("cat_outer", "outer");
    outer.arg("width", static_cast<std::int64_t>(7));
    outer.arg("ratio", 0.5);
    outer.arg("mode", "full");
    { TC_SPAN("cat_inner", "inner"); }
  }
  traceInstant("cat_i", "tick", "\"n\":1");
  EXPECT_EQ(traceEventCount(), 3u);

  const std::string json = traceRenderChrome();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"width\":7"), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"full\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_EQ(countOccurrences(json, "\"ph\":\"X\""), 2);
}

TEST_F(TraceTest, NestedSpansCloseInnerBeforeOuterOnOneThread) {
  traceSetEnabled(true);
  {
    TC_SPAN("t", "outer");
    {
      TC_SPAN("t", "mid");
      { TC_SPAN("t", "leaf"); }
    }
  }
  // All three on this thread; rendering sorts by (tid, ts), so the outer
  // span (earliest start) comes first and must enclose the other two.
  const std::string json = traceRenderChrome();
  ASSERT_TRUE(JsonValidator(json).valid()) << json;
  const std::size_t outer = json.find("\"outer\"");
  const std::size_t mid = json.find("\"mid\"");
  const std::size_t leaf = json.find("\"leaf\"");
  ASSERT_NE(outer, std::string::npos);
  ASSERT_NE(mid, std::string::npos);
  ASSERT_NE(leaf, std::string::npos);
  EXPECT_LT(outer, mid);
  EXPECT_LT(mid, leaf);
}

TEST_F(TraceTest, ThreadSafeUnderThreadPool8) {
  traceSetEnabled(true);
  constexpr std::size_t kTasks = 400;
  {
    ThreadPool pool(8);
    pool.parallelFor(
        kTasks,
        [](std::size_t i) {
          TC_SPAN_F(span, "pool", "task_%zu", i);
          span.arg("i", static_cast<std::int64_t>(i));
          if (i % 3 == 0) traceInstant("pool", "mark");
        },
        /*grain=*/1);
  }
  const std::size_t instants = (kTasks + 2) / 3;
  EXPECT_EQ(traceEventCount(), kTasks + instants);
  // 8 workers + the calling thread may each own a buffer; buffers persist
  // past thread exit (shared ownership), never dangle, never multiply.
  EXPECT_GE(traceThreadBufferCount(), 1u);
  EXPECT_LE(traceThreadBufferCount(), 64u);

  const std::string json = traceRenderChrome();
  ASSERT_TRUE(JsonValidator(json).valid());
  EXPECT_EQ(countOccurrences(json, "\"task_"), static_cast<int>(kTasks));
}

TEST_F(TraceTest, ArgAndNameStringsAreEscaped) {
  traceSetEnabled(true);
  {
    TraceSpan span("esc", std::string("quote\"back\\slash\ttab"));
    span.arg("k", "v\"w\\x\n");
  }
  const std::string json = traceRenderChrome();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
}

TEST_F(TraceTest, ExportWritesParseableFile) {
  traceSetEnabled(true);
  { TC_SPAN("io", "roundtrip"); }
  const std::string path =
      ::testing::TempDir() + "/tc_trace_metrics_test_export.json";
  ASSERT_TRUE(traceExportChrome(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_TRUE(JsonValidator(content).valid()) << content;
  EXPECT_NE(content.find("\"roundtrip\""), std::string::npos);
}

TEST_F(TraceTest, DisabledSpansRecordNothingAndNeverAllocate) {
  ASSERT_FALSE(traceEnabled());
  const std::size_t before = traceEventCount();
  const std::uint64_t allocsBefore = gThreadAllocs;
  for (int i = 0; i < 1000; ++i) {
    TC_SPAN("off", "literal_name");
    TC_SPAN_F(span, "off", "formatted_%d", i);
    span.arg("k", static_cast<std::int64_t>(i));
    span.arg("g", 1.5);
    span.arg("s", "value");
  }
  const std::uint64_t allocsAfter = gThreadAllocs;
  EXPECT_EQ(allocsAfter, allocsBefore)
      << "disabled trace spans must not allocate";
  EXPECT_EQ(traceEventCount(), before);
}

TEST_F(TraceTest, ClearDropsEventsButKeepsBuffers) {
  traceSetEnabled(true);
  { TC_SPAN("c", "x"); }
  ASSERT_GE(traceEventCount(), 1u);
  const std::size_t buffers = traceThreadBufferCount();
  traceClear();
  EXPECT_EQ(traceEventCount(), 0u);
  EXPECT_EQ(traceThreadBufferCount(), buffers);
  const std::string json = traceRenderChrome();
  EXPECT_TRUE(JsonValidator(json).valid());
}

#endif  // TC_TRACING_ENABLED

// --- metrics ----------------------------------------------------------------

TEST(MetricsTest, CounterGaugeHistogramBasics) {
  auto& reg = MetricsRegistry::global();
  auto& c = reg.counter("test.basics.counter", "count");
  auto& g = reg.gauge("test.basics.gauge", "ps");
  auto& h = reg.histogram("test.basics.hist", "verts");
  c.reset();
  g.reset();
  h.reset();

  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  g.set(-12.5);
  EXPECT_EQ(g.value(), -12.5);
  for (double v : {1.0, 2.0, 4.0, 1024.0}) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1031.0);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 1024.0);

  // Same name returns the same instance.
  EXPECT_EQ(&reg.counter("test.basics.counter"), &c);
}

TEST(MetricsTest, SnapshotIsSortedByName) {
  auto& reg = MetricsRegistry::global();
  reg.counter("test.sorted.zzz");
  reg.counter("test.sorted.aaa");
  const auto snaps = reg.snapshot();
  ASSERT_GE(snaps.size(), 2u);
  for (std::size_t i = 1; i < snaps.size(); ++i)
    EXPECT_LT(snaps[i - 1].name, snaps[i].name);
}

TEST(MetricsTest, ExportIsDeterministicAcrossIdenticalRuns) {
  auto& reg = MetricsRegistry::global();
  auto workload = [&reg] {
    reg.resetAll();
    auto& hits = reg.counter("test.det.hits", "count");
    auto& depth = reg.histogram("test.det.depth", "levels");
    reg.gauge("test.det.wns", "ps").set(-17.25);
    for (int i = 0; i < 100; ++i) {
      hits.add(static_cast<std::uint64_t>(i % 3));
      depth.observe(static_cast<double>(i % 17));
    }
    return reg.exportText();
  };
  const std::string first = workload();
  const std::string second = workload();
  EXPECT_EQ(first, second) << "identical work must export byte-identically";
  EXPECT_NE(first.find("test.det.hits"), std::string::npos);

  const std::string json = reg.exportJson();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
}

TEST(MetricsTest, CountersAreExactUnderConcurrentAdds) {
  auto& c = MetricsRegistry::global().counter("test.conc.adds", "count");
  auto& h = MetricsRegistry::global().histogram("test.conc.hist");
  c.reset();
  h.reset();
  constexpr std::size_t kTasks = 800;
  {
    ThreadPool pool(8);
    pool.parallelFor(
        kTasks,
        [&](std::size_t i) {
          c.add(i % 5);
          h.observe(static_cast<double>(i % 64));
        },
        /*grain=*/1);
  }
  std::uint64_t expected = 0;
  double expectedSum = 0.0;
  for (std::size_t i = 0; i < kTasks; ++i) {
    expected += i % 5;
    expectedSum += static_cast<double>(i % 64);
  }
  EXPECT_EQ(c.value(), expected);
  EXPECT_EQ(h.count(), kTasks);
  EXPECT_EQ(h.sum(), expectedSum);
  EXPECT_EQ(h.max(), 63.0);
}

TEST(MetricsTest, CountersCountIdenticallyWithTracingOnAndOff) {
  // Counters are always-on; flipping tracing must not change what they
  // count (the observability layers are independent).
  auto& c = MetricsRegistry::global().counter("test.indep.counter");
  auto run = [&c](bool tracing) {
    traceSetEnabled(tracing);
    c.reset();
    for (int i = 0; i < 500; ++i) {
      TC_SPAN("indep", "work");
      c.add();
    }
    traceSetEnabled(false);
    traceClear();
    return c.value();
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace tc
