/// \file farm_test.cpp
/// \brief Scenario-farm building blocks: the frame protocol (split feeds,
/// corruption classes), the ScenarioResult codec (bitwise round trip), the
/// first-accepted-wins merger, and one end-to-end farm pass against the
/// in-process reference.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "liberty/builder.h"
#include "network/netgen.h"
#include "signoff/farm.h"
#include "util/log.h"

namespace tc {
namespace {

using farmproto::FrameParser;
using farmproto::FrameType;

ScenarioResult sampleResult() {
  ScenarioResult r;
  r.scenario = "func_ssg_cw";
  r.setupWns = -123.456789;
  r.holdWns = 7.0;
  r.setupTns = -4567.25;
  r.holdTns = 0.0;
  r.setupViolations = 12;
  r.holdViolations = 1;
  r.drvViolations = 3;
  r.nanQuarantined = 2;
  EndpointTiming e;
  e.vertex = 42;
  e.flop = 7;
  e.setupSlack = -1.5;
  e.holdSlack = std::numeric_limits<double>::infinity();
  e.setupTrans = 1;
  e.dataLate = 812.0625;
  e.cpprSetup = 13.5;
  r.endpoints.push_back(e);
  e.vertex = 43;
  e.holdSlack = 0.1 + 0.2;  // a value with a messy mantissa
  r.endpoints.push_back(e);
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.code = DiagCode::kPbaRetraceWorseThanGba;
  d.message = "retrace gap 0.25 ps";
  d.entity = "ep/ff_12";
  d.line = -1;
  r.diagnostics.push_back(d);
  PbaResult p;
  p.endpoint = 42;
  p.flop = 7;
  p.gbaSlack = -1.5;
  p.pbaSlack = -0.75;
  p.exactArrival = 900.125;
  p.cert.complete = true;
  p.cert.pathsEvaluated = 17;
  p.cert.pathsPruned = 123456789012345LL;
  r.pba.push_back(p);
  r.pbaSetupWns = -0.75;
  return r;
}

TEST(FarmProto, ScenarioResultCodecRoundTripsBitwise) {
  const ScenarioResult r = sampleResult();
  const std::string payload = farmproto::encodeScenarioResult(r);
  auto decoded = farmproto::decodeScenarioResult(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().str();
  // Bitwise identity via re-encoding: every field participates.
  EXPECT_EQ(farmproto::encodeScenarioResult(decoded.value()), payload);
  EXPECT_EQ(decoded->scenario, r.scenario);
  EXPECT_EQ(decoded->setupWns, r.setupWns);
  EXPECT_EQ(decoded->endpoints.size(), r.endpoints.size());
  EXPECT_EQ(decoded->endpoints[1].holdSlack, r.endpoints[1].holdSlack);
  EXPECT_EQ(decoded->diagnostics[0].message, r.diagnostics[0].message);
  EXPECT_EQ(decoded->pba[0].cert.pathsPruned, r.pba[0].cert.pathsPruned);
}

TEST(FarmProto, DecodeRejectsDamage) {
  const std::string payload =
      farmproto::encodeScenarioResult(sampleResult());
  for (std::size_t cut : {payload.size() - 1, payload.size() / 2,
                          std::size_t{3}}) {
    auto r = farmproto::decodeScenarioResult(payload.substr(0, cut));
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), DiagCode::kFarmFrameCorrupt);
  }
  auto padded = farmproto::decodeScenarioResult(payload + "x");
  EXPECT_FALSE(padded.ok());
  EXPECT_EQ(padded.status().code(), DiagCode::kFarmFrameCorrupt);
}

TEST(FarmProto, FrameParserReassemblesByteByByte) {
  const std::string payload =
      farmproto::encodeScenarioResult(sampleResult());
  const std::string stream =
      farmproto::encodeFrame(FrameType::kHeartbeat, "") +
      farmproto::encodeFrame(FrameType::kResult, payload);
  FrameParser parser;
  std::vector<std::pair<FrameType, std::string>> frames;
  for (char c : stream) {
    parser.feed(&c, 1);
    for (;;) {
      FrameType type;
      std::string body, err;
      const FrameParser::Outcome out = parser.next(&type, &body, &err);
      if (out != FrameParser::Outcome::kFrame) {
        ASSERT_EQ(out, FrameParser::Outcome::kNeedMore) << err;
        break;
      }
      frames.emplace_back(type, std::move(body));
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].first, FrameType::kHeartbeat);
  EXPECT_TRUE(frames[0].second.empty());
  EXPECT_EQ(frames[1].first, FrameType::kResult);
  EXPECT_EQ(frames[1].second, payload);
}

TEST(FarmProto, FrameParserFlagsCorruption) {
  const std::string good = farmproto::encodeFrame(FrameType::kResult, "hi");
  auto expectCorrupt = [](std::string bytes) {
    FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    FrameType type;
    std::string body, err;
    EXPECT_EQ(parser.next(&type, &body, &err),
              FrameParser::Outcome::kCorrupt)
        << err;
  };
  std::string badMagic = good;
  badMagic[0] ^= 0x01;
  expectCorrupt(badMagic);
  std::string badType = good;
  badType[4] ^= 0x40;
  expectCorrupt(badType);
  std::string badLen = good;
  badLen[11] ^= 0x7F;  // length explodes past the plausibility cap
  expectCorrupt(badLen);
  std::string badPayload = good;
  badPayload[12] ^= 0x01;
  expectCorrupt(badPayload);
  std::string badCrc = good;
  badCrc[good.size() - 1] ^= 0x01;
  expectCorrupt(badCrc);
}

TEST(FarmMerger, FirstAcceptedWinsAndMergesInInputOrder) {
  McmmMerger merger(3);
  auto mk = [](const std::string& name, double wns,
               const std::string& msg) {
    ScenarioResult r;
    r.scenario = name;
    r.setupWns = wns;
    Diagnostic d;
    d.severity = Severity::kNote;
    d.code = DiagCode::kOk;
    d.message = msg;
    d.entity = "ep";
    r.diagnostics.push_back(d);
    return r;
  };
  // Arrival order 2, 0, 1 — plus a duplicate and a late duplicate of 0.
  EXPECT_TRUE(merger.accept(2, mk("c", -3.0, "worst")));
  EXPECT_TRUE(merger.accept(0, mk("a", -1.0, "first")));
  EXPECT_FALSE(merger.accept(0, mk("a", -99.0, "imposter")));
  EXPECT_TRUE(merger.accept(1, mk("b", -2.0, "middle")));
  EXPECT_FALSE(merger.accept(1, mk("b", -50.0, "straggler copy")));
  EXPECT_FALSE(merger.accept(9, mk("zz", 0.0, "out of range")));
  EXPECT_EQ(merger.duplicateCount(), 2);
  EXPECT_TRUE(merger.missing().empty());

  const McmmResult result = merger.finish();
  ASSERT_EQ(result.scenarios.size(), 3u);
  EXPECT_EQ(result.scenarios[0].setupWns, -1.0);  // imposter rejected
  EXPECT_EQ(result.scenarios[1].setupWns, -2.0);
  EXPECT_EQ(result.scenarios[2].setupWns, -3.0);
  ASSERT_EQ(result.merged.size(), 3u);
  EXPECT_EQ(result.merged[0].entity, "a/ep");
  EXPECT_EQ(result.merged[0].message, "first");
  EXPECT_EQ(result.merged[1].entity, "b/ep");
  EXPECT_EQ(result.merged[2].entity, "c/ep");
}

TEST(FarmMerger, MissingReportsUnfilledSlots) {
  McmmMerger merger(4);
  ScenarioResult r;
  r.scenario = "x";
  merger.accept(1, r);
  merger.accept(3, r);
  const std::vector<std::size_t> missing = merger.missing();
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing[0], 0u);
  EXPECT_EQ(missing[1], 2u);
}

TEST(Farm, MissingWorkerQuarantinesEveryScenario) {
  LogCapture quiet;
  auto lib = characterizedLibrary(
      LibraryPvt{ProcessCorner::kTT, 0.9, 25.0}, /*quick=*/true);
  Scenario sc;
  sc.name = "func_tt";
  sc.lib = lib;
  const Netlist nl = generateBlock(lib, profileTiny());

  FarmOptions opt;
  opt.workerPath = "/nonexistent/goalposts_worker";
  DiagnosticSink sink;
  opt.sink = &sink;
  FarmStats stats;
  const McmmResult result = runMcmmFarm(nl, {sc}, opt, &stats);
  EXPECT_EQ(stats.quarantined, 1);
  ASSERT_EQ(result.scenarios.size(), 1u);
  EXPECT_EQ(result.scenarios[0].setupWns,
            -std::numeric_limits<double>::infinity());
  ASSERT_EQ(result.merged.size(), 1u);
  EXPECT_EQ(result.merged[0].code, DiagCode::kFarmScenarioQuarantined);
  EXPECT_GE(sink.count(DiagCode::kFarmWorkerMissing), 1);
}

TEST(Farm, EndToEndMatchesInProcessRunner) {
  LogCapture quiet;
  auto libAt = [](ProcessCorner pc, Volt v, Celsius t) {
    return characterizedLibrary(LibraryPvt{pc, v, t}, /*quick=*/true);
  };
  std::vector<Scenario> scenarios;
  {
    Scenario s;
    s.name = "func_tt";
    s.lib = libAt(ProcessCorner::kTT, 0.9, 25.0);
    scenarios.push_back(s);
  }
  {
    Scenario s;
    s.name = "func_ffg_cb";
    s.lib = libAt(ProcessCorner::kFFG, 0.99, -40.0);
    s.beol = BeolCorner::kCbest;
    scenarios.push_back(s);
  }
  const Netlist nl = generateBlock(scenarios.front().lib, profileTiny());

  McmmRunner runner(nl, scenarios);
  const McmmResult ref = runner.run(McmmOptions{});

  FarmOptions opt;
  opt.workers = 2;
  FarmStats stats;
  const McmmResult farm = runMcmmFarm(nl, scenarios, opt, &stats);
  EXPECT_EQ(stats.quarantined, 0);
  EXPECT_EQ(stats.crashes, 0);

  ASSERT_EQ(farm.scenarios.size(), ref.scenarios.size());
  for (std::size_t s = 0; s < ref.scenarios.size(); ++s) {
    EXPECT_EQ(farm.scenarios[s].scenario, ref.scenarios[s].scenario);
    EXPECT_EQ(farm.scenarios[s].setupWns, ref.scenarios[s].setupWns);
    EXPECT_EQ(farm.scenarios[s].holdWns, ref.scenarios[s].holdWns);
    EXPECT_EQ(farm.scenarios[s].setupTns, ref.scenarios[s].setupTns);
    ASSERT_EQ(farm.scenarios[s].endpoints.size(),
              ref.scenarios[s].endpoints.size());
    for (std::size_t e = 0; e < ref.scenarios[s].endpoints.size(); ++e)
      EXPECT_EQ(farm.scenarios[s].endpoints[e].setupSlack,
                ref.scenarios[s].endpoints[e].setupSlack);
  }
  ASSERT_EQ(farm.merged.size(), ref.merged.size());
  for (std::size_t d = 0; d < ref.merged.size(); ++d) {
    EXPECT_EQ(farm.merged[d].message, ref.merged[d].message);
    EXPECT_EQ(farm.merged[d].entity, ref.merged[d].entity);
  }
}

}  // namespace
}  // namespace tc
