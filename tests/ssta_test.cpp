#include <gtest/gtest.h>

#include <cmath>

#include "liberty/builder.h"
#include "network/netgen.h"
#include "sta/ssta.h"
#include "util/rng.h"
#include "util/stats.h"

namespace tc {
namespace {

std::shared_ptr<const Library> lib() {
  return characterizedLibrary(LibraryPvt{}, true);
}

TEST(ClarkMax, MatchesMonteCarloForGaussians) {
  // Clark's approximation against sampled max of two independent
  // Gaussians, across separation regimes.
  struct Case {
    double m1, s1, m2, s2;
  };
  for (const Case& c : {Case{0.0, 1.0, 0.0, 1.0},   // identical
                        Case{0.0, 1.0, 3.0, 1.0},   // well separated
                        Case{0.0, 2.0, 1.0, 0.5},   // mixed sigmas
                        Case{5.0, 0.1, 0.0, 3.0}}) {
    const GaussianTime a{c.m1, c.s1 * c.s1};
    const GaussianTime b{c.m2, c.s2 * c.s2};
    const GaussianTime m = clarkMax(a, b);
    Rng rng(11);
    RunningStats s;
    for (int i = 0; i < 200000; ++i)
      s.add(std::max(rng.normal(c.m1, c.s1), rng.normal(c.m2, c.s2)));
    EXPECT_NEAR(m.mean, s.mean(), 0.02 + 0.01 * std::abs(s.mean()))
        << c.m1 << "," << c.m2;
    EXPECT_NEAR(m.sigma(), s.stddev(), 0.05 * s.stddev() + 0.02);
  }
}

TEST(ClarkMax, DegenerateZeroVariance) {
  const GaussianTime a{10.0, 0.0};
  const GaussianTime b{7.0, 0.0};
  const GaussianTime m = clarkMax(a, b);
  EXPECT_DOUBLE_EQ(m.mean, 10.0);
  EXPECT_DOUBLE_EQ(m.var, 0.0);
}

TEST(Ssta, EndpointsMatchDeterministicStructure) {
  Netlist nl = generateBlock(lib(), profileTiny());
  Scenario sc;
  sc.lib = lib();
  sc.derate.mode = DerateMode::kLvf;
  StaEngine eng(nl, sc);
  eng.run();
  SstaAnalyzer ssta(eng);
  const auto eps = ssta.run();
  EXPECT_FALSE(eps.empty());
  // Sorted worst-first; sigmas positive on multi-stage paths.
  for (std::size_t i = 1; i < eps.size(); ++i)
    EXPECT_LE(eps[i - 1].slack3Sigma, eps[i].slack3Sigma);
  int withSigma = 0;
  for (const auto& se : eps) {
    EXPECT_GE(se.slack.var, 0.0);
    EXPECT_GE(se.yield, 0.0);
    EXPECT_LE(se.yield, 1.0);
    if (se.slack.sigma() > 0.1) ++withSigma;
  }
  EXPECT_GT(withSigma, 0);
}

TEST(Ssta, TracksLvfWithinSmallDelta) {
  // The footnote-13 claim: block-based SSTA's 3-sigma WNS is close to the
  // LVF-derated GBA WNS (both model the same local variation).
  Netlist nl = generateBlock(lib(), profileTiny());
  Scenario sc;
  sc.lib = lib();
  sc.derate.mode = DerateMode::kLvf;
  StaEngine eng(nl, sc);
  eng.run();
  SstaAnalyzer ssta(eng);
  ssta.run();
  const Ps lvf = eng.wns(Check::kSetup);
  const Ps stat = ssta.wns3Sigma();
  EXPECT_NEAR(stat, lvf, 0.05 * std::abs(lvf) + 5.0);
  // Clark merging can only tighten (raise) the statistical estimate
  // relative to RSS-on-the-worst-path at the same sigmas.
  EXPECT_GE(stat, lvf - 1.0);
}

TEST(Ssta, MeanMatchesUnderatedEngineWhenSigmasIgnored) {
  // With the mean component only, SSTA's slack mean should equal the
  // no-derate deterministic slack.
  Netlist nl = generatePipeline(lib(), 1, 5);
  Scenario sc;
  sc.lib = lib();
  sc.derate.mode = DerateMode::kLvf;
  StaEngine eng(nl, sc);
  eng.run();
  SstaAnalyzer ssta(eng);
  const auto eps = ssta.run();
  Scenario noDerate = sc;
  noDerate.derate.mode = DerateMode::kNone;
  StaEngine plain(nl, noDerate);
  plain.run();
  for (const auto& se : eps) {
    if (se.flop < 0) continue;
    for (const auto& ep : plain.endpoints()) {
      if (ep.vertex != se.vertex) continue;
      // Close agreement: the residual ~2ps is the statistical max over
      // the endpoint's rise/fall transitions (Clark mean exceeds the
      // deterministic max when operands are near-equal) plus the LVF
      // engine's sigma-bearing CPPR credit.
      EXPECT_NEAR(se.slack.mean, ep.setupSlack, 4.0);
    }
  }
}

}  // namespace
}  // namespace tc
