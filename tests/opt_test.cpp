#include <gtest/gtest.h>

#include "liberty/builder.h"
#include "network/netgen.h"
#include "opt/closure.h"
#include "opt/transforms.h"
#include "power/power.h"
#include "place/placement.h"

namespace tc {
namespace {

std::shared_ptr<const Library> lib() {
  return characterizedLibrary(LibraryPvt{}, true);
}

/// A deliberately failing design: tight clock on a tiny block.
Netlist failingBlock(Ps period = 420.0) {
  BlockProfile p = profileTiny();
  p.clockPeriod = period;
  auto nl = generateBlock(lib(), p);
  return nl;
}

Scenario baseScenario() {
  Scenario sc;
  sc.lib = lib();
  return sc;
}

TEST(Transforms, VtSwapImprovesWns) {
  Netlist nl = failingBlock();
  Scenario sc = baseScenario();
  StaEngine eng(nl, sc);
  eng.run();
  const Ps before = eng.wns(Check::kSetup);
  ASSERT_LT(before, 0.0) << "test needs a failing design";
  RepairConfig cfg;
  cfg.maxEdits = 500;
  const int edits = vtSwapFix(nl, eng, cfg);
  EXPECT_GT(edits, 0);
  StaEngine eng2(nl, sc);
  eng2.run();
  EXPECT_GT(eng2.wns(Check::kSetup), before);
}

TEST(Transforms, VtSwapRaisesLeakage) {
  Netlist nl = failingBlock();
  Scenario sc = baseScenario();
  StaEngine eng(nl, sc);
  eng.run();
  const MicroWatt leakBefore = analyzePower(nl).leakage;
  RepairConfig cfg;
  vtSwapFix(nl, eng, cfg);
  EXPECT_GT(analyzePower(nl).leakage, leakBefore);
}

TEST(Transforms, SizingImprovesWnsAndGrowsArea) {
  Netlist nl = failingBlock();
  Scenario sc = baseScenario();
  StaEngine eng(nl, sc);
  eng.run();
  const Ps before = eng.wns(Check::kSetup);
  const Um2 areaBefore = analyzePower(nl).area;
  RepairConfig cfg;
  cfg.maxEdits = 500;
  const int edits = gateSizingFix(nl, eng, cfg);
  EXPECT_GT(edits, 0);
  StaEngine eng2(nl, sc);
  eng2.run();
  EXPECT_GT(eng2.wns(Check::kSetup), before);
  EXPECT_GT(analyzePower(nl).area, areaBefore);
}

TEST(Transforms, SizingRespectsPlacementLegality) {
  Netlist nl = failingBlock();
  const Floorplan fp = Floorplan::forDesign(nl, 0.6);
  placeDesign(nl, fp);
  Scenario sc = baseScenario();
  StaEngine eng(nl, sc);
  eng.run();
  RowOccupancy occ(nl, fp);
  RepairConfig cfg;
  cfg.maxEdits = 300;
  PlacementCtx place{&occ, &fp};
  gateSizingFix(nl, eng, cfg, place);
  EXPECT_TRUE(occ.isLegal());
}

TEST(Transforms, BufferingFixesDrv) {
  Netlist nl = failingBlock();
  Scenario sc = baseScenario();
  sc.limits.maxCapacitance = 8.0;  // tight: high-fanout nets violate
  StaEngine eng(nl, sc);
  eng.run();
  const auto before = eng.drvViolations().size();
  ASSERT_GT(before, 0u);
  RepairConfig cfg;
  cfg.maxEdits = 300;
  const int inserted = bufferInsertionFix(nl, eng, cfg);
  EXPECT_GT(inserted, 0);
  EXPECT_NO_THROW(nl.validate());
  StaEngine eng2(nl, sc);
  eng2.run();
  EXPECT_LT(eng2.drvViolations().size(), before);
}

TEST(Transforms, BufferingNeverTouchesClockNets) {
  Netlist nl = failingBlock();
  Scenario sc = baseScenario();
  sc.limits.maxCapacitance = 2.0;  // everything violates, incl. clock nets
  StaEngine eng(nl, sc);
  eng.run();
  const int clockBufsBefore = [&] {
    int n = 0;
    for (InstId i = 0; i < nl.instanceCount(); ++i)
      if (nl.instance(i).isClockTreeBuffer) ++n;
    return n;
  }();
  RepairConfig cfg;
  cfg.maxEdits = 1000;
  bufferInsertionFix(nl, eng, cfg);
  // Clock tree topology untouched: every flop CK still driven by the same
  // clock buffers.
  int clockBufsAfter = 0;
  for (InstId i = 0; i < nl.instanceCount(); ++i)
    if (nl.instance(i).isClockTreeBuffer) ++clockBufsAfter;
  EXPECT_EQ(clockBufsBefore, clockBufsAfter);
  for (InstId i = 0; i < nl.instanceCount(); ++i) {
    if (!nl.isSequential(i)) continue;
    const NetId ck = nl.instance(i).fanin[1];
    ASSERT_GE(ck, 0);
    const Net& net = nl.net(ck);
    EXPECT_TRUE(net.driver >= 0 &&
                nl.instance(net.driver).isClockTreeBuffer);
  }
}

TEST(Transforms, NdrPromotionMarksLongNets) {
  // NDR applies to long wires, so run on a placed design.
  auto L = lib();
  BlockProfile p = profileTiny();
  p.clockPeriod = 400.0;
  Netlist nl = generateBlock(L, p);
  const Floorplan fp = Floorplan::forDesign(nl);
  placeDesign(nl, fp);
  Scenario sc = baseScenario();
  StaEngine eng(nl, sc);
  eng.run();
  RepairConfig cfg;
  cfg.maxEdits = 100;
  const int promoted = ndrPromotionFix(nl, eng, cfg);
  int marked = 0;
  for (NetId n = 0; n < nl.netCount(); ++n)
    if (nl.net(n).ndrClass == 2) ++marked;
  EXPECT_EQ(marked, promoted);
}

TEST(Transforms, UsefulSkewRespectsHeadroom) {
  Netlist nl = failingBlock();
  Scenario sc = baseScenario();
  StaEngine eng(nl, sc);
  eng.run();
  const Ps holdBefore = eng.wns(Check::kHold);
  RepairConfig cfg;
  const int skews = usefulSkewFix(nl, eng, cfg);
  EXPECT_GT(skews, 0);
  StaEngine eng2(nl, sc);
  eng2.run();
  // Hold may degrade but must not be driven negative by skew alone.
  if (holdBefore > 0.0) {
    EXPECT_GT(eng2.wns(Check::kHold), -1.0);
  }
}

TEST(Transforms, LeakageRecoverySavesPowerWithoutNewViolations) {
  BlockProfile p = profileTiny();
  p.clockPeriod = 1500.0;  // relaxed: plenty of positive slack
  Netlist nl = generateBlock(lib(), p);
  // Seed with leaky cells.
  Scenario sc = baseScenario();
  {
    StaEngine eng(nl, sc);
    eng.run();
    RepairConfig cfg;
    cfg.maxEdits = 2000;
    cfg.slackTarget = 1e9;  // swap everything faster
    vtSwapFix(nl, eng, cfg);
  }
  const MicroWatt before = analyzePower(nl).leakage;
  StaEngine eng(nl, sc);
  eng.run();
  const int viosBefore = eng.violationCount(Check::kSetup);
  RepairConfig cfg;
  cfg.maxEdits = 2000;
  double saved = 0.0;
  const int edits = leakageRecovery(nl, eng, cfg, &saved);
  EXPECT_GT(edits, 0);
  EXPECT_GT(saved, 0.0);
  EXPECT_LT(analyzePower(nl).leakage, before);
  StaEngine eng2(nl, sc);
  eng2.run();
  EXPECT_LE(eng2.violationCount(Check::kSetup), viosBefore + 2);
}

TEST(Transforms, HoldFixInsertsDelay) {
  Netlist nl = failingBlock(900.0);
  Scenario sc = baseScenario();
  sc.clockUncertaintyHold = 160.0;  // force hold violations
  StaEngine eng(nl, sc);
  eng.run();
  const int before = eng.violationCount(Check::kHold);
  ASSERT_GT(before, 0);
  RepairConfig cfg;
  cfg.maxEdits = 500;
  const int bufs = holdFix(nl, eng, cfg);
  EXPECT_GT(bufs, 0);
  EXPECT_NO_THROW(nl.validate());
  StaEngine eng2(nl, sc);
  eng2.run();
  EXPECT_LT(eng2.wns(Check::kHold) * -1.0, eng.wns(Check::kHold) * -1.0);
}

// --- closure loop (Fig. 1) --------------------------------------------------------

TEST(Closure, LoopImprovesTimingMonotonically) {
  Netlist nl = failingBlock(450.0);
  Scenario sc = baseScenario();
  ClosureLoop loop(nl, sc);
  ClosureConfig cfg;
  cfg.iterations = 5;
  cfg.stopWhenClean = false;
  const ClosureResult res = loop.run(cfg);
  ASSERT_EQ(res.iterations.size(), 5u);
  // WNS at the end is better than at the start (the Fig. 1 expectation:
  // "top-level timing improves after each iteration").
  EXPECT_GT(res.final.setupWns, res.iterations.front().before.setupWns);
  EXPECT_GT(res.final.setupTns, res.iterations.front().before.setupTns);
  // First iteration applied the [30]-ordered transforms.
  EXPECT_GT(res.iterations.front().vtSwaps, 0);
}

TEST(Closure, StopsEarlyWhenClean) {
  BlockProfile p = profileTiny();
  p.clockPeriod = 2000.0;  // trivially meets timing
  Netlist nl = generateBlock(lib(), p);
  Scenario sc = baseScenario();
  ClosureLoop loop(nl, sc);
  ClosureConfig cfg;
  cfg.iterations = 5;
  const ClosureResult res = loop.run(cfg);
  EXPECT_TRUE(res.closed);
  EXPECT_EQ(res.iterations.size(), 1u);
  EXPECT_EQ(res.iterations[0].vtSwaps, 0);
}

TEST(Closure, DualScenarioFixesHoldToo) {
  Netlist nl = failingBlock(800.0);
  Scenario setup = baseScenario();
  Scenario hold = baseScenario();
  hold.clockUncertaintyHold = 150.0;
  ClosureLoop loop(nl, setup, hold);
  ClosureConfig cfg;
  cfg.iterations = 4;
  const ClosureResult res = loop.run(cfg);
  EXPECT_GT(res.final.holdWns, res.iterations.front().before.holdWns);
  int holdBufs = 0;
  for (const auto& it : res.iterations) holdBufs += it.holdBuffers;
  EXPECT_GT(holdBufs, 0);
}

TEST(Closure, PlacedLoopKeepsLegality) {
  Netlist nl = failingBlock(500.0);
  const Floorplan fp = Floorplan::forDesign(nl, 0.6);
  placeDesign(nl, fp);
  Scenario sc = baseScenario();
  ClosureLoop loop(nl, sc, std::nullopt, fp);
  ClosureConfig cfg;
  cfg.iterations = 3;
  cfg.fixMinIaAfterSwaps = true;
  const ClosureResult res = loop.run(cfg);
  EXPECT_GE(res.iterations.size(), 1u);
  RowOccupancy occ(nl, fp);
  EXPECT_TRUE(occ.isLegal());
}

}  // namespace
}  // namespace tc
