/// \file serve_epoch_test.cpp
/// \brief Snapshot-isolation contract of the serving layer (serve/epoch.h):
///
///  1. The epoch oracle: at EVERY epoch, the published replica's timing is
///     bitwise identical to a fresh batch StaEngine run of "the base
///     netlist with that epoch's op-log prefix applied" — whichever path
///     (incremental replay of a retired replica, or a from-scratch build)
///     produced the replica. This is PR 3's incremental contract re-proven
///     through the serving layer's replica pooling.
///  2. Protocol byte-identity: the served response lines for a pinned
///     epoch are byte-identical to the lines a fresh server at that state
///     produces (epoch label normalized — it counts commits, not state).
///  3. Reader isolation: a session pinned at epoch N gets byte-identical
///     answers forever, while the writer publishes N+1, N+2, ...
///  4. Concurrency: 8 reader sessions hammer queries while a writer lands
///     ECOs; every pinned answer stays byte-stable. (The TSan CI leg runs
///     this same binary to prove the synchronization, not just the
///     answers.)

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mcmm_identical.h"
#include "network/netgen.h"
#include "serve/epoch.h"
#include "serve/server.h"
#include "signoff/snapshot.h"

namespace tc {
namespace {

using serve::EcoOp;
using serve::EpochManager;
using serve::EpochReplica;
using serve::Server;
using serve::ServeOptions;

/// A deterministic ECO schedule over the tiny block: useful-skew nudges,
/// NDR class changes, and Miller overrides (always-valid op kinds).
std::vector<std::vector<EcoOp>> ecoSchedule(const Netlist& nl) {
  std::vector<int> flops;
  for (int i = 0; i < nl.instanceCount() && flops.size() < 6; ++i)
    if (nl.isSequential(i)) flops.push_back(i);
  EXPECT_GE(flops.size(), 3u);
  std::vector<std::vector<EcoOp>> batches;
  auto skew = [](int inst, double ps) {
    EcoOp op;
    op.kind = EcoOp::Kind::kSetUsefulSkew;
    op.target = inst;
    op.dblArg = ps;
    return op;
  };
  auto ndr = [](int net, int cls) {
    EcoOp op;
    op.kind = EcoOp::Kind::kSetNdrClass;
    op.target = net;
    op.intArg = cls;
    return op;
  };
  auto miller = [](int net, double f) {
    EcoOp op;
    op.kind = EcoOp::Kind::kSetMillerOverride;
    op.target = net;
    op.dblArg = f;
    return op;
  };
  batches.push_back({skew(flops[0], 12.0)});
  batches.push_back({ndr(0, 1), miller(1, 1.5)});
  batches.push_back({skew(flops[1], -8.0), skew(flops[2], 20.0)});
  batches.push_back({skew(flops[0], 0.0), ndr(0, 0)});
  return batches;
}

DesignSnapshot tinySnapshot() {
  std::vector<Scenario> scenarios = testutil::scenarioSet();
  Netlist nl = generateBlock(scenarios[0].lib, profileTiny());
  return makeSnapshot(nl, std::move(scenarios), /*includeSpef=*/false);
}

/// Bitwise comparison of a replica's engine against a reference engine.
void expectEngineIdentical(const StaEngine& got, const StaEngine& want,
                           const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(got.wns(Check::kSetup), want.wns(Check::kSetup));
  EXPECT_EQ(got.wns(Check::kHold), want.wns(Check::kHold));
  EXPECT_EQ(got.tns(Check::kSetup), want.tns(Check::kSetup));
  EXPECT_EQ(got.tns(Check::kHold), want.tns(Check::kHold));
  EXPECT_EQ(got.violationCount(Check::kSetup),
            want.violationCount(Check::kSetup));
  EXPECT_EQ(got.violationCount(Check::kHold),
            want.violationCount(Check::kHold));
  ASSERT_EQ(got.endpoints().size(), want.endpoints().size());
  for (std::size_t e = 0; e < got.endpoints().size(); ++e) {
    const EndpointTiming& x = got.endpoints()[e];
    const EndpointTiming& y = want.endpoints()[e];
    SCOPED_TRACE("endpoint " + std::to_string(e));
    EXPECT_EQ(x.vertex, y.vertex);
    EXPECT_EQ(x.setupSlack, y.setupSlack);
    EXPECT_EQ(x.holdSlack, y.holdSlack);
    EXPECT_EQ(x.dataLate, y.dataLate);
    EXPECT_EQ(x.dataEarly, y.dataEarly);
    EXPECT_EQ(x.cpprSetup, y.cpprSetup);
    EXPECT_EQ(x.cpprHold, y.cpprHold);
  }
}

TEST(EpochOracle, EveryEpochMatchesFreshBatchRun) {
  DesignSnapshot snap = tinySnapshot();
  const Netlist base = *snap.netlist;  // keep a pristine copy
  const std::vector<Scenario> scenarios = snap.scenarios;
  const auto batches = ecoSchedule(base);

  EpochManager mgr(std::move(snap), /*pool=*/nullptr);
  std::vector<EcoOp> applied;
  // Hold a pin on some epochs (0 and 2) so the manager exercises BOTH
  // publish paths: reuse-and-replay when a retiree is free, fresh build
  // when pins block reuse.
  std::vector<std::shared_ptr<const EpochReplica>> pinned;
  pinned.push_back(mgr.current());

  for (std::size_t b = 0; b < batches.size(); ++b) {
    auto epoch = mgr.commit(batches[b]);
    ASSERT_TRUE(epoch.ok()) << epoch.status().str();
    EXPECT_EQ(epoch.value(), b + 1);
    applied.insert(applied.end(), batches[b].begin(), batches[b].end());
    if (b == 1) pinned.push_back(mgr.current());

    // Fresh batch oracle: pristine netlist + full prefix, engines built
    // from nothing, serial run().
    auto rep = mgr.current();
    Netlist fresh = base;
    for (const EcoOp& op : applied) {
      switch (op.kind) {
        case EcoOp::Kind::kSwapCell:
          fresh.swapCell(op.target, op.intArg);
          break;
        case EcoOp::Kind::kSetUsefulSkew:
          fresh.setUsefulSkew(op.target, op.dblArg);
          break;
        case EcoOp::Kind::kSetNdrClass:
          fresh.setNdrClass(op.target, op.intArg);
          break;
        case EcoOp::Kind::kSetMillerOverride:
          fresh.setMillerOverride(op.target, op.dblArg);
          break;
      }
    }
    ASSERT_EQ(rep->scenarioCount(), scenarios.size());
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      StaEngine ref(fresh, scenarios[s]);
      ref.run();
      expectEngineIdentical(rep->engine(s), ref,
                            "epoch " + std::to_string(b + 1) + " scenario " +
                                scenarios[s].name);
    }
  }
  const serve::EpochStats st = mgr.stats();
  EXPECT_EQ(st.epoch, batches.size());
  EXPECT_GE(st.replicasReused, 1u) << "pool never exercised the replay path";
  EXPECT_GE(st.replicasBuilt, 2u) << "pins never forced a fresh build";
}

/// Normalize the commit-count label so fresh-server responses (always
/// epoch 0) can be byte-compared against a served epoch k.
std::string normalizeEpoch(const std::string& line) {
  auto parsed = Json::parse(line);
  EXPECT_TRUE(parsed.ok()) << line;
  if (!parsed.ok()) return line;
  if (parsed.value().contains("epoch")) parsed.value().set("epoch", 0);
  return parsed.value().dump();
}

TEST(EpochOracle, ServedBytesMatchFreshServerBytes) {
  DesignSnapshot snap = tinySnapshot();
  const Netlist base = *snap.netlist;
  const std::vector<Scenario> scenarios = snap.scenarios;
  const auto batches = ecoSchedule(base);

  ServeOptions opt;
  Server served(opt);
  ASSERT_TRUE(served.addDesign("d", std::move(snap)).ok());
  Server::Session session;

  std::vector<std::string> queries = {
      R"({"cmd":"slack","design":"d"})",
      R"({"cmd":"endpoints","design":"d","scenario":"func_tt","check":"setup","k":8})",
      R"({"cmd":"endpoints","design":"d","scenario":"func_ssg_cw","check":"hold","k":8})",
      R"({"cmd":"histogram","design":"d","scenario":"func_tt","check":"setup","bins":8})",
      R"({"cmd":"path","design":"d","scenario":"func_tt","endpoint":0,"check":"setup"})",
  };

  std::vector<EcoOp> applied;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    // Commit through the protocol (one-shot eco).
    Json eco = Json::object();
    eco.set("cmd", "eco").set("design", "d");
    Json ops = Json::array();
    for (const EcoOp& op : batches[b]) ops.push(serve::toJson(op));
    eco.set("ops", std::move(ops));
    auto lines = served.processLine(session, eco.dump());
    ASSERT_FALSE(lines.empty());
    auto terminal = Json::parse(lines.back());
    ASSERT_TRUE(terminal.ok());
    ASSERT_TRUE(terminal.value()["ok"].asBool(false)) << lines.back();
    ASSERT_EQ(terminal.value()["status"].asString(), "applied");
    applied.insert(applied.end(), batches[b].begin(), batches[b].end());

    // A fresh server loaded directly at this state answers every query
    // with byte-identical lines (modulo the commit counter).
    Netlist fresh = base;
    for (const EcoOp& op : applied) {
      switch (op.kind) {
        case EcoOp::Kind::kSwapCell:
          fresh.swapCell(op.target, op.intArg);
          break;
        case EcoOp::Kind::kSetUsefulSkew:
          fresh.setUsefulSkew(op.target, op.dblArg);
          break;
        case EcoOp::Kind::kSetNdrClass:
          fresh.setNdrClass(op.target, op.intArg);
          break;
        case EcoOp::Kind::kSetMillerOverride:
          fresh.setMillerOverride(op.target, op.dblArg);
          break;
      }
    }
    Server reference(opt);
    ASSERT_TRUE(reference
                    .addDesign("d", makeSnapshot(fresh, scenarios,
                                                 /*includeSpef=*/false))
                    .ok());
    Server::Session refSession;
    for (const std::string& q : queries) {
      SCOPED_TRACE("epoch " + std::to_string(b + 1) + " query " + q);
      auto servedLines = served.processLine(session, q);
      auto refLines = reference.processLine(refSession, q);
      ASSERT_EQ(servedLines.size(), 1u);
      ASSERT_EQ(refLines.size(), 1u);
      EXPECT_EQ(normalizeEpoch(servedLines[0]), normalizeEpoch(refLines[0]));
    }
  }
}

TEST(EpochIsolation, PinnedReaderIsByteStableAcrossCommits) {
  Server server((ServeOptions()));
  ASSERT_TRUE(server.addDesign("d", tinySnapshot()).ok());
  EpochManager* mgr = server.design("d");
  ASSERT_NE(mgr, nullptr);
  const auto batches = ecoSchedule(mgr->current()->netlist());

  Server::Session reader;
  auto pin = server.processLine(reader, R"({"cmd":"pin","design":"d"})");
  ASSERT_EQ(pin.size(), 1u);

  const std::string query =
      R"({"cmd":"slack","design":"d","scenario":"func_tt"})";
  const auto before = server.processLine(reader, query);
  ASSERT_EQ(before.size(), 1u);

  // Writer publishes new epochs; the pinned session must not notice.
  Server::Session writer;
  for (const auto& batch : batches) {
    Json eco = Json::object();
    eco.set("cmd", "eco").set("design", "d");
    Json ops = Json::array();
    for (const EcoOp& op : batch) ops.push(serve::toJson(op));
    eco.set("ops", std::move(ops));
    auto lines = server.processLine(writer, eco.dump());
    auto terminal = Json::parse(lines.back());
    ASSERT_TRUE(terminal.ok());
    ASSERT_TRUE(terminal.value()["ok"].asBool(false)) << lines.back();

    const auto during = server.processLine(reader, query);
    ASSERT_EQ(during.size(), 1u);
    EXPECT_EQ(during[0], before[0]) << "pinned answer drifted";
  }
  EXPECT_EQ(mgr->stats().epoch, batches.size());

  // Unpinning moves the session to the tip: a *different* epoch label at
  // minimum, and (for this schedule) different timing too.
  server.processLine(reader, R"({"cmd":"unpin","design":"d"})");
  const auto after = server.processLine(reader, query);
  ASSERT_EQ(after.size(), 1u);
  auto tip = Json::parse(after[0]);
  ASSERT_TRUE(tip.ok());
  EXPECT_EQ(tip.value()["epoch"].asInt(), static_cast<int>(batches.size()));
}

TEST(EpochIsolation, EightConcurrentReadersWhileWriterCommits) {
  ServeOptions opt;
  Server server(opt);
  ASSERT_TRUE(server.addDesign("d", tinySnapshot()).ok());
  EpochManager* mgr = server.design("d");
  const auto batches = ecoSchedule(mgr->current()->netlist());

  constexpr int kReaders = 8;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&server, &stop, &failures, r] {
      Server::Session session;
      // Half the readers pin immediately and hold the epoch for life;
      // the other half re-pin every iteration (moving with the writer).
      const bool sticky = (r % 2) == 0;
      server.processLine(session, R"({"cmd":"pin","design":"d"})");
      const std::string queries[3] = {
          R"({"cmd":"slack","design":"d","scenario":"func_tt"})",
          R"({"cmd":"endpoints","design":"d","scenario":"func_tt","check":"setup","k":4})",
          R"({"cmd":"histogram","design":"d","scenario":"func_ssg_cw","check":"setup","bins":6})",
      };
      std::string expected[3];
      for (int q = 0; q < 3; ++q) {
        auto lines = server.processLine(session, queries[q]);
        if (lines.size() != 1) {
          failures.fetch_add(1);
          return;
        }
        expected[q] = lines[0];
      }
      while (!stop.load()) {
        if (!sticky) {
          server.processLine(session, R"({"cmd":"pin","design":"d"})");
          for (int q = 0; q < 3; ++q) {
            auto lines = server.processLine(session, queries[q]);
            if (lines.size() != 1) failures.fetch_add(1);
            else expected[q] = lines[0];
          }
        }
        for (int q = 0; q < 3; ++q) {
          auto lines = server.processLine(session, queries[q]);
          if (lines.size() != 1 || lines[0] != expected[q])
            failures.fetch_add(1);
        }
      }
    });
  }

  // The writer loops the schedule several times (skews/NDR toggle back and
  // forth) so readers see many publish events.
  Server::Session writer;
  for (int round = 0; round < 3; ++round) {
    for (const auto& batch : batches) {
      Json eco = Json::object();
      eco.set("cmd", "eco").set("design", "d");
      Json ops = Json::array();
      for (const EcoOp& op : batch) ops.push(serve::toJson(op));
      eco.set("ops", std::move(ops));
      auto lines = server.processLine(writer, eco.dump());
      auto terminal = Json::parse(lines.back());
      ASSERT_TRUE(terminal.ok());
      EXPECT_TRUE(terminal.value()["ok"].asBool(false)) << lines.back();
    }
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mgr->stats().epoch, 3 * batches.size());
}

TEST(EpochManagerUnit, RejectsInvalidOpsWithoutPublishing) {
  DesignSnapshot snap = tinySnapshot();
  EpochManager mgr(std::move(snap), nullptr);
  auto rep0 = mgr.current();

  std::vector<EcoOp> bad(1);
  bad[0].kind = EcoOp::Kind::kSetUsefulSkew;
  bad[0].target = 1 << 20;  // far out of range
  auto r = mgr.commit(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), DiagCode::kServeTxnRejected);
  EXPECT_EQ(mgr.stats().epoch, 0u);
  EXPECT_EQ(mgr.current()->epoch(), rep0->epoch());

  EXPECT_FALSE(mgr.commit({}).ok()) << "empty transaction must not publish";
}

}  // namespace
}  // namespace tc
