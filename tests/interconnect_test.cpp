#include <gtest/gtest.h>

#include <cmath>

#include "interconnect/extract.h"
#include "interconnect/rctree.h"
#include "interconnect/sadp.h"
#include "interconnect/steiner.h"
#include "interconnect/wire.h"
#include "util/stats.h"
#include "liberty/builder.h"
#include "network/netgen.h"

namespace tc {
namespace {

TEST(RcTree, ElmoreMatchesClosedFormLadder) {
  // Two-segment ladder: R1=1k, C1=2f; R2=3k, C2=4f.
  // Elmore(node2) = R1*(C1+C2) + R2*C2 = 1*(6) + 3*4 = 18 ps.
  RcTree t;
  const int n1 = t.addNode(0, 1.0, 2.0);
  const int n2 = t.addNode(n1, 3.0, 4.0);
  EXPECT_DOUBLE_EQ(t.elmore(n1), 1.0 * 6.0);
  EXPECT_DOUBLE_EQ(t.elmore(n2), 6.0 + 12.0);
  EXPECT_DOUBLE_EQ(t.totalCap(), 6.0);
}

TEST(RcTree, ElmoreBranchesSeeSiblingCap) {
  // Star: root -R1- a(Ca), root -R2- b(Cb). Elmore(a) = R1*Ca only.
  RcTree t;
  const int a = t.addNode(0, 2.0, 5.0);
  const int b = t.addNode(0, 4.0, 1.0);
  EXPECT_DOUBLE_EQ(t.elmore(a), 10.0);
  EXPECT_DOUBLE_EQ(t.elmore(b), 4.0);
}

TEST(RcTree, D2mNeverExceedsElmore) {
  RcTree t;
  int at = 0;
  for (int i = 0; i < 10; ++i) at = t.addNode(at, 0.5, 1.5);
  for (int n = 1; n < t.nodeCount(); ++n) {
    EXPECT_LE(t.d2m(n), t.elmore(n) + 1e-12);
    EXPECT_GT(t.d2m(n), 0.3 * t.elmore(n));  // same order of magnitude
  }
}

TEST(RcTree, EffectiveCapShieldsFarCap) {
  RcTree t;
  t.addCap(0, 2.0);
  int at = 0;
  for (int i = 0; i < 8; ++i) at = t.addNode(at, 5.0, 3.0);
  const Ff total = t.totalCap();
  const Ff ceffFast = t.effectiveCap(5.0);    // fast edge: strong shielding
  const Ff ceffSlow = t.effectiveCap(500.0);  // slow edge: sees everything
  EXPECT_LT(ceffFast, total);
  EXPECT_LT(ceffFast, ceffSlow);
  EXPECT_LE(ceffSlow, total + 1e-12);
  EXPECT_GT(ceffFast, 2.0);  // never less than near cap
}

TEST(RcTree, SlewDegradationGrowsDownstream) {
  RcTree t;
  int at = 0;
  for (int i = 0; i < 6; ++i) at = t.addNode(at, 2.0, 2.0);
  EXPECT_GT(t.degradeSlew(30.0, at), 30.0);
  EXPECT_GT(t.degradeSlew(30.0, at), t.degradeSlew(30.0, 1));
}

TEST(RcTree, BadParentThrows) {
  RcTree t;
  EXPECT_THROW(t.addNode(5, 1.0, 1.0), std::invalid_argument);
}

TEST(Steiner, RouteTreeConnectsAllSinks) {
  const Point drv{0, 0};
  std::vector<Point> sinks{{10, 0}, {10, 10}, {0, 10}, {5, 5}};
  const RouteTree t = buildRouteTree(drv, sinks);
  EXPECT_EQ(t.points.size(), 5u);
  EXPECT_EQ(t.edges.size(), 4u);
  // Spanning tree length >= HPWL/..., and for this square <= sum of
  // individual star distances.
  EXPECT_GE(t.totalLength(), 20.0);
  EXPECT_LE(t.totalLength(), 10.0 + 10.0 + 10.0 + 10.0);
}

TEST(Steiner, HpwlBoundingBox) {
  EXPECT_DOUBLE_EQ(hpwl({0, 0}, {{3, 4}, {-1, 2}}), 4.0 + 4.0);
  EXPECT_DOUBLE_EQ(hpwl({5, 5}, {}), 0.0);
}

TEST(Wire, CornerPolarity) {
  const WireLayer l = BeolStack::forNode(techNode(28)).layer(3);
  EXPECT_GT(l.cgAt(BeolCorner::kCworst), l.cgAt(BeolCorner::kTypical));
  EXPECT_LT(l.cgAt(BeolCorner::kCbest), l.cgAt(BeolCorner::kTypical));
  EXPECT_GT(l.rAt(BeolCorner::kRCworst, 25), l.rAt(BeolCorner::kTypical, 25));
  // Cw trades thicker metal: R drops as C rises.
  EXPECT_LT(l.rAt(BeolCorner::kCworst, 25), l.rAt(BeolCorner::kTypical, 25));
  // Coupling-dominant corner moves cc hardest.
  EXPECT_GT(l.ccAt(BeolCorner::kCcworst), l.ccAt(BeolCorner::kCworst));
  // Copper tempco.
  EXPECT_GT(l.rAt(BeolCorner::kTypical, 125), l.rAt(BeolCorner::kTypical, -30));
}

TEST(Wire, TightenedCornersInterpolateTowardTypical) {
  const auto full = cornerScales(BeolCorner::kCworst);
  const auto tight = tightenedScales(BeolCorner::kCworst, 1.5);
  EXPECT_LT(tight.cg - 1.0, full.cg - 1.0);
  EXPECT_GT(tight.cg, 1.0);
  const auto zero = tightenedScales(BeolCorner::kCworst, 0.0);
  EXPECT_NEAR(zero.cg, 1.0, 1e-12);
  EXPECT_NEAR(zero.r, 1.0, 1e-12);
}

TEST(Wire, ResistanceExplodesAtAdvancedNodes) {
  // "Rise of the BEOL": M2 R/um grows monotonically from 28nm to 7nm.
  const double r28 = BeolStack::forNode(techNode(28)).layer(2).rPerUm;
  const double r16 = BeolStack::forNode(techNode(16)).layer(2).rPerUm;
  const double r7 = BeolStack::forNode(techNode(7)).layer(2).rPerUm;
  EXPECT_GT(r16, 2.0 * r28);
  EXPECT_GT(r7, 2.0 * r16);
}

TEST(Wire, NdrRulesTradeRforC) {
  const auto& rules = ndrRules();
  ASSERT_GE(rules.size(), 3u);
  EXPECT_LT(rules[1].rScale, 0.7);   // 2W halves R
  EXPECT_GT(rules[1].cgScale, 1.0);  // at a cap cost
  EXPECT_LT(rules[2].ccScale, 0.6);  // 2W2S sheds coupling
}

TEST(Wire, DoublePatterningWidensLayerSigma) {
  const BeolStack s20 = BeolStack::forNode(techNode(20));
  EXPECT_TRUE(s20.layer(2).doublePatterned);
  EXPECT_FALSE(s20.layer(6).doublePatterned);
  EXPECT_GT(s20.layer(2).cSigmaFrac, s20.layer(6).cSigmaFrac);
  EXPECT_THROW(s20.layer(9), std::invalid_argument);
}

// --- SADP (Fig. 5) -------------------------------------------------------------

TEST(Sadp, SigmaCompositionFormulas) {
  SadpModel m;
  m.sigmaMandrelNm = 1.0;
  m.sigmaSpacerNm = 0.5;
  m.sigmaBlockNm = 2.0;
  m.sigmaMandrelBlockNm = 1.5;
  EXPECT_DOUBLE_EQ(m.cdSigmaNm(SadpCase::kMandrelMandrel), 1.0);
  EXPECT_DOUBLE_EQ(m.cdSigmaNm(SadpCase::kSpacerSpacer),
                   std::sqrt(1.0 + 2 * 0.25));
  EXPECT_DOUBLE_EQ(m.cdSigmaNm(SadpCase::kMandrelBlock),
                   std::sqrt(0.25 + 2.25 + 1.0));
  EXPECT_DOUBLE_EQ(m.cdSigmaNm(SadpCase::kSpacerBlock),
                   std::sqrt(0.25 + 0.25 + 2.25 + 1.0));
  // Block-involved cases are strictly worse (the Fig 5c ordering).
  EXPECT_GT(m.cdSigmaNm(SadpCase::kSpacerBlock),
            m.cdSigmaNm(SadpCase::kMandrelBlock));
  EXPECT_GT(m.cdSigmaNm(SadpCase::kSpacerBlock),
            m.cdSigmaNm(SadpCase::kSpacerSpacer));
}

TEST(Sadp, CaseSamplingMatchesProbabilities) {
  SadpModel m;
  Rng rng(3);
  int counts[4] = {0, 0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i)
    ++counts[static_cast<int>(m.sampleCase(rng))];
  for (int c = 0; c < 4; ++c)
    EXPECT_NEAR(static_cast<double>(counts[c]) / n, m.caseProbability[c],
                0.02);
}

TEST(Sadp, CutMaskCapGrowsWithLengthAndTerminals) {
  SadpModel m;
  EXPECT_GT(m.expectedCutMaskCap(100.0, 4), m.expectedCutMaskCap(10.0, 4));
  EXPECT_GT(m.expectedCutMaskCap(50.0, 6), m.expectedCutMaskCap(50.0, 2));
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 4000; ++i) stats.add(m.sampleCutMaskCap(50.0, 4, rng));
  EXPECT_NEAR(stats.mean(), m.expectedCutMaskCap(50.0, 4), 0.05);
  EXPECT_GT(stats.stddev(), 0.0);  // "unpredictably increasing" — it varies
}

// --- extraction ------------------------------------------------------------------

TEST(Extract, WireLoadModelWhenUnplaced) {
  auto L = characterizedLibrary(LibraryPvt{}, true);
  Netlist nl = generatePipeline(L, 1, 3);
  Extractor ex(nl, BeolStack::forNode(techNode(28)));
  EXPECT_FALSE(ex.isPlaced());
  ExtractionOptions opt;
  const NetId n = nl.instance(nl.netCount() > 0 ? 0 : 0).fanout;
  const auto p = ex.extract(n, opt);
  EXPECT_GT(p.wirelength, 0.0);
  EXPECT_GT(p.totalCap, 0.0);
  ASSERT_EQ(p.sinkNode.size(), nl.net(n).sinks.size());
  for (int node : p.sinkNode) EXPECT_GT(p.tree.elmore(node), 0.0);
}

TEST(Extract, CornerMovesCapAndDelay) {
  auto L = characterizedLibrary(LibraryPvt{}, true);
  Netlist nl = generatePipeline(L, 1, 3);
  Extractor ex(nl, BeolStack::forNode(techNode(28)));
  const NetId n = nl.instance(0).fanout;
  ExtractionOptions typ;
  ExtractionOptions cw;
  cw.corner = BeolCorner::kCworst;
  ExtractionOptions rcw;
  rcw.corner = BeolCorner::kRCworst;
  const auto pTyp = ex.extract(n, typ);
  const auto pCw = ex.extract(n, cw);
  const auto pRcw = ex.extract(n, rcw);
  EXPECT_GT(pCw.wireCap, pTyp.wireCap);
  EXPECT_GT(pRcw.tree.elmore(pRcw.sinkNode[0]),
            pTyp.tree.elmore(pTyp.sinkNode[0]));
}

TEST(Extract, NdrReducesWireDelay) {
  auto L = characterizedLibrary(LibraryPvt{}, true);
  Netlist nl = generatePipeline(L, 1, 3);
  Extractor ex(nl, BeolStack::forNode(techNode(28)));
  const NetId n = nl.instance(0).fanout;
  ExtractionOptions opt;
  const auto before = ex.extract(n, opt);
  nl.net(n).ndrClass = 2;  // 2W2S
  const auto after = ex.extract(n, opt);
  EXPECT_LT(after.tree.elmore(after.sinkNode[0]),
            before.tree.elmore(before.sinkNode[0]));
}

TEST(Extract, MillerFactorInflatesCoupling) {
  auto L = characterizedLibrary(LibraryPvt{}, true);
  Netlist nl = generatePipeline(L, 1, 3);
  Extractor ex(nl, BeolStack::forNode(techNode(28)));
  const NetId n = nl.instance(0).fanout;
  ExtractionOptions quiet;
  ExtractionOptions si;
  si.millerFactor = 2.0;
  EXPECT_GT(ex.extract(n, si).wireCap, ex.extract(n, quiet).wireCap);
}

TEST(Extract, LayerAssignmentByLength) {
  auto L = characterizedLibrary(LibraryPvt{}, true);
  Netlist nl = generatePipeline(L, 1, 2);
  Extractor ex(nl, BeolStack::forNode(techNode(28)));
  EXPECT_EQ(ex.layerForLength(5.0), 2);
  EXPECT_EQ(ex.layerForLength(50.0), 3);
  EXPECT_EQ(ex.layerForLength(100.0), 4);
  EXPECT_EQ(ex.layerForLength(1000.0), 6);
}

}  // namespace
}  // namespace tc
