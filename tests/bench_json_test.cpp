/// \file bench_json_test.cpp
/// \brief The bench JSON reports feed the CI perf gate, so they must stay
/// machine-parseable even when a metric degenerates: JSON has no nan/inf
/// literals, and a bare `nan` token used to poison the whole artifact.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "bench_json.h"

namespace tc {
namespace {

std::string writeReport(const std::string& path,
                        void (*fill)(bench::JsonReport&)) {
  const std::string jsonFlag = "--json";
  char arg0[] = "bench_json_test";
  std::string flag = jsonFlag;
  std::string p = path;
  char* argv[] = {arg0, flag.data(), p.data()};
  {
    bench::JsonReport report("bench_json_test", 3, argv);
    fill(report);
  }  // destructor flushes
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  std::remove(path.c_str());
  return ss.str();
}

TEST(BenchJson, FiniteValuesKeepPrecision) {
  const std::string out =
      writeReport("/tmp/tc_bench_json_finite.json", [](bench::JsonReport& r) {
        r.metric("wns_ps", -123.456789, "ps");
        r.metric("count", 42);
      });
  EXPECT_NE(out.find("\"name\": \"wns_ps\", \"value\": -123.456789"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"name\": \"count\", \"value\": 42"), std::string::npos);
}

TEST(BenchJson, NonFiniteValuesSerializeAsNull) {
  const std::string out = writeReport(
      "/tmp/tc_bench_json_nonfinite.json", [](bench::JsonReport& r) {
        r.metric("nan_metric", std::nan(""));
        r.metric("inf_metric", std::numeric_limits<double>::infinity());
        r.metric("ninf_metric", -std::numeric_limits<double>::infinity());
      });
  EXPECT_NE(out.find("\"name\": \"nan_metric\", \"value\": null"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"name\": \"inf_metric\", \"value\": null"),
            std::string::npos);
  EXPECT_NE(out.find("\"name\": \"ninf_metric\", \"value\": null"),
            std::string::npos);
  // No bare non-JSON tokens anywhere in the artifact.
  EXPECT_EQ(out.find("nan,"), std::string::npos);
  EXPECT_EQ(out.find("inf,"), std::string::npos);
  EXPECT_EQ(out.find(": nan"), std::string::npos);
  EXPECT_EQ(out.find(": inf"), std::string::npos);
  EXPECT_EQ(out.find(": -inf"), std::string::npos);
}

TEST(BenchJson, JsonNumberHelper) {
  EXPECT_EQ(bench::JsonReport::jsonNumber(1.5), "1.5");
  EXPECT_EQ(bench::JsonReport::jsonNumber(std::nan("")), "null");
  EXPECT_EQ(bench::JsonReport::jsonNumber(
                std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(bench::JsonReport::jsonNumber(
                -std::numeric_limits<double>::infinity()),
            "null");
}

}  // namespace
}  // namespace tc
