#include <gtest/gtest.h>

#include "liberty/builder.h"
#include "network/netgen.h"
#include "place/placement.h"
#include "signoff/monitor.h"
#include "sta/report.h"
#include "sta/si.h"

namespace tc {
namespace {

std::shared_ptr<const Library> lib() {
  return characterizedLibrary(LibraryPvt{}, true);
}

struct PlacedBlock {
  Netlist nl;
  Scenario sc;
};

PlacedBlock placedBlock() {
  auto L = lib();
  BlockProfile p = profileTiny();
  Netlist nl = generateBlock(L, p);
  const Floorplan fp = Floorplan::forDesign(nl, 0.72);
  placeDesign(nl, fp);
  Scenario sc;
  sc.lib = L;
  return {std::move(nl), sc};
}

// ---------------------------------------------------------------------------
// SI analyzer
// ---------------------------------------------------------------------------

TEST(Si, FindsVictimsOnPlacedDesign) {
  PlacedBlock b = placedBlock();
  StaEngine eng(b.nl, b.sc);
  eng.run();
  SiAnalyzer si(eng);
  const SiSummary s = si.analyze();
  ASSERT_FALSE(s.victims.empty());
  // Sorted by delta delay, descending.
  for (std::size_t i = 1; i < s.victims.size(); ++i)
    EXPECT_LE(s.victims[i].deltaDelayLate, s.victims[i - 1].deltaDelayLate);
  for (const auto& v : s.victims) {
    EXPECT_GE(v.couplingRatio, 0.0);
    EXPECT_LE(v.couplingRatio, 1.0);
    EXPECT_GE(v.timedAggressors, 0);
    EXPECT_LE(v.timedAggressors, v.aggressors);
    EXPECT_GE(v.deltaDelayLate, 0.0);
    EXPECT_GE(v.glitchPeakFrac, 0.0);
    EXPECT_LE(v.glitchPeakFrac, v.couplingRatio + 1e-9);
  }
}

TEST(Si, RefineOnlyDegradesSetup) {
  // Folding opposing-aggressor Miller factors into the extraction can only
  // add wire delay: SI-aware setup WNS <= quiet WNS.
  PlacedBlock b = placedBlock();
  StaEngine eng(b.nl, b.sc);
  eng.run();
  const Ps quietWns = eng.wns(Check::kSetup);
  SiAnalyzer si(eng);
  const SiSummary s = si.refine();
  EXPECT_LE(s.setupWnsAfter, quietWns + 1e-6);
}

TEST(Si, SpacingNdrShedsCoupling) {
  PlacedBlock b = placedBlock();
  StaEngine eng(b.nl, b.sc);
  eng.run();
  SiAnalyzer si(eng);
  const SiSummary before = si.analyze();
  ASSERT_FALSE(before.victims.empty());
  // Promote every victim net to 2W2S and re-analyze.
  for (const auto& v : before.victims) b.nl.net(v.net).ndrClass = 2;
  StaEngine eng2(b.nl, b.sc);
  eng2.run();
  SiAnalyzer si2(eng2);
  const SiSummary after = si2.analyze();
  EXPECT_LT(after.worstDeltaDelay, before.worstDeltaDelay);
  EXPECT_LE(after.glitchViolations, before.glitchViolations);
}

TEST(Si, UnplacedDesignYieldsNoGeometricVictims) {
  auto L = lib();
  Netlist nl = generatePipeline(L, 2, 4);
  Scenario sc;
  sc.lib = L;
  StaEngine eng(nl, sc);
  eng.run();
  SiAnalyzer si(eng);
  const SiSummary s = si.analyze();
  EXPECT_TRUE(s.victims.empty());  // adjacency is geometric
}

TEST(Si, MillerOverridePlumbingWorks) {
  auto L = lib();
  Netlist nl = generatePipeline(L, 1, 3);
  Extractor ex(nl, BeolStack::forNode(techNode(28)));
  ExtractionOptions opt;
  const NetId n = nl.instance(0).fanout;
  const Ff base = ex.extract(n, opt).wireCap;
  nl.net(n).millerOverride = 2.0;
  const Ff si = ex.extract(n, opt).wireCap;
  EXPECT_GT(si, base);
  nl.net(n).millerOverride = 0.0;
  EXPECT_NEAR(ex.extract(n, opt).wireCap, base, 1e-12);
}

// ---------------------------------------------------------------------------
// DDRO monitors
// ---------------------------------------------------------------------------

TEST(Monitor, GenericRoShape) {
  const MonitorDesign ro = genericRingOscillator(13);
  EXPECT_EQ(ro.stages.size(), 13u);
  for (const auto& s : ro.stages) {
    EXPECT_EQ(s.kind, StageKind::kInverter);
    EXPECT_EQ(s.vt, VtClass::kSvt);
  }
}

TEST(Monitor, DelayRespondsToPvtAndAging) {
  const MonitorDesign ro = genericRingOscillator(7);
  const Ps nom = monitorDelay(ro, 0.9, 25.0, 0.0);
  EXPECT_GT(nom, 0.0);
  EXPECT_GT(monitorDelay(ro, 0.7, 25.0, 0.0), nom);   // slower at low V
  EXPECT_GT(monitorDelay(ro, 0.9, 25.0, 0.03), nom);  // slower when aged
  EXPECT_LT(monitorDelay(ro, 1.1, 25.0, 0.0), nom);   // faster at high V
}

TEST(Monitor, DdroMatchesPathCompositionLength) {
  PlacedBlock b = placedBlock();
  StaEngine eng(b.nl, b.sc);
  eng.run();
  const auto worst = worstEndpoints(eng, Check::kSetup, 1);
  ASSERT_FALSE(worst.empty());
  const MonitorDesign truth = pathComposition(eng, worst[0].vertex);
  const MonitorDesign ddro = synthesizeDdro(eng, worst[0].vertex);
  ASSERT_FALSE(truth.stages.empty());
  EXPECT_EQ(ddro.stages.size(), truth.stages.size());
  // Every DDRO stage comes from the menu.
  for (const auto& s : ddro.stages) {
    bool inMenu = false;
    for (const auto& m : monitorStageMenu())
      inMenu |= m.kind == s.kind && m.vt == s.vt;
    EXPECT_TRUE(inMenu);
  }
}

TEST(Monitor, DdroTracksBetterThanGenericRo) {
  // The headline property: the design-dependent monitor's tracking error
  // across (V, T, aging) is below the generic RO's.
  PlacedBlock b = placedBlock();
  // Vt-mix the design so the path has non-SVT content.
  Rng rng(5);
  for (InstId i = 0; i < b.nl.instanceCount(); ++i) {
    const Cell& c = b.nl.cellOf(i);
    if (c.isSequential || b.nl.instance(i).isClockTreeBuffer) continue;
    if (rng.chance(0.5)) {
      const int cand = b.nl.library().variant(
          c.footprint, rng.chance(0.5) ? VtClass::kHvt : VtClass::kLvt,
          c.drive);
      if (cand >= 0) b.nl.swapCell(i, cand);
    }
  }
  StaEngine eng(b.nl, b.sc);
  eng.run();
  const auto worst = worstEndpoints(eng, Check::kSetup, 1);
  ASSERT_FALSE(worst.empty());
  const MonitorDesign truth = pathComposition(eng, worst[0].vertex);
  const MonitorDesign ddro = synthesizeDdro(eng, worst[0].vertex);
  const MonitorDesign ro =
      genericRingOscillator(static_cast<int>(truth.stages.size()));
  const TrackingResult td = evaluateTracking(ddro, truth);
  const TrackingResult tg = evaluateTracking(ro, truth);
  EXPECT_LE(td.meanErrorPct, tg.meanErrorPct + 1e-9);
  EXPECT_GT(tg.points.size(), 0u);
  // Self-tracking is exact.
  const TrackingResult self = evaluateTracking(truth, truth);
  EXPECT_NEAR(self.maxErrorPct, 0.0, 1e-9);
}

}  // namespace
}  // namespace tc
