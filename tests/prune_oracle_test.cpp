/// \file prune_oracle_test.cpp
/// \brief Certificate soundness against the all-exact oracle (ctest label:
/// prune). Over a population of random designs and OCV ladders, every
/// pruned pass is held to the label invariants:
///
///   1. zero optimism — every certificate's setup/hold bound is <= the
///      corner's true exact WNS (this is the empirical check of the
///      per-endpoint monotonicity argument dominatesForBound leans on,
///      across real engines, derates, CPPR and random topologies);
///   2. unpruned slots are BITWISE the all-exact run's slots — pruning
///      must never perturb what it does not skip;
///   3. maxPruned=0 reproduces the plain runner's McmmResult
///      byte-identically, certificates and all other side effects absent.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "liberty/builder.h"
#include "mcmm_identical.h"
#include "network/netgen.h"
#include "signoff/prune.h"
#include "util/log.h"

namespace tc {
namespace {

std::vector<Scenario> oracleLadder() {
  Scenario base;
  base.name = "func_tt";
  base.lib = characterizedLibrary(LibraryPvt{ProcessCorner::kTT, 0.9, 25.0},
                                  /*quick=*/true);
  OcvLadderSpec spec;
  spec.lateFactors = {1.03, 1.10};
  spec.earlyFactors = {0.97, 0.90};
  spec.setupUncertainties = {15.0, 40.0};
  spec.extraSetupMargins = {0.0, 20.0};
  spec.sigmaCounts = {3.0};
  return deriveOcvLadder({base}, spec);
}

PruneOptions smallBudget() {
  PruneOptions opt;
  opt.seedRuns = 3;
  opt.batchSize = 2;
  opt.maxExactRuns = 5;
  return opt;
}

TEST(PruneOracle, BoundsAreNeverOptimisticAcrossRandomDesigns) {
  LogCapture quiet;
  const std::vector<Scenario> ladder = oracleLadder();
  int prunedTotal = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    SCOPED_TRACE("design seed " + std::to_string(seed));
    BlockProfile prof = profileTiny();
    prof.seed = seed;
    prof.numGates = 60 + static_cast<int>(seed % 7) * 15;
    prof.numFlops = 8 + static_cast<int>(seed % 3) * 4;
    const Netlist nl = generateBlock(ladder.front().lib, prof);

    const McmmResult oracle = runMcmm(nl, ladder, McmmOptions{});
    const PrunedMcmmResult pruned =
        runMcmmPruned(nl, ladder, smallBudget(), McmmOptions{});

    ASSERT_EQ(pruned.result.scenarios.size(), ladder.size());
    EXPECT_LE(pruned.exactRuns, smallBudget().maxExactRuns);
    EXPECT_EQ(pruned.certificates.size(),
              ladder.size() - static_cast<std::size_t>(pruned.exactRuns));
    prunedTotal += static_cast<int>(pruned.certificates.size());

    std::int32_t prev = -1;
    for (const PruneCertificate& c : pruned.certificates) {
      SCOPED_TRACE("certificate for " + c.scenarioName);
      EXPECT_GT(c.scenario, prev);
      prev = c.scenario;
      const std::size_t i = static_cast<std::size_t>(c.scenario);
      // Invariant 1: pessimistic-or-equal, never optimistic.
      EXPECT_LE(c.boundSetupWns, oracle.scenarios[i].setupWns);
      EXPECT_LE(c.boundHoldWns, oracle.scenarios[i].holdWns);
      // The evidence really dominates, and the bound is its exact WNS.
      const std::size_t evS = static_cast<std::size_t>(c.evidenceSetup);
      const std::size_t evH = static_cast<std::size_t>(c.evidenceHold);
      EXPECT_TRUE(dominatesForBound(ladder[evS], ladder[i]));
      EXPECT_TRUE(dominatesForBound(ladder[evH], ladder[i]));
      EXPECT_EQ(c.boundSetupWns, oracle.scenarios[evS].setupWns);
      EXPECT_EQ(c.boundHoldWns, oracle.scenarios[evH].holdWns);
      // The merged slot carries the bounds (and the conservative
      // aggregates of the evidence runs).
      const ScenarioResult& slot = pruned.result.scenarios[i];
      EXPECT_TRUE(slot.pruned);
      EXPECT_EQ(slot.setupWns, c.boundSetupWns);
      EXPECT_EQ(slot.holdWns, c.boundHoldWns);
      EXPECT_LE(slot.setupTns, oracle.scenarios[i].setupTns);
      EXPECT_LE(slot.holdTns, oracle.scenarios[i].holdTns);
      EXPECT_GE(slot.setupViolations, oracle.scenarios[i].setupViolations);
      EXPECT_GE(slot.holdViolations, oracle.scenarios[i].holdViolations);
    }

    // Invariant 2: unpruned slots are bitwise the oracle's.
    for (std::size_t i = 0; i < ladder.size(); ++i)
      if (!pruned.result.scenarios[i].pruned)
        testutil::expectScenarioIdentical(pruned.result.scenarios[i],
                                          oracle.scenarios[i]);

    // The merged MCMM closure metrics stay pessimistic-or-equal too.
    EXPECT_LE(pruned.result.wns(Check::kSetup), oracle.wns(Check::kSetup));
    EXPECT_LE(pruned.result.wns(Check::kHold), oracle.wns(Check::kHold));
    EXPECT_LE(pruned.result.tns(Check::kSetup), oracle.tns(Check::kSetup));
    EXPECT_LE(pruned.result.tns(Check::kHold), oracle.tns(Check::kHold));
    EXPECT_GE(pruned.result.violationCount(Check::kSetup),
              oracle.violationCount(Check::kSetup));
    EXPECT_GE(pruned.result.violationCount(Check::kHold),
              oracle.violationCount(Check::kHold));

    // Invariant 3 (sampled — it reruns the whole ladder exactly):
    // pruned-off mode is byte-identical to the plain runner.
    if (seed % 5 == 0) {
      PruneOptions off = smallBudget();
      off.maxPruned = 0;
      const PrunedMcmmResult plain =
          runMcmmPruned(nl, ladder, off, McmmOptions{});
      EXPECT_TRUE(plain.certificates.empty());
      EXPECT_FALSE(plain.predictor.valid);
      EXPECT_EQ(plain.exactRuns, static_cast<int>(ladder.size()));
      testutil::expectIdentical(oracle, plain.result, "maxPruned=0");
    }
  }
  // The population must actually exercise pruning, not degenerate to
  // all-exact everywhere.
  EXPECT_GE(prunedTotal, 30 * 3);
}

TEST(PruneOracle, PrunedPassIsDeterministicPerDesign) {
  LogCapture quiet;
  const std::vector<Scenario> ladder = oracleLadder();
  BlockProfile prof = profileTiny();
  prof.seed = 17;
  const Netlist nl = generateBlock(ladder.front().lib, prof);
  const PrunedMcmmResult a =
      runMcmmPruned(nl, ladder, smallBudget(), McmmOptions{});
  const PrunedMcmmResult b =
      runMcmmPruned(nl, ladder, smallBudget(), McmmOptions{});
  EXPECT_EQ(a.exactRuns, b.exactRuns);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.predictor.trainingScenarios, b.predictor.trainingScenarios);
  EXPECT_EQ(a.predictor.setupWeights, b.predictor.setupWeights);
  EXPECT_EQ(a.predictor.holdWeights, b.predictor.holdWeights);
  ASSERT_EQ(a.certificates.size(), b.certificates.size());
  for (std::size_t i = 0; i < a.certificates.size(); ++i)
    testutil::expectCertIdentical(a.certificates[i], b.certificates[i]);
  testutil::expectIdentical(a.result, b.result, "pruned repeat");
}

}  // namespace
}  // namespace tc
