/// \file pba_oracle_test.cpp
/// \brief Brute-force all-paths oracle for the PBA enumerator (ctest label
/// `invariants`).
///
/// The oracle DFS-enumerates *every* path into each endpoint of small
/// random designs and evaluates each with an independent re-implementation
/// of the documented exact-arrival arithmetic (same operations in the same
/// order, so agreement is checked BITWISE, not within a tolerance). The
/// exhaustive enumerator must reproduce the oracle's worst exact arrival
/// and slack exactly — any admissibility bug in the branch-and-bound
/// pruning shows up as a missed path here. Metamorphic companions: slack
/// is monotone in K (more paths can only lower min-over-paths) with the
/// exhaustive result as fixpoint, and at least one seeded design
/// demonstrates the old single-retrace optimism: a non-GBA path that
/// evaluates strictly worse than the retraced GBA-worst path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "liberty/builder.h"
#include "network/netgen.h"
#include "sta/engine.h"
#include "sta/pba.h"

namespace tc {
namespace {

std::shared_ptr<const Library> testLib() {
  static std::shared_ptr<const Library> L =
      characterizedLibrary(LibraryPvt{}, /*quick=*/true);
  return L;
}

/// Small profiles: per-endpoint path counts must stay brute-forceable.
BlockProfile smallProfile(int i) {
  BlockProfile p = profileTiny();
  p.numGates = 24 + 5 * i;
  p.numFlops = 4 + i % 3;
  p.numInputs = 5 + i % 4;
  p.numOutputs = 4 + i % 3;
  p.levels = 4 + i % 3;
  p.fanoutSkew = 0.05 + 0.02 * (i % 4);
  p.seed = 9000 + 31 * static_cast<std::uint64_t>(i);
  return p;
}

/// Independent all-paths evaluator. Deliberately re-implements the exact
/// walk arithmetic (instead of calling PbaAnalyzer) so the two CAN
/// disagree; the operations mirror DESIGN.md "Path-based analysis" step by
/// step, which is what makes bitwise comparison meaningful.
class BruteForce {
 public:
  BruteForce(StaEngine& eng, Mode mode, int pathCap)
      : eng_(eng), mode_(mode), cap_(pathCap) {}

  /// Worst (late) / best (early) exact arrival over ALL paths into the
  /// endpoint, both transitions. False when the path count exceeded the
  /// cap (caller skips the endpoint) or the endpoint is unreached.
  bool run(VertexId endpoint, double* worst, int* pathCount) {
    have_ = false;
    capped_ = false;
    count_ = 0;
    for (int tr = 0; tr < 2; ++tr) {
      endTrans_ = tr;
      stack_.clear();
      dfs(endpoint, tr);
    }
    *worst = worst_;
    *pathCount = count_;
    return have_ && !capped_;
  }

 private:
  void dfs(VertexId v, int tr) {
    if (capped_) return;
    const int mi = static_cast<int>(mode_);
    if (eng_.timing(v).arr[mi][tr] == kNoTime) return;
    const auto& in = eng_.graph().inEdges(v);
    if (in.empty()) {
      record(v, tr);
      return;
    }
    for (const EdgeId e : in) {
      for (int trIn = 0; trIn < 2; ++trIn) {
        if (!eng_.edgeCandidate(e, mode_, trIn, tr).valid) continue;
        stack_.push_back({e, trIn});
        dfs(eng_.graph().edge(e).from, trIn);
        stack_.pop_back();
      }
    }
  }

  /// Evaluate the current stack (endpoint-to-source order) forward from
  /// (source, srcTr). Operation order matches the analyzer's walk exactly.
  void record(VertexId source, int srcTr) {
    if (++count_ > cap_) {
      capped_ = true;
      return;
    }
    const Scenario& sc = eng_.scenario();
    DelayCalculator& dc = eng_.delayCalc();
    const TimingGraph& g = eng_.graph();
    const auto& d = sc.derate;
    const int mi = static_cast<int>(mode_);
    const double flatF = d.mode == DerateMode::kFlatOcv
                             ? (mode_ == Mode::kLate ? d.flatLate : d.flatEarly)
                             : 1.0;
    double arr = eng_.timing(source).arr[mi][srcTr];
    double slew = eng_.timing(source).slew[mi][srcTr];
    if (slew <= 0.0) slew = sc.inputSlew;
    double var = 0.0;
    for (std::size_t i = stack_.size(); i-- > 0;) {
      const EdgeId via = stack_[i].first;
      const int trTo = i == 0 ? endTrans_ : stack_[i - 1].second;
      const TimingGraph::Edge& ed = g.edge(via);
      switch (ed.kind) {
        case TimingGraph::EdgeKind::kNetArc: {
          const auto w = dc.wire(ed.net, ed.sinkIndex, slew, /*useD2m=*/true);
          Ps skew = 0.0;
          const TimingGraph::Vertex& tv = g.vertex(ed.to);
          if (tv.kind == TimingGraph::VertexKind::kCellInput && tv.pin == 1 &&
              eng_.netlist().isSequential(tv.inst))
            skew = eng_.netlist().instance(tv.inst).usefulSkew;
          arr += w.delay * flatF + skew;
          slew = w.outSlew;
          break;
        }
        case TimingGraph::EdgeKind::kCellArc: {
          const InstId inst = g.vertex(ed.from).inst;
          const Cell& cell = dc.cellOf(inst);
          const auto r = dc.cellArc(inst, ed.arcIndex, trTo == 0, slew);
          arr += r.delay * flatF;
          slew = r.outSlew;
          double sigma = 0.0;
          if (d.mode == DerateMode::kLvf)
            sigma = mode_ == Mode::kLate ? r.sigmaLate : r.sigmaEarly;
          else if (d.mode == DerateMode::kPocv)
            sigma = cell.pocvSigmaRatio * r.delay;
          var += sigma * sigma;
          break;
        }
        case TimingGraph::EdgeKind::kClockToQ: {
          const InstId flop = g.vertex(ed.from).inst;
          const Cell& cell = dc.cellOf(flop);
          const auto r = dc.clockToQ(flop, trTo == 0, slew);
          arr += r.delay * flatF;
          slew = r.outSlew;
          const double sigma =
              (cell.pocvSigmaRatio > 0 ? cell.pocvSigmaRatio : 0.03) * r.delay;
          if (d.mode == DerateMode::kLvf || d.mode == DerateMode::kPocv)
            var += sigma * sigma;
          break;
        }
      }
    }
    double exact = arr;
    // Only the modes this oracle covers (kNone/kFlatOcv/kLvf + kPocv).
    if (d.mode == DerateMode::kPocv || d.mode == DerateMode::kLvf) {
      const double s = d.sigmaCount * std::sqrt(var);
      exact = mode_ == Mode::kLate ? arr + s : arr - s;
    }
    if (!have_) {
      worst_ = exact;
      have_ = true;
    } else {
      worst_ = mode_ == Mode::kLate ? std::max(worst_, exact)
                                    : std::min(worst_, exact);
    }
  }

  StaEngine& eng_;
  Mode mode_;
  int cap_;
  int endTrans_ = 0;  ///< endpoint transition of the current DFS seed
  std::vector<std::pair<EdgeId, int>> stack_;  ///< (edge, trFrom)
  double worst_ = 0.0;
  bool have_ = false;
  bool capped_ = false;
  int count_ = 0;
};

TEST(PbaOracle, ExhaustiveMatchesBruteForceBitwise) {
  auto L = testLib();
  const DerateMode modes[] = {DerateMode::kNone, DerateMode::kFlatOcv,
                              DerateMode::kLvf};
  int endpointsChecked = 0;
  for (int i = 0; i < 6; ++i) {
    Netlist nl = generateBlock(L, smallProfile(i));
    for (const DerateMode m : modes) {
      Scenario sc;
      sc.lib = L;
      sc.derate.mode = m;
      StaEngine eng(nl, sc);
      eng.run();
      PbaAnalyzer pba(eng);
      PbaOptions exh;
      exh.exhaustive = true;
      for (const Check check : {Check::kSetup, Check::kHold}) {
        const Mode mode = check == Check::kSetup ? Mode::kLate : Mode::kEarly;
        for (const auto& ep : eng.endpoints()) {
          BruteForce oracle(eng, mode, /*pathCap=*/20000);
          double worst = 0.0;
          int nPaths = 0;
          if (!oracle.run(ep.vertex, &worst, &nPaths)) continue;
          const PbaResult r = pba.recalcEndpoint(ep, check, exh);
          ASSERT_TRUE(r.cert.complete);
          // Bitwise: identical arithmetic must find the identical worst.
          EXPECT_EQ(r.exactArrival, worst)
              << toString(m) << " seed " << i << " vertex " << ep.vertex;
          const Ps gbaArr = check == Check::kSetup ? ep.dataLate : ep.dataEarly;
          const Ps delta =
              check == Check::kSetup ? gbaArr - worst : worst - gbaArr;
          EXPECT_EQ(r.pbaSlack, r.gbaSlack + delta);
          // Accounting sanity: never more evaluations than paths exist.
          EXPECT_LE(r.cert.pathsEvaluated, nPaths);
          ++endpointsChecked;
        }
      }
    }
  }
  EXPECT_GT(endpointsChecked, 50);
}

TEST(PbaOracle, SlackIsMonotoneInKWithExhaustiveFixpoint) {
  auto L = testLib();
  for (int i = 0; i < 4; ++i) {
    Netlist nl = generateBlock(L, smallProfile(i));
    Scenario sc;
    sc.lib = L;
    sc.derate.mode = DerateMode::kLvf;
    StaEngine eng(nl, sc);
    eng.run();
    PbaAnalyzer pba(eng);
    PbaOptions exh;
    exh.exhaustive = true;
    for (const Check check : {Check::kSetup, Check::kHold}) {
      std::vector<std::vector<PbaResult>> byK;
      for (const int k : {1, 2, 4, 8}) {
        PbaOptions o;
        o.maxPaths = k;
        byK.push_back(pba.recalcWorst(12, check, o));
      }
      const auto ex = pba.recalcWorst(12, check, exh);
      for (std::size_t e = 0; e < ex.size(); ++e) {
        for (std::size_t k = 1; k < byK.size(); ++k)
          EXPECT_LE(byK[k][e].pbaSlack, byK[k - 1][e].pbaSlack)
              << "K step " << k << " endpoint " << e;
        // Exhaustive is the fixpoint: no K beats it, and it carries proof.
        EXPECT_LE(ex[e].pbaSlack, byK.back()[e].pbaSlack);
        EXPECT_TRUE(ex[e].cert.complete);
        EXPECT_GE(ex[e].cert.pathsEvaluated, 1);
      }
    }
  }
}

TEST(PbaOracle, ExhaustiveFindsStrictlyWorsePathThanSingleRetrace) {
  // The acceptance demonstration for the optimism bug: on seeded random
  // designs a non-GBA path evaluates strictly worse under exact slews/D2M
  // than the retraced GBA-worst path, so exhaustive pbaSlack < K=1
  // pbaSlack for some endpoint.
  auto L = testLib();
  PbaOptions exh;
  exh.exhaustive = true;
  bool foundStrict = false;
  int demoSeed = -1;
  for (int i = 0; i < 10 && !foundStrict; ++i) {
    Netlist nl = generateBlock(L, smallProfile(i));
    for (const DerateMode m :
         {DerateMode::kNone, DerateMode::kFlatOcv, DerateMode::kLvf}) {
      Scenario sc;
      sc.lib = L;
      sc.derate.mode = m;
      StaEngine eng(nl, sc);
      eng.run();
      PbaAnalyzer pba(eng);
      for (const auto& ep : eng.endpoints()) {
        const PbaResult k1 = pba.recalcEndpoint(ep, Check::kSetup);
        const PbaResult ex = pba.recalcEndpoint(ep, Check::kSetup, exh);
        EXPECT_LE(ex.pbaSlack, k1.pbaSlack + 1e-12);
        if (ex.pbaSlack < k1.pbaSlack) {
          foundStrict = true;
          demoSeed = i;
        }
      }
    }
  }
  EXPECT_TRUE(foundStrict)
      << "no endpoint where exhaustive PBA beats single-retrace; "
         "the optimism demonstration design set needs widening";
  if (foundStrict) {
    SUCCEED() << "strict improvement demonstrated at seed " << demoSeed;
  }
}

}  // namespace
}  // namespace tc
