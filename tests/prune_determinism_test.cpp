/// \file prune_determinism_test.cpp
/// \brief Pruning decisions and certificates are part of the farm's
/// bit-identity contract (ctest label: prune): a pruned pass over the
/// standard corner set must produce byte-identical results, certificates,
/// and predictor state whether the exact runs execute in-process or across
/// a process farm at 1, 4, or 16 workers — and the recoverable half of the
/// TC_FARM_FAULT matrix (crashes, frame corruption, duplicate frames that
/// the dispatcher retries or dedups away) must leave every decision
/// unchanged. Decisions may only depend on the merged results, never on
/// scheduling, arrival order, or which attempt finally delivered a frame.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "mcmm_identical.h"
#include "network/netgen.h"
#include "signoff/prune.h"
#include "util/log.h"

namespace tc {
namespace {

using testutil::expectCertIdentical;
using testutil::expectIdentical;
using testutil::scenarioSet;

class ScopedFault {
 public:
  explicit ScopedFault(const std::string& spec) {
    setenv("TC_FARM_FAULT", spec.c_str(), 1);
  }
  ~ScopedFault() { unsetenv("TC_FARM_FAULT"); }
};

/// The full pruned-pass comparator: merged result, certificate list, and
/// the predictor audit state, all via == (never near).
void expectPrunedIdentical(const PrunedMcmmResult& a,
                           const PrunedMcmmResult& b,
                           const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.exactRuns, b.exactRuns);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.quarantinedExact, b.quarantinedExact);
  ASSERT_EQ(a.certificates.size(), b.certificates.size());
  for (std::size_t i = 0; i < a.certificates.size(); ++i)
    expectCertIdentical(a.certificates[i], b.certificates[i]);
  EXPECT_EQ(a.predictor.valid, b.predictor.valid);
  EXPECT_EQ(a.predictor.seed, b.predictor.seed);
  EXPECT_EQ(a.predictor.rounds, b.predictor.rounds);
  EXPECT_EQ(a.predictor.trainingScenarios, b.predictor.trainingScenarios);
  EXPECT_EQ(a.predictor.trainingSetupWns, b.predictor.trainingSetupWns);
  EXPECT_EQ(a.predictor.trainingHoldWns, b.predictor.trainingHoldWns);
  EXPECT_EQ(a.predictor.setupWeights, b.predictor.setupWeights);
  EXPECT_EQ(a.predictor.holdWeights, b.predictor.holdWeights);
  EXPECT_EQ(a.predictor.setupResidual, b.predictor.setupResidual);
  EXPECT_EQ(a.predictor.holdResidual, b.predictor.holdResidual);
  expectIdentical(a.result, b.result, label);
}

/// Shared inputs: the standard 4-corner set widened into a 16-scenario OCV
/// ladder (four independent dominance groups), with the in-process pruned
/// reference computed once.
class PruneDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    LogCapture quiet;
    OcvLadderSpec spec;
    spec.lateFactors = {1.03, 1.10};
    spec.earlyFactors = {0.97, 0.90};
    spec.setupUncertainties = {15.0, 40.0};
    spec.extraSetupMargins = {0.0};
    spec.sigmaCounts = {3.0};
    ladder_ = new std::vector<Scenario>(deriveOcvLadder(scenarioSet(), spec));
    netlist_ = new Netlist(
        generateBlock(ladder_->front().lib, profileTiny()));
    ref_ = new PrunedMcmmResult(
        runMcmmPruned(*netlist_, *ladder_, options(), McmmOptions{}));
  }
  static void TearDownTestSuite() {
    delete ref_;
    delete netlist_;
    delete ladder_;
  }

  static PruneOptions options() {
    PruneOptions opt;
    opt.seedRuns = 6;
    opt.batchSize = 4;
    opt.maxExactRuns = 10;
    return opt;
  }

  static FarmOptions farmOptions(int workers) {
    FarmOptions opt;
    opt.workers = workers;
    opt.scenarioTimeoutSec = 120.0;
    opt.heartbeatSec = 0.05;
    opt.heartbeatTimeoutSec = 3.0;
    opt.maxAttempts = 3;
    opt.backoffBaseSec = 0.01;
    return opt;
  }

  /// Farm pruned pass under `spec` (empty = no fault): must fully recover
  /// (nothing quarantined) and match the in-process reference
  /// byte-for-byte, decisions included.
  void expectFarmMatchesReference(int workers, const std::string& spec) {
    LogCapture quiet;
    SCOPED_TRACE("workers=" + std::to_string(workers) +
                 " TC_FARM_FAULT=" + spec);
    FarmStats stats;
    PrunedMcmmResult farm;
    if (spec.empty()) {
      farm = runMcmmFarmPruned(*netlist_, *ladder_, options(),
                               farmOptions(workers), &stats);
    } else {
      ScopedFault fault(spec);
      farm = runMcmmFarmPruned(*netlist_, *ladder_, options(),
                               farmOptions(workers), &stats);
    }
    EXPECT_EQ(stats.quarantined, 0);
    expectPrunedIdentical(*ref_, farm, spec.empty() ? "clean" : spec);
  }

  static std::vector<Scenario>* ladder_;
  static Netlist* netlist_;
  static PrunedMcmmResult* ref_;
};

std::vector<Scenario>* PruneDeterminismTest::ladder_ = nullptr;
Netlist* PruneDeterminismTest::netlist_ = nullptr;
PrunedMcmmResult* PruneDeterminismTest::ref_ = nullptr;

TEST_F(PruneDeterminismTest, ReferenceActuallyPrunes) {
  // Guard against the whole suite going vacuous: the shared reference must
  // contain both exact runs and certificates.
  EXPECT_GE(ref_->exactRuns, 4);  // one per dominance-maximal corner
  EXPECT_GE(ref_->certificates.size(), 4u);
  EXPECT_EQ(ref_->certificates.size() +
                static_cast<std::size_t>(ref_->exactRuns),
            ladder_->size());
  EXPECT_EQ(ref_->quarantinedExact, 0);
}

TEST_F(PruneDeterminismTest, FarmMatchesInProcessAtOneWorker) {
  expectFarmMatchesReference(1, "");
}

TEST_F(PruneDeterminismTest, FarmMatchesInProcessAtFourWorkers) {
  expectFarmMatchesReference(4, "");
}

TEST_F(PruneDeterminismTest, FarmMatchesInProcessAtSixteenWorkers) {
  expectFarmMatchesReference(16, "");
}

// --- recoverable fault matrix: decisions must not move ----------------------

TEST_F(PruneDeterminismTest, CrashOnFirstAttemptLeavesDecisionsUnchanged) {
  // One corner's worker aborts on attempt 1 (name filter — batch
  // sub-snapshots renumber scenarios, so the name is the only stable
  // address); the retry succeeds and every decision stays put.
  expectFarmMatchesReference(4, "abort@run:attempt=1:name=func_ssg_cw@L1U1");
}

TEST_F(PruneDeterminismTest, SigkillAtStreamLeavesDecisionsUnchanged) {
  // func_tt@L1U1... is its group's dominance-maximal corner, so it is
  // guaranteed to be dispatched (seed round) and the fault actually fires.
  // The substring cannot match the func_tt_lvf group's names.
  expectFarmMatchesReference(4,
                             "sigkill@stream:attempt=1:name=func_tt@L1U1");
}

TEST_F(PruneDeterminismTest, FrameCorruptionLeavesDecisionsUnchanged) {
  // Every scenario's first frame arrives bit-flipped; every retry is
  // clean. The CRC rejects them all and the merge is unchanged.
  expectFarmMatchesReference(4, "bitflip@payload:attempt=1");
}

TEST_F(PruneDeterminismTest, DuplicateFramesLeaveDecisionsUnchanged) {
  // Every worker streams its result twice; first-accepted-wins dedup keeps
  // the merge and therefore the decisions identical.
  expectFarmMatchesReference(4, "dupframe@stream");
}

TEST_F(PruneDeterminismTest, TruncatedFrameLeavesDecisionsUnchanged) {
  expectFarmMatchesReference(
      4, "truncate@payload:attempt=1:name=func_ffg_cb@L1U1");
}

TEST_F(PruneDeterminismTest, RepeatFarmPassesAreByteIdentical) {
  LogCapture quiet;
  const PrunedMcmmResult a = runMcmmFarmPruned(
      *netlist_, *ladder_, options(), farmOptions(4), nullptr);
  const PrunedMcmmResult b = runMcmmFarmPruned(
      *netlist_, *ladder_, options(), farmOptions(4), nullptr);
  expectPrunedIdentical(a, b, "farm repeat");
}

}  // namespace
}  // namespace tc
