#include <gtest/gtest.h>

#include "liberty/builder.h"
#include "network/netgen.h"
#include "opt/cts.h"
#include "place/placement.h"
#include "signoff/ir.h"

namespace tc {
namespace {

std::shared_ptr<const Library> lib() {
  return characterizedLibrary(LibraryPvt{}, true);
}

struct Placed {
  Netlist nl;
  Floorplan fp;
  Scenario sc;
};

Placed placedBlock() {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  Floorplan fp = Floorplan::forDesign(nl, 0.7);
  placeDesign(nl, fp);
  Scenario sc;
  sc.lib = L;
  return {std::move(nl), fp, sc};
}

// --- CTS -------------------------------------------------------------------------

TEST(Cts, MeasureSkewBasics) {
  Placed b = placedBlock();
  StaEngine eng(b.nl, b.sc);
  eng.run();
  const SkewReport r = measureClockSkew(eng);
  EXPECT_EQ(r.flops, profileTiny().numFlops);
  EXPECT_GT(r.insertionMin, 0.0);
  EXPECT_GE(r.insertionMax, r.insertionMin);
  EXPECT_NEAR(r.globalSkew, r.insertionMax - r.insertionMin, 1e-9);
  EXPECT_LE(r.localSkewMax, r.globalSkew + 1e-9);
}

TEST(Cts, OptimizeReducesClusterRadiusAndLocalSkew) {
  Placed b = placedBlock();
  // Churn the leaf assignment so clusters straddle the placement.
  {
    Rng rng(4);
    std::vector<InstId> flops;
    std::vector<NetId> nets;
    for (InstId i = 0; i < b.nl.instanceCount(); ++i) {
      if (!b.nl.isSequential(i)) continue;
      flops.push_back(i);
      nets.push_back(b.nl.instance(i).fanin[1]);
    }
    for (std::size_t i = flops.size(); i-- > 1;) {
      const std::size_t j = rng.below(i + 1);
      std::swap(nets[i], nets[j]);
    }
    for (std::size_t i = 0; i < flops.size(); ++i) {
      b.nl.disconnectInput(flops[i], 1);
      b.nl.connectInput(flops[i], 1, nets[i]);
    }
  }
  StaEngine before(b.nl, b.sc);
  before.run();
  const SkewReport rb = measureClockSkew(before);

  RowOccupancy occ(b.nl, b.fp);
  const CtsResult res = optimizeClockTree(b.nl, &occ, &b.fp);
  EXPECT_GT(res.leafBuffers, 0);
  EXPECT_GT(res.flopsReassigned, 0);
  EXPECT_NO_THROW(b.nl.validate());
  EXPECT_TRUE(occ.isLegal());

  StaEngine after(b.nl, b.sc);
  after.run();
  const SkewReport ra = measureClockSkew(after);
  EXPECT_LT(ra.localSkewMax, rb.localSkewMax);
  EXPECT_EQ(ra.flops, rb.flops);
}

TEST(Cts, BalanceUsesLegalVariants) {
  Placed b = placedBlock();
  const int swaps = balanceClockTree(b.nl, b.sc, 3);
  EXPECT_GE(swaps, 0);
  EXPECT_NO_THROW(b.nl.validate());
  for (InstId i = 0; i < b.nl.instanceCount(); ++i)
    if (b.nl.instance(i).isClockTreeBuffer)
      EXPECT_EQ(b.nl.cellOf(i).footprint, "BUF");
}

TEST(Cts, McmmSkewAcrossCorners) {
  Placed b = placedBlock();
  Scenario slow;
  slow.lib = characterizedLibrary(
      LibraryPvt{ProcessCorner::kSSG, 0.81, 125.0}, true);
  StaEngine a(b.nl, b.sc);
  a.run();
  StaEngine c(b.nl, slow);
  c.run();
  const McmmSkew mc = skewAcrossScenarios({&a, &c});
  ASSERT_EQ(mc.globalSkewPerScenario.size(), 2u);
  EXPECT_GT(mc.globalSkewPerScenario[0], 0.0);
  // Normalized cross-corner variation is a small fraction.
  EXPECT_GE(mc.worstCrossCornerVariation, 0.0);
  EXPECT_LT(mc.worstCrossCornerVariation, 0.5);
}

// --- dynamic IR --------------------------------------------------------------------

TEST(Ir, DroopMapShape) {
  Placed b = placedBlock();
  const IrDroopMap map = computeIrDroop(b.nl);
  EXPECT_GT(map.nx, 0);
  EXPECT_GT(map.ny, 0);
  EXPECT_GT(map.worstDroopMv, 0.0);
  EXPECT_GE(map.worstDroopMv, map.meanDroopMv);
  // Lookup clamps outside the grid.
  EXPECT_GE(map.droopAt(-50.0, -50.0), 0.0);
  EXPECT_GE(map.droopAt(1e6, 1e6), 0.0);
}

TEST(Ir, DroopScalesWithActivityAndFrequency) {
  Placed b = placedBlock();
  IrOptions lo;
  lo.dataActivity = 0.05;
  IrOptions hi;
  hi.dataActivity = 0.40;
  EXPECT_GT(computeIrDroop(b.nl, hi).worstDroopMv,
            computeIrDroop(b.nl, lo).worstDroopMv);
  const double base = computeIrDroop(b.nl).worstDroopMv;
  b.nl.clocks().front().period *= 0.5;  // 2x frequency
  EXPECT_GT(computeIrDroop(b.nl).worstDroopMv, base);
}

TEST(Ir, DynamicAnalysisOnlySlowsSetup) {
  Placed b = placedBlock();
  const IrDroopMap map = computeIrDroop(b.nl);
  const DelayScaler scaler(0.9, 25.0);
  StaEngine eng(b.nl, b.sc);
  eng.run();
  const IrTimingResult r = applyIrAwareTiming(eng, map, scaler);
  EXPECT_LE(r.setupWnsAfter, r.setupWnsBefore + 1e-9);
  EXPECT_GE(r.instancesDerated, 0);
  EXPECT_GE(r.worstDeratePct, 0.0);
  EXPECT_LT(r.worstDeratePct, 30.0);  // droop is millivolts, not brownout
}

}  // namespace
}  // namespace tc
