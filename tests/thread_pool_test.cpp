/// \file thread_pool_test.cpp
/// \brief Work-stealing pool unit tests: parallelFor coverage and result
/// placement, exception propagation (submit futures and parallelFor),
/// the zero-thread inline degenerate case, and nested parallelism.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace tc {
namespace {

TEST(ThreadPool, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threadCount(), 0);

  // submit() executes before returning: the future is already ready and
  // the work ran on this thread.
  const auto caller = std::this_thread::get_id();
  auto fut = pool.submit([caller] {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    return 41 + 1;
  });
  EXPECT_EQ(fut.get(), 42);

  std::vector<int> out(100, 0);
  pool.parallelFor(out.size(), [&](std::size_t i) {
    out[i] = static_cast<int>(i);  // inline => strictly ascending order
  });
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i));
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallelFor(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  }, /*grain=*/7);
  for (std::size_t i = 0; i < kN; ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForResultsIndependentOfThreadCount) {
  // Per-index result slots: any pool width produces the identical vector.
  constexpr std::size_t kN = 513;
  auto run = [&](int threads) {
    ThreadPool pool(threads);
    std::vector<double> out(kN);
    pool.parallelFor(kN, [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5 - 7.0;
    }, /*grain=*/3);
    return out;
  };
  const auto ref = run(0);
  EXPECT_EQ(run(1), ref);
  EXPECT_EQ(run(2), ref);
  EXPECT_EQ(run(8), ref);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  for (int threads : {0, 2}) {
    ThreadPool pool(threads);
    auto fut = pool.submit([]() -> int {
      throw std::runtime_error("boom");
    });
    EXPECT_THROW(fut.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
  }
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  for (int threads : {0, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.parallelFor(1000, [&](std::size_t i) {
          ran.fetch_add(1, std::memory_order_relaxed);
          if (i == 137) throw std::runtime_error("mid-loop");
        }),
        std::runtime_error);
    EXPECT_GE(ran.load(), 1);
    // Pool remains usable after a failed loop.
    std::atomic<int> after{0};
    pool.parallelFor(64, [&](std::size_t) { after.fetch_add(1); });
    EXPECT_EQ(after.load(), 64);
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // The caller participates in draining chunks, so an inner parallelFor
  // issued from a worker makes progress even when every worker is busy.
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.parallelFor(8, [&](std::size_t i) {
    pool.parallelFor(8, [&](std::size_t j) {
      sum.fetch_add(static_cast<long>(i * 8 + j), std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(sum.load(), 64L * 63L / 2L);
}

TEST(ThreadPool, NegativeThreadCountMeansHardwareDefault) {
  ThreadPool pool(-1);
  EXPECT_GE(pool.threadCount(), 0);  // hw-1, possibly 0 on a 1-core box
  std::atomic<int> n{0};
  pool.parallelFor(32, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 32);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

}  // namespace
}  // namespace tc
