/// \file charcache_test.cpp
/// \brief Characterization-cache contracts (the `charcache` ctest label):
///
///  - the CharConfig digest covers EVERY knob, and the memo keys on it —
///    two configs at one PVT can never alias to one cached library (the
///    PR's headline bugfix);
///  - a failed characterization never poisons the shared-future memo, even
///    under concurrent waiters: every in-flight caller sees the failure,
///    and a later retry re-characterizes and succeeds;
///  - disk-cache writes are crash-safe: a torn (pre-atomic-rename) entry
///    is rejected and falls back to re-characterization, a writer that
///    dies before the rename leaves no visible entry, and every prefix
///    truncation of a cache file is caught cleanly (TC_CHAR_FAULT hooks);
///  - the adaptive characterizer meets its accuracy contract vs the
///    full-grid golden: max abs table error <= errorTolPs and ZERO
///    optimistic LVF sigma, and errorTolPs = 0 reproduces the golden
///    bitwise.
///
/// Each TEST runs in its own process (gtest_discover_tests), so setenv
/// for TC_CHAR_FAULT / TC_LIB_CACHE_DIR cannot leak across tests.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "liberty/builder.h"
#include "liberty/serialize.h"
#include "util/diag.h"
#include "util/log.h"

namespace tc {
namespace {

/// Private cache dir per test process so no other process's entries (or
/// leftovers from a previous run) can satisfy a disk probe.
std::string freshCacheDir(const char* tag) {
  const std::string dir = std::string(::testing::TempDir()) + "charcache_" +
                          tag + "." + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  ::setenv("TC_LIB_CACHE_DIR", dir.c_str(), 1);
  return dir;
}

/// Cheap config for the memo tests: quick grids, no flops (LatchSim is the
/// expensive part of a quick build). The distinctive lvfSigmaScale keeps
/// these keys disjoint from anything another suite may have cached.
CharConfig cheapConfig(double sigmaScale = 1.0) {
  CharConfig cfg;
  cfg.quick = true;
  cfg.flopDrives = {};
  cfg.lvfSigmaScale = sigmaScale;
  return cfg;
}

/// Hand-built micro library (the snapshot_test corruption idiom): a few KB
/// on disk, so exhaustive per-byte sweeps stay cheap.
std::shared_ptr<Library> microLibrary() {
  auto lib = std::make_shared<Library>(
      "micro", LibraryPvt{ProcessCorner::kTT, 0.9, 25.0});
  Axis slew({10.0, 100.0});
  Axis load({1.0, 10.0});
  Cell inv;
  inv.name = "INV_X1_SVT";
  inv.footprint = "INV";
  TimingArc arc;
  std::vector<double> vals{20.0, 30.0, 40.0, 60.0};
  std::vector<double> sig{2.0, 3.0, 4.0, 6.0};
  arc.rise = {Table2D(slew, load, vals), Table2D(slew, load, vals)};
  arc.fall = arc.rise;
  arc.riseLvf = {Table2D(slew, load, sig), Table2D(slew, load, sig)};
  arc.fallLvf = arc.riseLvf;
  inv.arcs.push_back(arc);
  lib->addCell(inv);
  return lib;
}

std::string bodyBytes(const Library& lib) {
  std::ostringstream os;
  writeLibraryBody(os, lib);
  return os.str();
}

// --- digest / memo-key coverage --------------------------------------------

TEST(CharDigest, CoversEveryKnob) {
  const CharConfig base;
  const std::uint64_t d0 = charConfigDigest(base);
  EXPECT_EQ(d0, charConfigDigest(CharConfig{}));  // deterministic

  std::vector<CharConfig> variants(12, base);
  variants[0].slews.push_back(200.0);
  variants[1].loadsX1[0] = 1.5;
  variants[2].vts = {VtClass::kSvt};
  variants[3].combDrives = {1, 2};
  variants[4].flopDrives = {};
  variants[5].mismatch.avtMvUm = 3.0;
  variants[6].mismatch.lengthUm = 0.028;
  variants[7].lvfSigmaScale = 1.5;
  variants[8].quick = true;
  variants[9].adaptive = true;
  variants[10].errorTolPs = 2.0;
  variants[10].adaptive = true;
  variants[11].sigmaGuardband = 1.5;
  std::vector<std::uint64_t> seen{d0};
  for (std::size_t i = 0; i < variants.size(); ++i) {
    SCOPED_TRACE("variant " + std::to_string(i));
    const std::uint64_t d = charConfigDigest(variants[i]);
    for (std::uint64_t prev : seen) EXPECT_NE(d, prev);
    seen.push_back(d);
  }
  // seedPerAxis is a knob too.
  CharConfig seeds = base;
  seeds.seedPerAxis = 4;
  EXPECT_NE(charConfigDigest(seeds), d0);
}

TEST(CharDigest, CachePathEmbedsDigestAndVersion) {
  const LibraryPvt pvt{};
  CharConfig a, b;
  b.lvfSigmaScale = 2.0;
  const std::string pa = libraryCachePath(pvt, charConfigDigest(a));
  const std::string pb = libraryCachePath(pvt, charConfigDigest(b));
  EXPECT_NE(pa, pb);
  EXPECT_NE(pa.find("_cfg"), std::string::npos);
}

TEST(CharMemo, DistinctConfigsAtOnePvtYieldDistinctLibraries) {
  LogCapture quiet;
  freshCacheDir("distinct");
  const LibraryPvt pvt{};
  // Identical grids/mode, different mismatch physics: exactly the aliasing
  // the old {pvt, quick} key collapsed.
  const auto libA = characterizedLibrary(pvt, cheapConfig(1.0));
  const auto libB = characterizedLibrary(pvt, cheapConfig(2.0));
  ASSERT_NE(libA, nullptr);
  ASSERT_NE(libB, nullptr);
  EXPECT_NE(libA.get(), libB.get());
  // The doubled sigma scale must be visible in the LVF tables.
  const Cell& a = libA->cellByName("INV_X1_SVT");
  const Cell& b = libB->cellByName("INV_X1_SVT");
  EXPECT_GT(b.arcs[0].riseLvf.lateAt(50.0, 4.0),
            1.5 * a.arcs[0].riseLvf.lateAt(50.0, 4.0));
  // And re-requesting either config shares the memoized instance.
  EXPECT_EQ(characterizedLibrary(pvt, cheapConfig(1.0)).get(), libA.get());
}

// --- memo failure semantics -------------------------------------------------

TEST(CharMemo, FailedBuildDoesNotPoisonMemo) {
  LogCapture quiet;
  freshCacheDir("poison");
  const LibraryPvt pvt{};
  const CharConfig cfg = cheapConfig(1.25);
  ::setenv("TC_CHAR_FAULT", "build_fail", 1);
  EXPECT_THROW(characterizedLibrary(pvt, cfg), std::runtime_error);
  // Same key again while still failing: a fresh attempt, a fresh throw —
  // not a memoized broken future, not a memoized success.
  EXPECT_THROW(characterizedLibrary(pvt, cfg), std::runtime_error);
  ::unsetenv("TC_CHAR_FAULT");
  const auto lib = characterizedLibrary(pvt, cfg);
  ASSERT_NE(lib, nullptr);
  EXPECT_GT(lib->cellCount(), 0);
}

TEST(CharMemo, ConcurrentWaitersAllSeeFailureAndRetrySucceeds) {
  LogCapture quiet;
  freshCacheDir("waiters");
  const LibraryPvt pvt{};
  const CharConfig cfg = cheapConfig(1.5);
  ::setenv("TC_CHAR_FAULT", "build_fail", 1);
  constexpr int kThreads = 8;
  std::atomic<int> threw{0}, returned{0};
  {
    std::vector<std::thread> ts;
    for (int i = 0; i < kThreads; ++i)
      ts.emplace_back([&] {
        try {
          (void)characterizedLibrary(pvt, cfg);
          returned.fetch_add(1);
        } catch (const std::exception&) {
          threw.fetch_add(1);
        }
      });
    for (auto& t : ts) t.join();
  }
  // Every caller — the builder and every waiter on its shared future, plus
  // any late arrival that became a fresh builder after the erase — fails
  // while the fault is armed. None may observe a phantom success.
  EXPECT_EQ(threw.load(), kThreads);
  EXPECT_EQ(returned.load(), 0);

  ::unsetenv("TC_CHAR_FAULT");
  std::vector<std::shared_ptr<const Library>> libs(kThreads);
  {
    std::vector<std::thread> ts;
    for (int i = 0; i < kThreads; ++i)
      ts.emplace_back([&, i] { libs[static_cast<std::size_t>(i)] =
                                   characterizedLibrary(pvt, cfg); });
    for (auto& t : ts) t.join();
  }
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_NE(libs[static_cast<std::size_t>(i)], nullptr);
    // One build, one immutable instance, shared by all retry waiters.
    EXPECT_EQ(libs[static_cast<std::size_t>(i)].get(), libs[0].get());
  }
}

// --- crash-safe disk writes -------------------------------------------------

TEST(CharDisk, TornWriteIsRejectedAndRewriteRecovers) {
  LogCapture quiet;
  const std::string dir = freshCacheDir("torn");
  const auto lib = microLibrary();
  const std::string path =
      libraryCachePath(lib->pvt(), charConfigDigest(CharConfig{}));

  ::setenv("TC_CHAR_FAULT", "torn_write", 1);
  EXPECT_FALSE(writeLibraryFile(*lib, path));
  ::unsetenv("TC_CHAR_FAULT");
  // The torn entry exists at the final path — exactly what a pre-atomic
  // writer could leave — and the reader must reject it with a diagnostic,
  // which is the characterizedLibrary() signal to re-characterize.
  ASSERT_TRUE(std::filesystem::exists(path));
  DiagnosticSink sink;
  sink.setEcho(false);
  EXPECT_EQ(readLibraryFile(path, &sink), nullptr);
  EXPECT_GT(sink.errorCount(), 0);

  // The recovery a fresh builder performs: overwrite with a good entry.
  ASSERT_TRUE(writeLibraryFile(*lib, path));
  const auto back = readLibraryFile(path);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(bodyBytes(*back), bodyBytes(*lib));
}

TEST(CharDisk, SkipRenameLeavesNoVisibleEntry) {
  LogCapture quiet;
  const std::string dir = freshCacheDir("rename");
  const auto lib = microLibrary();
  const std::string path =
      libraryCachePath(lib->pvt(), charConfigDigest(CharConfig{}));

  ::setenv("TC_CHAR_FAULT", "skip_rename", 1);
  EXPECT_FALSE(writeLibraryFile(*lib, path));
  ::unsetenv("TC_CHAR_FAULT");
  // Writer died between temp write and rename: the final path must not
  // exist (readers see a routine miss, never a partial file).
  EXPECT_FALSE(std::filesystem::exists(path));
  DiagnosticSink sink;
  sink.setEcho(false);
  EXPECT_EQ(readLibraryFile(path, &sink), nullptr);
  EXPECT_EQ(sink.errorCount(), 0);  // a miss is a note, not an error

  // A successful write cleans up after itself: entry present, no .tmp
  // residue left in the cache dir (the orphan from the faulted attempt is
  // overwritten by this process's own temp name, then renamed away).
  ASSERT_TRUE(writeLibraryFile(*lib, path));
  EXPECT_TRUE(std::filesystem::exists(path));
  int tmpFiles = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir))
    if (e.path().filename().string().find(".tmp.") != std::string::npos)
      ++tmpFiles;
  EXPECT_EQ(tmpFiles, 0);
}

TEST(CharDisk, EveryPrefixTruncationIsCaughtCleanly) {
  LogCapture quiet;
  freshCacheDir("trunc");
  const auto lib = microLibrary();
  const std::string path =
      libraryCachePath(lib->pvt(), charConfigDigest(CharConfig{}));
  ASSERT_TRUE(writeLibraryFile(*lib, path));
  std::string good;
  {
    std::ifstream is(path, std::ios::binary);
    good.assign(std::istreambuf_iterator<char>(is),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(good.size(), 16u);
  ASSERT_LT(good.size(), 64u * 1024);
  ASSERT_NE(readLibraryFile(path), nullptr);

  const std::string tornPath = path + ".torn";
  for (std::size_t n = 0; n < good.size(); ++n) {
    std::ofstream os(tornPath, std::ios::binary | std::ios::trunc);
    os.write(good.data(), static_cast<std::streamsize>(n));
    os.close();
    DiagnosticSink sink;
    sink.setEcho(false);
    ASSERT_EQ(readLibraryFile(tornPath, &sink), nullptr)
        << "prefix of " << n << " bytes parsed as a library";
    EXPECT_GT(sink.diagnostics().size(), 0u) << "silent nullptr at " << n;
  }
}

// --- adaptive accuracy vs the full-grid golden ------------------------------

/// Small-but-real oracle config: one Vt, X1 only, no flops, 6x6 grid — big
/// enough for the active learner to skip points, small enough for a test.
CharConfig oracleConfig() {
  CharConfig cfg;
  cfg.slews = {12.0, 30.0, 55.0, 85.0, 125.0, 170.0};
  cfg.loadsX1 = {1.0, 2.5, 5.0, 9.0, 15.0, 24.0};
  cfg.vts = {VtClass::kSvt};
  cfg.combDrives = {1};
  cfg.flopDrives = {};
  return cfg;
}

TEST(CharAdaptive, MeetsToleranceWithZeroOptimisticSigma) {
  LogCapture quiet;
  const LibraryPvt pvt{};
  const CharConfig golden = oracleConfig();
  CharConfig adaptive = golden;
  adaptive.adaptive = true;
  adaptive.errorTolPs = 3.0;

  const auto g = buildLibrary(pvt, golden);
  const auto a = buildLibrary(pvt, adaptive);
  ASSERT_EQ(g->cellCount(), a->cellCount());

  double maxErr = 0.0, maxOptimism = 0.0;
  auto scanErr = [&](const Table2D& gt, const Table2D& at) {
    for (std::size_t i = 0; i < gt.xAxis().size(); ++i)
      for (std::size_t j = 0; j < gt.yAxis().size(); ++j)
        maxErr = std::max(maxErr, std::fabs(gt.at(i, j) - at.at(i, j)));
  };
  auto scanSigma = [&](const Table2D& gt, const Table2D& at) {
    for (std::size_t i = 0; i < gt.xAxis().size(); ++i)
      for (std::size_t j = 0; j < gt.yAxis().size(); ++j)
        maxOptimism = std::max(maxOptimism, gt.at(i, j) - at.at(i, j));
  };
  for (int ci = 0; ci < g->cellCount(); ++ci) {
    const Cell& gc = g->cell(ci);
    const Cell& ac = a->cell(ci);
    ASSERT_EQ(gc.name, ac.name);
    if (gc.isBuffer) continue;  // composed cells compound two stages' error
    for (std::size_t k = 0; k < gc.arcs.size(); ++k) {
      scanErr(gc.arcs[k].rise.delay, ac.arcs[k].rise.delay);
      scanErr(gc.arcs[k].rise.slew, ac.arcs[k].rise.slew);
      scanErr(gc.arcs[k].fall.delay, ac.arcs[k].fall.delay);
      scanErr(gc.arcs[k].fall.slew, ac.arcs[k].fall.slew);
      scanSigma(gc.arcs[k].riseLvf.sigmaEarly, ac.arcs[k].riseLvf.sigmaEarly);
      scanSigma(gc.arcs[k].riseLvf.sigmaLate, ac.arcs[k].riseLvf.sigmaLate);
      scanSigma(gc.arcs[k].fallLvf.sigmaEarly, ac.arcs[k].fallLvf.sigmaEarly);
      scanSigma(gc.arcs[k].fallLvf.sigmaLate, ac.arcs[k].fallLvf.sigmaLate);
    }
  }
  EXPECT_LE(maxErr, adaptive.errorTolPs)
      << "adaptive tables violate the accuracy contract";
  EXPECT_LE(maxOptimism, 1e-9)
      << "adaptive LVF sigma optimistic vs golden by " << maxOptimism;
}

TEST(CharAdaptive, ZeroToleranceReproducesGoldenBitwise) {
  LogCapture quiet;
  const LibraryPvt pvt{};
  CharConfig golden;
  golden.vts = {VtClass::kSvt};
  golden.combDrives = {1};
  golden.flopDrives = {};
  CharConfig zeroTol = golden;
  zeroTol.adaptive = true;
  zeroTol.errorTolPs = 0.0;

  const auto g = buildLibrary(pvt, golden);
  const auto z = buildLibrary(pvt, zeroTol);
  EXPECT_EQ(bodyBytes(*g), bodyBytes(*z))
      << "full-accuracy adaptive settings must be a bitwise no-op";
}

}  // namespace
}  // namespace tc
