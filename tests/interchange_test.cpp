#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "interconnect/spef.h"
#include "liberty/builder.h"
#include "liberty/liberty_writer.h"
#include "liberty/serialize.h"
#include "network/netgen.h"
#include "network/verilog.h"
#include "sta/engine.h"

namespace tc {
namespace {

std::shared_ptr<const Library> lib() {
  return characterizedLibrary(LibraryPvt{}, true);
}

// ---------------------------------------------------------------------------
// Verilog round trip
// ---------------------------------------------------------------------------

TEST(Verilog, WriterEmitsRecognizableStructure) {
  Netlist nl = generatePipeline(lib(), 1, 3);
  const std::string v = toVerilog(nl, "pipe");
  EXPECT_NE(v.find("module pipe ("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("DFF_X1_SVT launch0 (.D("), std::string::npos);
  EXPECT_NE(v.find(".CK("), std::string::npos);
  EXPECT_NE(v.find(".Q("), std::string::npos);
  EXPECT_NE(v.find("input clk;"), std::string::npos);
}

TEST(Verilog, RoundTripPreservesStructureAndTiming) {
  auto L = lib();
  Netlist orig = generateBlock(L, profileTiny());
  const std::string text = toVerilog(orig);

  Netlist back = parseVerilog(text, L);
  EXPECT_EQ(back.instanceCount(), orig.instanceCount());
  EXPECT_EQ(back.portCount(), orig.portCount());
  // Clocks and case analysis are SDC-side: re-declare, then validate.
  for (const auto& c : orig.clocks()) {
    for (PortId p = 0; p < back.portCount(); ++p)
      if (back.port(p).name == orig.port(c.port).name) {
        ClockDef cd = c;
        cd.port = p;
        back.defineClock(cd);
      }
  }
  EXPECT_NO_THROW(back.validate());

  // Timing equivalence: same WNS through the round trip.
  Scenario sc;
  sc.lib = L;
  StaEngine a(orig, sc);
  a.run();
  StaEngine b(back, sc);
  b.run();
  EXPECT_NEAR(a.wns(Check::kSetup), b.wns(Check::kSetup), 1e-6);
  EXPECT_NEAR(a.tns(Check::kSetup), b.tns(Check::kSetup), 1e-6);
}

TEST(Verilog, ParserRejectsGarbage) {
  auto L = lib();
  EXPECT_THROW(parseVerilog("module x (; endmodule", L), std::runtime_error);
  EXPECT_THROW(parseVerilog("module x (a); input a; NOPE_CELL u1 (.A(a));"
                            " endmodule",
                            L),
               std::runtime_error);
  EXPECT_THROW(parseVerilog("module x (a); input a;", L), std::runtime_error);
}

TEST(Verilog, SdcSideCarriesClocksAndCaseAnalysis) {
  Netlist nl = generatePipeline(lib(), 1, 2);
  std::ostringstream os;
  writeSdcLike(nl, os);
  const std::string sdc = os.str();
  EXPECT_NE(sdc.find("create_clock -name clk -period 0.8"),
            std::string::npos);
  EXPECT_NE(sdc.find("set_case_analysis"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SPEF
// ---------------------------------------------------------------------------

TEST(Spef, EmitsWellFormedSections) {
  auto L = lib();
  Netlist nl = generatePipeline(L, 1, 2);
  Extractor ex(nl, BeolStack::forNode(techNode(28)));
  ExtractionOptions opt;
  const std::string spef = toSpef(nl, ex, opt, "pipe");
  EXPECT_NE(spef.find("*SPEF"), std::string::npos);
  EXPECT_NE(spef.find("*R_UNIT 1 KOHM"), std::string::npos);
  EXPECT_NE(spef.find("*NAME_MAP"), std::string::npos);
  EXPECT_NE(spef.find("*D_NET"), std::string::npos);
  EXPECT_NE(spef.find("*CAP"), std::string::npos);
  EXPECT_NE(spef.find("*RES"), std::string::npos);
  // One *D_NET per net, one *END per *D_NET.
  std::size_t dnets = 0, ends = 0, pos = 0;
  while ((pos = spef.find("*D_NET", pos)) != std::string::npos) {
    ++dnets;
    pos += 6;
  }
  pos = 0;
  while ((pos = spef.find("*END", pos)) != std::string::npos) {
    ++ends;
    pos += 4;
  }
  EXPECT_EQ(dnets, static_cast<std::size_t>(nl.netCount()));
  EXPECT_EQ(ends, dnets);
}

TEST(Spef, SensitivityFlavorAnnotatesSigmas) {
  auto L = lib();
  Netlist nl = generatePipeline(L, 1, 2);
  Extractor ex(nl, BeolStack::forNode(techNode(20)));  // DP layers: big sigma
  ExtractionOptions opt;
  std::ostringstream os;
  writeSensitivitySpef(nl, ex, opt, os);
  const std::string sspef = os.str();
  EXPECT_NE(sspef.find("*SC"), std::string::npos);
  EXPECT_NE(sspef.find("SSPEF"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Liberty text writer
// ---------------------------------------------------------------------------

TEST(LibertyWriter, HeaderAndCellsPresent) {
  const std::string text = toLiberty(*lib(), 12);
  EXPECT_NE(text.find("library (tc28_TT_0.90V_25C)"), std::string::npos);
  EXPECT_NE(text.find("delay_model : table_lookup"), std::string::npos);
  EXPECT_NE(text.find("lu_table_template (nldm_template)"),
            std::string::npos);
  EXPECT_NE(text.find("cell (INV_X1_ULVT)"), std::string::npos);
  EXPECT_NE(text.find("cell_rise (nldm_template)"), std::string::npos);
  EXPECT_NE(text.find("ocv_sigma_cell_rise"), std::string::npos);
  EXPECT_NE(text.find("timing_sense : negative_unate"), std::string::npos);
}

TEST(LibertyWriter, SequentialCellsHaveFfGroup) {
  const std::string text = toLiberty(*lib());
  EXPECT_NE(text.find("ff (IQ, IQN)"), std::string::npos);
  EXPECT_NE(text.find("timing_type : setup_rising"), std::string::npos);
  EXPECT_NE(text.find("timing_type : rising_edge"), std::string::npos);
  EXPECT_NE(text.find("clock : true"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Binary library cache round trip
// ---------------------------------------------------------------------------

TEST(Serialize, LibraryRoundTripExact) {
  auto L = lib();
  const std::string path = "/tmp/tc_libcache/test_roundtrip.tclib";
  ASSERT_TRUE(writeLibraryFile(*L, path));
  auto back = readLibraryFile(path);
  ASSERT_NE(back, nullptr);
  ASSERT_EQ(back->cellCount(), L->cellCount());
  for (int i = 0; i < L->cellCount(); ++i) {
    const Cell& a = L->cell(i);
    const Cell& b = back->cell(i);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.vt, b.vt);
    EXPECT_DOUBLE_EQ(a.pinCap, b.pinCap);
    EXPECT_DOUBLE_EQ(a.leakagePower, b.leakagePower);
    ASSERT_EQ(a.arcs.size(), b.arcs.size());
    for (std::size_t k = 0; k < a.arcs.size(); ++k) {
      EXPECT_DOUBLE_EQ(a.arcs[k].rise.delayAt(40, 5),
                       b.arcs[k].rise.delayAt(40, 5));
      EXPECT_DOUBLE_EQ(a.arcs[k].riseLvf.lateAt(40, 5),
                       b.arcs[k].riseLvf.lateAt(40, 5));
    }
    EXPECT_EQ(a.flop.has_value(), b.flop.has_value());
    if (a.flop) {
      EXPECT_DOUBLE_EQ(a.flop->setup, b.flop->setup);
      EXPECT_DOUBLE_EQ(a.flop->interdep.tauS, b.flop->interdep.tauS);
    }
  }
  EXPECT_EQ(back->aocv().lateDerate, L->aocv().lateDerate);
}

TEST(Serialize, RejectsCorruptedFile) {
  const std::string path = "/tmp/tc_libcache/test_corrupt.tclib";
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a library";
  }
  EXPECT_EQ(readLibraryFile(path), nullptr);
  EXPECT_EQ(readLibraryFile("/nonexistent/nowhere.tclib"), nullptr);
}

}  // namespace
}  // namespace tc
