#include <gtest/gtest.h>

#include <cmath>

#include "liberty/builder.h"
#include "network/netgen.h"
#include "sta/engine.h"

namespace tc {
namespace {

std::shared_ptr<const Library> lib() {
  return characterizedLibrary(LibraryPvt{}, true);
}

/// Incremental and full analysis must agree on every endpoint.
void expectEquivalent(StaEngine& inc, const Netlist& nl,
                      const Scenario& sc) {
  StaEngine full(nl, sc);
  full.run();
  ASSERT_EQ(inc.endpoints().size(), full.endpoints().size());
  for (std::size_t i = 0; i < full.endpoints().size(); ++i) {
    const auto& a = inc.endpoints()[i];
    const auto& b = full.endpoints()[i];
    EXPECT_EQ(a.vertex, b.vertex);
    if (std::isfinite(b.setupSlack)) {
      EXPECT_NEAR(a.setupSlack, b.setupSlack, 1e-6);
    }
    if (std::isfinite(b.holdSlack)) {
      EXPECT_NEAR(a.holdSlack, b.holdSlack, 1e-6);
    }
  }
  EXPECT_EQ(inc.drvViolations().size(), full.drvViolations().size());
}

TEST(Eco, VtSwapIncrementalMatchesFull) {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  Scenario sc;
  sc.lib = L;
  StaEngine inc(nl, sc);
  inc.run();
  // Swap a mid-design gate to ULVT.
  for (InstId i = 0; i < nl.instanceCount(); ++i) {
    const Cell& c = nl.cellOf(i);
    if (c.isSequential || c.footprint != "NAND2") continue;
    nl.swapCell(i, L->variant("NAND2", VtClass::kUlvt, c.drive));
    inc.updateAfterEco(inc.netsAffectedBySwap(i));
    break;
  }
  expectEquivalent(inc, nl, sc);
}

TEST(Eco, SizingIncrementalMatchesFull) {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  Scenario sc;
  sc.lib = L;
  StaEngine inc(nl, sc);
  inc.run();
  int edits = 0;
  for (InstId i = 0; i < nl.instanceCount() && edits < 5; ++i) {
    const Cell& c = nl.cellOf(i);
    if (c.isSequential || c.drive != 1 ||
        nl.instance(i).isClockTreeBuffer)
      continue;
    const int cand = L->variant(c.footprint, c.vt, 4);
    if (cand < 0) continue;
    nl.swapCell(i, cand);
    inc.updateAfterEco(inc.netsAffectedBySwap(i));
    ++edits;
  }
  ASSERT_GT(edits, 0);
  expectEquivalent(inc, nl, sc);
}

TEST(Eco, UsefulSkewIncrementalMatchesFull) {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  Scenario sc;
  sc.lib = L;
  StaEngine inc(nl, sc);
  inc.run();
  for (InstId i = 0; i < nl.instanceCount(); ++i) {
    if (!nl.isSequential(i)) continue;
    nl.instance(i).usefulSkew = 35.0;
    // The skew lands on the CK net arc: dirty the clock leaf net.
    inc.updateAfterEco({nl.instance(i).fanin[1]});
    break;
  }
  expectEquivalent(inc, nl, sc);
}

TEST(Eco, NdrPromotionIncrementalMatchesFull) {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  Scenario sc;
  sc.lib = L;
  StaEngine inc(nl, sc);
  inc.run();
  // Promote a handful of data nets.
  int edits = 0;
  for (NetId n = 0; n < nl.netCount() && edits < 6; ++n) {
    if (nl.net(n).driver < 0) continue;
    if (nl.instance(nl.net(n).driver).isClockTreeBuffer) continue;
    nl.net(n).ndrClass = 2;
    inc.updateAfterEco({n});
    ++edits;
  }
  ASSERT_GT(edits, 0);
  expectEquivalent(inc, nl, sc);
}

TEST(Eco, ManySequentialEcosStayExact) {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  Scenario sc;
  sc.lib = L;
  StaEngine inc(nl, sc);
  inc.run();
  Rng rng(77);
  int edits = 0;
  for (int e = 0; e < 30; ++e) {
    const InstId i = static_cast<InstId>(
        rng.below(static_cast<std::uint64_t>(nl.instanceCount())));
    const Cell& c = nl.cellOf(i);
    if (c.isSequential || nl.instance(i).isClockTreeBuffer) continue;
    const int cand =
        L->variant(c.footprint, static_cast<VtClass>(rng.below(4)), c.drive);
    if (cand < 0 || cand == nl.instance(i).cellIndex) continue;
    nl.swapCell(i, cand);
    inc.updateAfterEco(inc.netsAffectedBySwap(i));
    ++edits;
  }
  ASSERT_GT(edits, 5);
  expectEquivalent(inc, nl, sc);
}

TEST(Eco, UpdateBeforeRunFallsBackToFull) {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  Scenario sc;
  sc.lib = L;
  StaEngine inc(nl, sc);
  inc.updateAfterEco({0});  // never ran: must behave like run()
  expectEquivalent(inc, nl, sc);
}

TEST(Eco, AffectedNetsOfSwap) {
  auto L = lib();
  Netlist nl = generatePipeline(L, 1, 3);
  Scenario sc;
  sc.lib = L;
  StaEngine eng(nl, sc);
  // Gate g0_1 (NAND2): two fanin nets + one fanout net.
  for (InstId i = 0; i < nl.instanceCount(); ++i) {
    if (nl.instance(i).name == "g0_1") {
      const auto nets = eng.netsAffectedBySwap(i);
      EXPECT_EQ(nets.size(), 3u);
    }
  }
}

}  // namespace
}  // namespace tc
