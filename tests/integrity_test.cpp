/// \file integrity_test.cpp
/// \brief Units for the design-integrity subsystem: Status/Result,
/// DiagnosticSink, log capture, recoverable netlist construction, and
/// every lint rule.

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "liberty/builder.h"
#include "network/netgen.h"
#include "network/verilog.h"
#include "sta/engine.h"
#include "sta/lint.h"
#include "util/log.h"
#include "util/status.h"

namespace tc {
namespace {

std::shared_ptr<const Library> lib() {
  static std::shared_ptr<const Library> L =
      characterizedLibrary(LibraryPvt{}, true);
  return L;
}

// --- Status / Result -------------------------------------------------------

TEST(Status, OkAndFailure) {
  const Status ok = Status::okStatus();
  EXPECT_TRUE(ok.ok());
  const Status bad = Status::failure(DiagCode::kNetBadId, "no such net");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), DiagCode::kNetBadId);
  EXPECT_NE(bad.str().find("NET_BAD_ID"), std::string::npos);
}

TEST(Result, ValueAndError) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  Result<int> e = Status::failure(DiagCode::kSpefBadNumber, "nope");
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), DiagCode::kSpefBadNumber);
}

// --- DiagnosticSink --------------------------------------------------------

TEST(DiagnosticSink, CountsFirstsAndSeverities) {
  DiagnosticSink sink;
  sink.setEcho(false);
  sink.error(DiagCode::kVerilogSyntax, "bad token", "top", 12);
  sink.warn(DiagCode::kLintLoopBroken, "loop", "u1");
  sink.note(DiagCode::kLibVersionMismatch, "stale cache");
  EXPECT_EQ(sink.errorCount(), 1);
  EXPECT_EQ(sink.warningCount(), 1);
  EXPECT_TRUE(sink.hasErrors());
  EXPECT_EQ(sink.count(DiagCode::kLintLoopBroken), 1);
  EXPECT_EQ(sink.count(DiagCode::kSpefSyntax), 0);
  Diagnostic d;
  ASSERT_TRUE(sink.first(DiagCode::kVerilogSyntax, &d));
  EXPECT_EQ(d.line, 12);
  EXPECT_EQ(d.entity, "top");
  EXPECT_NE(d.str().find("VERILOG_SYNTAX"), std::string::npos);
  EXPECT_NE(d.str().find("line 12"), std::string::npos);
  sink.clear();
  EXPECT_FALSE(sink.hasErrors());
  EXPECT_TRUE(sink.diagnostics().empty());
}

TEST(DiagnosticSink, EchoesThroughLogCapture) {
  LogCapture cap;
  DiagnosticSink sink;  // echo defaults on
  sink.error(DiagCode::kSpefSyntax, "garbage at top", "n42", 3);
  EXPECT_TRUE(cap.contains("SPEF_SYNTAX"));
  EXPECT_TRUE(cap.contains("n42"));
  EXPECT_EQ(cap.countAt(LogLevel::kError), 1);
}

// --- thread-safe logging ---------------------------------------------------

TEST(Log, ConcurrentWritersProduceIntactLines) {
  LogCapture cap;
  constexpr int kThreads = 8, kPerThread = 50;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i)
        TC_INFO("thread %d msg %d tail", t, i);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(cap.lines().size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  // No interleaved/torn lines: every message kept its tail marker.
  for (const auto& [level, line] : cap.lines()) {
    (void)level;
    EXPECT_NE(line.find("tail"), std::string::npos) << line;
  }
}

// --- recoverable netlist construction --------------------------------------

TEST(NetlistTryApi, RangeErrorsReturnStatusNotThrow) {
  Netlist nl(lib());
  InstId id = -1;
  EXPECT_FALSE(nl.tryAddInstance("u_bad", 99999, &id).ok());
  ASSERT_TRUE(nl.tryAddInstance("u1", 0, &id).ok());
  EXPECT_EQ(nl.tryConnectInput(id, 42, 0).ok(), false);   // bad pin
  EXPECT_EQ(nl.tryConnectInput(id, 0, 999).ok(), false);  // bad net
  const NetId n = nl.addNet("n1");
  EXPECT_TRUE(nl.tryConnectInput(id, 0, n).ok());
  EXPECT_TRUE(nl.tryConnectOutput(id, n).ok());
  // Second driver on the same net: recoverable failure with the code.
  InstId id2 = -1;
  ASSERT_TRUE(nl.tryAddInstance("u2", 0, &id2).ok());
  const Status s = nl.tryConnectOutput(id2, n);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), DiagCode::kNetDoubleDriver);
}

TEST(NetlistValidate, SinkVariantReportsInsteadOfThrowing) {
  Netlist nl(lib());
  InstId id = -1;
  ASSERT_TRUE(nl.tryAddInstance("u1", 0, &id).ok());
  const NetId n = nl.addNet("n1");
  ASSERT_TRUE(nl.tryConnectOutput(id, n).ok());
  const PortId po = nl.addPort("po", false);
  ASSERT_TRUE(nl.tryConnectPortToNet(po, n).ok());
  // Input pin left floating -> one violation, no exception.
  DiagnosticSink sink;
  sink.setEcho(false);
  EXPECT_FALSE(nl.validate(sink));
  EXPECT_GE(sink.count(DiagCode::kNetFloatingInput), 1);
  // Quarantining the pin makes the same netlist validate clean.
  nl.quarantinePin(id, 0);
  DiagnosticSink sink2;
  sink2.setEcho(false);
  EXPECT_TRUE(nl.validate(sink2));
}

// --- lint rules ------------------------------------------------------------

TEST(Lint, BreaksTwoInverterLoop) {
  const auto invs = lib()->variants("INV");
  ASSERT_FALSE(invs.empty());
  const int inv = invs.front();
  Netlist nl(lib());
  InstId a = -1, b = -1;
  ASSERT_TRUE(nl.tryAddInstance("a", inv, &a).ok());
  ASSERT_TRUE(nl.tryAddInstance("b", inv, &b).ok());
  const NetId nab = nl.addNet("nab");
  const NetId nba = nl.addNet("nba");
  ASSERT_TRUE(nl.tryConnectOutput(a, nab).ok());
  ASSERT_TRUE(nl.tryConnectInput(b, 0, nab).ok());
  ASSERT_TRUE(nl.tryConnectOutput(b, nba).ok());
  ASSERT_TRUE(nl.tryConnectInput(a, 0, nba).ok());

  std::vector<InstId> order;
  EXPECT_FALSE(nl.tryTopoOrder(&order));
  DiagnosticSink sink;
  sink.setEcho(false);
  const LintReport rep = lintNetlist(nl, sink);
  EXPECT_EQ(rep.loopsBroken, 1);
  EXPECT_EQ(sink.count(DiagCode::kLintLoopBroken), 1);
  EXPECT_TRUE(nl.tryTopoOrder(&order));
  EXPECT_EQ(nl.quarantinedPins().size(), 1u);
}

TEST(Lint, QuarantinesFloatingAndUndrivenPins) {
  const auto invs = lib()->variants("INV");
  ASSERT_FALSE(invs.empty());
  const int inv = invs.front();
  Netlist nl(lib());
  InstId a = -1, b = -1;
  ASSERT_TRUE(nl.tryAddInstance("a", inv, &a).ok());  // floating input
  ASSERT_TRUE(nl.tryAddInstance("b", inv, &b).ok());  // undriven-net input
  const NetId n = nl.addNet("undriven");
  ASSERT_TRUE(nl.tryConnectInput(b, 0, n).ok());
  DiagnosticSink sink;
  sink.setEcho(false);
  const LintReport rep = lintNetlist(nl, sink);
  EXPECT_EQ(rep.danglingPinsQuarantined, 2);
  EXPECT_EQ(rep.undrivenNets, 1);
  EXPECT_TRUE(nl.isPinQuarantined(a, 0));
  EXPECT_TRUE(nl.isPinQuarantined(b, 0));
}

TEST(Lint, RepairsNonFiniteAndNonMonotoneTables) {
  Library L = *lib();  // mutable copy
  int target = -1;
  for (int ci = 0; ci < L.cellCount() && target < 0; ++ci)
    if (!L.cell(ci).arcs.empty() && !L.cell(ci).arcs[0].rise.empty())
      target = ci;
  ASSERT_GE(target, 0);
  Table2D& t = L.mutableCell(target).arcs[0].rise.delay;
  ASSERT_GE(t.yAxis().size(), 2u);
  const double orig = t.at(0, 1);
  t.at(0, 0) = std::numeric_limits<double>::quiet_NaN();  // non-finite
  t.at(0, 1) = -1.0;                                      // decreasing in load

  DiagnosticSink sink;
  sink.setEcho(false);
  const LibraryLintReport rep = lintLibrary(L, sink);
  EXPECT_GE(rep.nonFiniteEntriesRepaired, 1);
  EXPECT_GE(rep.tablesClamped, 1);
  EXPECT_GE(sink.count(DiagCode::kLintNonFiniteTable), 1);
  EXPECT_GE(sink.count(DiagCode::kLintNonMonotoneTable), 1);
  const Table2D& fixedT = L.cell(target).arcs[0].rise.delay;
  for (std::size_t i = 0; i < fixedT.xAxis().size(); ++i) {
    double run = -1e30;
    for (std::size_t j = 0; j < fixedT.yAxis().size(); ++j) {
      EXPECT_TRUE(std::isfinite(fixedT.at(i, j)));
      EXPECT_GE(fixedT.at(i, j), run);  // monotone along load
      run = fixedT.at(i, j);
    }
  }
  (void)orig;
}

TEST(Lint, CleanDesignStaysUntouched) {
  Netlist nl = generatePipeline(lib(), 1, 4);
  DiagnosticSink sink;
  sink.setEcho(false);
  const LintReport rep = lintNetlist(nl, sink);
  EXPECT_EQ(rep.loopsBroken, 0);
  EXPECT_EQ(rep.danglingPinsQuarantined, 0);
  EXPECT_TRUE(nl.quarantinedPins().empty());
  // A clean pipeline may legitimately have unloaded nets (none expected
  // here, but only errors would be alarming).
  EXPECT_EQ(sink.errorCount(), 0);
}

// --- engine NaN quarantine -------------------------------------------------

TEST(EngineQuarantine, QuarantinedPinSeededPessimistically) {
  Scenario sc;
  sc.lib = lib();
  Netlist nl = generatePipeline(lib(), 1, 5);
  // Quarantine one combinational input pin by hand.
  InstId victim = -1;
  for (InstId i = 0; i < nl.instanceCount(); ++i)
    if (!nl.isSequential(i) && !nl.instance(i).isClockTreeBuffer &&
        !nl.instance(i).fanin.empty()) {
      victim = i;
      break;
    }
  ASSERT_GE(victim, 0);
  nl.quarantinePin(victim, 0);

  StaEngine eng(nl, sc);
  eng.run();
  const VertexId v = eng.graph().inputVertex(victim, 0);
  // Late arrival borrowed at a full clock period; early at 0.
  EXPECT_NEAR(eng.timing(v).arr[0][0], eng.clockPeriod(), 1e-9);
  EXPECT_NEAR(eng.timing(v).arr[1][0], 0.0, 1e-9);
}

}  // namespace
}  // namespace tc
