#include "faultinject/mutators.h"

#include <cctype>
#include <cstdlib>
#include <random>
#include <sstream>
#include <utility>

namespace tc::faultinject {

const char* toString(Mutation m) {
  switch (m) {
    case Mutation::kTruncate: return "truncate";
    case Mutation::kTokenSwap: return "token-swap";
    case Mutation::kNumericPerturb: return "numeric-perturb";
    case Mutation::kDuplicateLine: return "duplicate-line";
    case Mutation::kDeleteLine: return "delete-line";
    case Mutation::kByteFlip: return "byte-flip";
  }
  return "?";
}

namespace {

using Rng = std::mt19937_64;

std::vector<std::string> toLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string l;
  while (std::getline(is, l)) lines.push_back(std::move(l));
  return lines;
}

std::string fromLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

/// Byte ranges [begin, end) of whitespace-separated tokens.
std::vector<std::pair<std::size_t, std::size_t>> tokenSpans(
    const std::string& text) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    const std::size_t b = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > b) spans.push_back({b, i});
  }
  return spans;
}

bool isNumberToken(const std::string& tok) {
  if (tok.empty()) return false;
  char* end = nullptr;
  std::strtod(tok.c_str(), &end);
  return end == tok.c_str() + tok.size();
}

std::string perturbNumber(const std::string& tok, Rng& rng) {
  switch (rng() % 6) {
    case 0: return "-" + tok;            // negate (negative R/C, delays)
    case 1: return tok + "e6";           // blow up magnitude
    case 2: return "nan";                // non-finite
    case 3: return "inf";
    case 4: return tok + "." + tok;      // malformed: two decimal points
    default: return "9" + tok + "9";     // perturb digits
  }
}

}  // namespace

std::string mutate(const std::string& text, Mutation m, std::uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(m) + 1);
  if (text.empty()) return text;
  switch (m) {
    case Mutation::kTruncate: {
      const std::size_t cut = rng() % text.size();
      return text.substr(0, cut);
    }
    case Mutation::kTokenSwap: {
      const auto spans = tokenSpans(text);
      if (spans.size() < 2) return text;
      std::size_t a = rng() % spans.size();
      std::size_t b = rng() % spans.size();
      if (a == b) b = (b + 1) % spans.size();
      if (a > b) std::swap(a, b);
      const std::string ta = text.substr(spans[a].first,
                                         spans[a].second - spans[a].first);
      const std::string tb = text.substr(spans[b].first,
                                         spans[b].second - spans[b].first);
      std::string out = text;
      // Replace b first so a's offsets stay valid.
      out.replace(spans[b].first, spans[b].second - spans[b].first, ta);
      out.replace(spans[a].first, spans[a].second - spans[a].first, tb);
      return out;
    }
    case Mutation::kNumericPerturb: {
      const auto spans = tokenSpans(text);
      std::vector<std::size_t> numeric;
      for (std::size_t i = 0; i < spans.size(); ++i)
        if (isNumberToken(text.substr(spans[i].first,
                                      spans[i].second - spans[i].first)))
          numeric.push_back(i);
      if (numeric.empty()) return text;
      const auto& sp = spans[numeric[rng() % numeric.size()]];
      const std::string tok = text.substr(sp.first, sp.second - sp.first);
      std::string out = text;
      out.replace(sp.first, sp.second - sp.first, perturbNumber(tok, rng));
      return out;
    }
    case Mutation::kDuplicateLine: {
      auto lines = toLines(text);
      if (lines.empty()) return text;
      const std::size_t i = rng() % lines.size();
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(i), lines[i]);
      return fromLines(lines);
    }
    case Mutation::kDeleteLine: {
      auto lines = toLines(text);
      if (lines.size() < 2) return text;
      lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(
                                      rng() % lines.size()));
      return fromLines(lines);
    }
    case Mutation::kByteFlip: {
      std::string out = text;
      const std::size_t i = rng() % out.size();
      out[i] = static_cast<char>(' ' + rng() % 95);  // printable ASCII
      return out;
    }
  }
  return text;
}

std::vector<MutantSpec> corpus(int perKind) {
  std::vector<MutantSpec> specs;
  for (int k = 0; k < kMutationCount; ++k)
    for (int s = 0; s < perKind; ++s)
      specs.push_back({static_cast<Mutation>(k),
                       static_cast<std::uint64_t>(s) + 1});
  return specs;
}

std::vector<char> mutateBinary(const std::vector<char>& bytes,
                               std::uint64_t seed) {
  Rng rng(seed * 0xD1B54A32D192ED03ull + 7);
  std::vector<char> out = bytes;
  if (out.empty()) return out;
  switch (rng() % 3) {
    case 0:  // truncate
      out.resize(rng() % out.size());
      break;
    case 1: {  // flip a handful of bytes
      const int flips = 1 + static_cast<int>(rng() % 8);
      for (int i = 0; i < flips; ++i)
        out[rng() % out.size()] ^= static_cast<char>(1 + rng() % 255);
      break;
    }
    default: {  // stomp a 4-byte word with a huge value (length inflation)
      if (out.size() >= 8) {
        const std::size_t off = rng() % (out.size() - 4);
        const std::uint32_t big = 0x7FFFFFFFu;
        for (int i = 0; i < 4; ++i)
          out[off + static_cast<std::size_t>(i)] =
              static_cast<char>((big >> (8 * i)) & 0xFF);
      }
      break;
    }
  }
  return out;
}

}  // namespace tc::faultinject
