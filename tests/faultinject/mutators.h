#pragma once
/// \file mutators.h
/// \brief Deterministic corpus mutators for the fault-injection harness.
///
/// Each mutator takes clean interchange text (Verilog, SPEF) and a seed
/// and produces a corrupted variant. Everything is driven by a seeded
/// mt19937_64, so a failing mutant is reproducible from its (kind, seed)
/// pair alone — the harness prints exactly that on failure.

#include <cstdint>
#include <string>
#include <vector>

namespace tc::faultinject {

enum class Mutation {
  kTruncate,        ///< cut the text at a random offset
  kTokenSwap,       ///< exchange two whitespace-separated tokens
  kNumericPerturb,  ///< replace a number (negate, scale, nan, malformed)
  kDuplicateLine,   ///< repeat a random line (duplicate nets/instances)
  kDeleteLine,      ///< drop a random line
  kByteFlip,        ///< overwrite one byte with a random printable char
};
inline constexpr int kMutationCount = 6;

const char* toString(Mutation m);

/// Apply one mutation. Deterministic: same (text, m, seed) -> same output.
std::string mutate(const std::string& text, Mutation m, std::uint64_t seed);

/// The standard corpus: every mutation kind x perKind seeds.
struct MutantSpec {
  Mutation kind;
  std::uint64_t seed = 0;
};
std::vector<MutantSpec> corpus(int perKind);

/// Binary corruption for serialized library files: truncation, byte
/// flips, or length-field inflation, selected by seed.
std::vector<char> mutateBinary(const std::vector<char>& bytes,
                               std::uint64_t seed);

}  // namespace tc::faultinject
