/// \file fault_injection_test.cpp
/// \brief Fault-injection harness: mutated interchange files and netlists
/// must never crash the readers or the engine — every failure surfaces as
/// a located diagnostic, and graceful degradation is boundedly pessimistic.
///
/// Built as its own ctest binary (label: faultinject) so it can also run
/// under a -DTC_SANITIZE=address,undefined build, where "no crash" becomes
/// "no memory error of any kind".

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <vector>

#include "faultinject/mutators.h"
#include "interconnect/extract.h"
#include "interconnect/spef.h"
#include "liberty/builder.h"
#include "liberty/serialize.h"
#include "network/netgen.h"
#include "network/verilog.h"
#include "sta/engine.h"
#include "sta/lint.h"
#include "util/log.h"
#include "util/thread_pool.h"

namespace tc {
namespace {

using faultinject::Mutation;
using faultinject::corpus;
using faultinject::mutate;
using faultinject::mutateBinary;
using faultinject::toString;

std::shared_ptr<const Library> lib() {
  static std::shared_ptr<const Library> L =
      characterizedLibrary(LibraryPvt{}, true);
  return L;
}

/// A rejected parse must tell the user *where*: at least one error carries
/// a line number or names the offending entity.
template <typename Sink>
bool hasLocatedError(const Sink& sink) {
  for (const auto& d : sink.diagnostics())
    if (d.severity == Severity::kError && (d.line > 0 || !d.entity.empty()))
      return true;
  return false;
}

// --- Verilog ---------------------------------------------------------------

TEST(FaultInjectVerilog, MutatedTextNeverCrashes) {
  LogCapture quiet;  // mutants are noisy by design; keep stderr clean
  Netlist clean = generateBlock(lib(), profileTiny());
  const std::string text = toVerilog(clean);
  int rejected = 0, accepted = 0;
  for (const auto& spec : corpus(14)) {  // 6 kinds x 14 = 84 mutants
    SCOPED_TRACE(std::string(toString(spec.kind)) + " seed " +
                 std::to_string(spec.seed));
    const std::string mut = mutate(text, spec.kind, spec.seed);
    DiagnosticSink sink;
    sink.setEcho(false);
    auto r = parseVerilog(mut, lib(), sink);
    if (r.ok()) {
      ++accepted;
    } else {
      ++rejected;
      EXPECT_GT(sink.errorCount(), 0) << "failed Result without diagnostics";
      EXPECT_TRUE(hasLocatedError(sink))
          << "rejection carries no line/entity context";
    }
  }
  // The corpus must actually exercise the error paths: most mutations of
  // most seeds corrupt the file, a few (e.g. swapping identical tokens)
  // are benign.
  EXPECT_GT(rejected, 20);
  RecordProperty("accepted", accepted);
  RecordProperty("rejected", rejected);
}

// --- SPEF ------------------------------------------------------------------

TEST(FaultInjectSpef, MutatedTextNeverCrashes) {
  LogCapture quiet;
  Netlist nl = generatePipeline(lib(), 2, 4);
  Extractor ex(nl, BeolStack::forNode(techNode(28)));
  const std::string text = toSpef(nl, ex, ExtractionOptions{});
  int rejected = 0, accepted = 0;
  for (const auto& spec : corpus(14)) {  // 84 mutants
    SCOPED_TRACE(std::string(toString(spec.kind)) + " seed " +
                 std::to_string(spec.seed));
    const std::string mut = mutate(text, spec.kind, spec.seed);
    DiagnosticSink sink;
    sink.setEcho(false);
    auto r = parseSpef(mut, sink);
    if (r.ok()) {
      ++accepted;
      // Degenerate-parasitic clamping: whatever survived holds no
      // negative or non-finite values.
      for (const auto& net : r.value().nets) {
        for (const auto& c : net.caps) {
          EXPECT_TRUE(std::isfinite(c.value));
          EXPECT_GE(c.value, 0.0);
        }
        for (const auto& rr : net.res) {
          EXPECT_TRUE(std::isfinite(rr.value));
          EXPECT_GE(rr.value, 0.0);
        }
      }
    } else {
      ++rejected;
      EXPECT_GT(sink.errorCount(), 0) << "failed Result without diagnostics";
      EXPECT_TRUE(hasLocatedError(sink))
          << "rejection carries no line/entity context";
    }
  }
  EXPECT_GT(rejected, 10);
  EXPECT_GT(accepted, 10);  // SPEF reader degrades more than it rejects
  RecordProperty("accepted", accepted);
  RecordProperty("rejected", rejected);
}

// --- Liberty binary --------------------------------------------------------

TEST(FaultInjectLiberty, MutatedBinaryNeverCrashes) {
  LogCapture quiet;
  const std::string dir = ::testing::TempDir();
  const std::string cleanPath = dir + "fi_clean.tclib";
  ASSERT_TRUE(writeLibraryFile(*lib(), cleanPath));
  std::vector<char> bytes;
  {
    std::ifstream is(cleanPath, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(bytes.empty());

  int rejected = 0, accepted = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    SCOPED_TRACE("binary seed " + std::to_string(seed));
    const auto mut = mutateBinary(bytes, seed);
    const std::string path = dir + "fi_mut.tclib";
    {
      std::ofstream os(path, std::ios::binary | std::ios::trunc);
      os.write(mut.data(), static_cast<std::streamsize>(mut.size()));
    }
    DiagnosticSink sink;
    sink.setEcho(false);
    auto L = readLibraryFile(path, &sink);
    if (L) {
      ++accepted;  // flip missed every load-bearing byte
    } else {
      ++rejected;
      EXPECT_GT(sink.diagnostics().size(), 0u)
          << "silent nullptr from mutated library file";
    }
    std::remove(path.c_str());
  }
  EXPECT_GT(rejected, 30);
  std::remove(cleanPath.c_str());
  RecordProperty("accepted", accepted);
  RecordProperty("rejected", rejected);
}

// --- In-memory netlist faults + bounded pessimism --------------------------

/// Inject a combinational loop into a pipeline lane, lint it, and verify
/// STA still runs with degraded WNS <= clean WNS (the quarantine contract).
TEST(FaultInjectNetlist, LoopInjectionDegradesBoundedly) {
  LogCapture quiet;
  Scenario sc;
  sc.lib = lib();

  Netlist clean = generatePipeline(lib(), 2, 6);
  StaEngine cleanEngine(clean, sc);
  cleanEngine.run();
  const Ps cleanWns = cleanEngine.wns(Check::kSetup);

  // Rewire: feed an early gate from a gate downstream of it in the same
  // lane (walk the fanout chain), closing a genuine combinational cycle.
  Netlist broken = generatePipeline(lib(), 2, 6);
  InstId early = -1;
  for (InstId i = 0; i < broken.instanceCount(); ++i)
    if (!broken.isSequential(i) && !broken.instance(i).isClockTreeBuffer) {
      early = i;
      break;
    }
  ASSERT_GE(early, 0);
  InstId late = early;
  for (int hop = 0; hop < 4; ++hop) {
    const NetId out = broken.instance(late).fanout;
    if (out < 0) break;
    InstId next = -1;
    for (const auto& s : broken.net(out).sinks)
      if (!broken.isSequential(s.inst)) next = s.inst;
    if (next < 0) break;
    late = next;
  }
  ASSERT_NE(early, late);
  ASSERT_GE(broken.instance(late).fanout, 0);
  broken.disconnectInput(early, 0);
  broken.connectInput(early, 0, broken.instance(late).fanout);
  std::vector<InstId> order;
  ASSERT_FALSE(broken.tryTopoOrder(&order)) << "injection failed to cycle";

  DiagnosticSink sink;
  sink.setEcho(false);
  const LintReport rep = lintNetlist(broken, sink);
  EXPECT_GE(rep.loopsBroken, 1);
  EXPECT_GE(sink.count(DiagCode::kLintLoopBroken), 1);
  EXPECT_TRUE(broken.tryTopoOrder(&order));

  StaEngine degraded(broken, sc);  // graph build must not throw now
  degraded.setDiagnosticSink(&sink);
  degraded.run();
  EXPECT_LE(degraded.wns(Check::kSetup), cleanWns + 1e-9);
}

/// Dangling-pin injection: disconnect inputs across the design; lint
/// quarantines each one and timing completes with bounded pessimism.
TEST(FaultInjectNetlist, DanglingPinsDegradeBoundedly) {
  LogCapture quiet;
  Scenario sc;
  sc.lib = lib();

  Netlist clean = generatePipeline(lib(), 3, 5);
  StaEngine cleanEngine(clean, sc);
  cleanEngine.run();
  const Ps cleanWns = cleanEngine.wns(Check::kSetup);

  Netlist broken = generatePipeline(lib(), 3, 5);
  int cut = 0;
  for (InstId i = 0; i < broken.instanceCount() && cut < 4; ++i) {
    if (broken.isSequential(i) || broken.instance(i).isClockTreeBuffer)
      continue;
    if ((i % 3) == 0) {
      broken.disconnectInput(i, 0);
      ++cut;
    }
  }
  ASSERT_GT(cut, 0);

  DiagnosticSink sink;
  sink.setEcho(false);
  const LintReport rep = lintNetlist(broken, sink);
  EXPECT_EQ(rep.danglingPinsQuarantined, cut);
  EXPECT_EQ(sink.count(DiagCode::kLintDanglingPinQuarantined), cut);

  StaEngine degraded(broken, sc);
  degraded.setDiagnosticSink(&sink);
  degraded.run();
  EXPECT_LE(degraded.wns(Check::kSetup), cleanWns + 1e-9);
}

/// A large randomized sweep of in-memory faults (dangling pins at varying
/// positions): zero crashes, every run produces finite WNS or drops the
/// endpoint with a diagnostic.
TEST(FaultInjectNetlist, RandomDisconnectSweepNeverCrashes) {
  LogCapture quiet;
  Scenario sc;
  sc.lib = lib();
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    SCOPED_TRACE("netlist seed " + std::to_string(seed));
    Netlist nl = generatePipeline(lib(), 2, 5, 800.0, seed);
    // Deterministically pick pins to cut from the seed.
    std::uint64_t x = seed * 0x2545F4914F6CDD1Dull;
    for (int k = 0; k < 3; ++k) {
      x ^= x >> 12; x ^= x << 25; x ^= x >> 27;
      const InstId i = static_cast<InstId>(x % static_cast<std::uint64_t>(
                                                   nl.instanceCount()));
      if (nl.isSequential(i) || nl.instance(i).isClockTreeBuffer) continue;
      if (nl.instance(i).fanin.empty()) continue;
      nl.disconnectInput(i, 0);
    }
    DiagnosticSink sink;
    sink.setEcho(false);
    lintNetlist(nl, sink);
    StaEngine eng(nl, sc);
    eng.setDiagnosticSink(&sink);
    eng.run();
    EXPECT_TRUE(std::isfinite(eng.wns(Check::kSetup)));
  }
}

// --- Parallel engine path --------------------------------------------------
// The same mutants through the pool-attached engine: no crash, no data race
// on the shared DiagnosticSink (this binary also runs under
// -DTC_SANITIZE=address,undefined in CI), and the degraded results stay
// bit-identical to the serial reference — graceful degradation must not
// become nondeterministic just because the sweep went parallel.

/// Build the seeded faulted pipeline of RandomDisconnectSweepNeverCrashes.
Netlist faultedPipeline(std::uint64_t seed) {
  Netlist nl = generatePipeline(lib(), 2, 5, 800.0, seed);
  std::uint64_t x = seed * 0x2545F4914F6CDD1Dull;
  for (int k = 0; k < 3; ++k) {
    x ^= x >> 12; x ^= x << 25; x ^= x >> 27;
    const InstId i = static_cast<InstId>(x % static_cast<std::uint64_t>(
                                                 nl.instanceCount()));
    if (nl.isSequential(i) || nl.instance(i).isClockTreeBuffer) continue;
    if (nl.instance(i).fanin.empty()) continue;
    nl.disconnectInput(i, 0);
  }
  return nl;
}

TEST(FaultInjectParallel, MutantSweepMatchesSerialUnderPool) {
  LogCapture quiet;
  Scenario sc;
  sc.lib = lib();
  ThreadPool pool(4);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("netlist seed " + std::to_string(seed));
    Netlist nl = faultedPipeline(seed);
    DiagnosticSink lintSink;
    lintSink.setEcho(false);
    lintNetlist(nl, lintSink);

    DiagnosticSink serialSink;
    serialSink.setEcho(false);
    StaEngine serial(nl, sc);
    serial.setDiagnosticSink(&serialSink);
    serial.run();

    DiagnosticSink parSink;
    parSink.setEcho(false);
    StaEngine par(nl, sc);
    par.setDiagnosticSink(&parSink);
    par.setThreadPool(&pool);
    par.run();

    EXPECT_EQ(serial.wns(Check::kSetup), par.wns(Check::kSetup));
    EXPECT_EQ(serial.wns(Check::kHold), par.wns(Check::kHold));
    EXPECT_EQ(serial.nanQuarantineCount(), par.nanQuarantineCount());
    ASSERT_EQ(serial.endpoints().size(), par.endpoints().size());
    for (std::size_t e = 0; e < serial.endpoints().size(); ++e) {
      EXPECT_EQ(serial.endpoints()[e].setupSlack,
                par.endpoints()[e].setupSlack);
      EXPECT_EQ(serial.endpoints()[e].holdSlack,
                par.endpoints()[e].holdSlack);
    }

    // The engine's own diagnostic stream (NaN quarantine, dropped
    // endpoints) must come out in the same order with the same text.
    const auto a = serialSink.diagnostics();
    const auto b = parSink.diagnostics();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t d = 0; d < a.size(); ++d) {
      EXPECT_EQ(a[d].code, b[d].code) << "diag " << d;
      EXPECT_EQ(a[d].message, b[d].message) << "diag " << d;
      EXPECT_EQ(a[d].entity, b[d].entity) << "diag " << d;
    }
  }
}

TEST(FaultInjectParallel, BrokenLoopNetlistSurvivesPoolAttachedRun) {
  LogCapture quiet;
  Scenario sc;
  sc.lib = lib();

  // Re-inject the combinational cycle of LoopInjectionDegradesBoundedly,
  // lint-break it, then run the degraded graph through the parallel path.
  Netlist broken = generatePipeline(lib(), 2, 6);
  InstId early = -1;
  for (InstId i = 0; i < broken.instanceCount(); ++i)
    if (!broken.isSequential(i) && !broken.instance(i).isClockTreeBuffer) {
      early = i;
      break;
    }
  ASSERT_GE(early, 0);
  InstId late = early;
  for (int hop = 0; hop < 4; ++hop) {
    const NetId out = broken.instance(late).fanout;
    if (out < 0) break;
    InstId next = -1;
    for (const auto& s : broken.net(out).sinks)
      if (!broken.isSequential(s.inst)) next = s.inst;
    if (next < 0) break;
    late = next;
  }
  ASSERT_NE(early, late);
  broken.disconnectInput(early, 0);
  broken.connectInput(early, 0, broken.instance(late).fanout);

  DiagnosticSink sink;
  sink.setEcho(false);
  const LintReport rep = lintNetlist(broken, sink);
  ASSERT_GE(rep.loopsBroken, 1);

  StaEngine serial(broken, sc);
  serial.setDiagnosticSink(&sink);
  serial.run();

  ThreadPool pool(4);
  DiagnosticSink parSink;
  parSink.setEcho(false);
  StaEngine par(broken, sc);
  par.setDiagnosticSink(&parSink);
  par.setThreadPool(&pool);
  par.run();

  EXPECT_EQ(serial.wns(Check::kSetup), par.wns(Check::kSetup));
  EXPECT_EQ(serial.tns(Check::kSetup), par.tns(Check::kSetup));
}

}  // namespace
}  // namespace tc
