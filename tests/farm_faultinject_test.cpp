/// \file farm_faultinject_test.cpp
/// \brief Farm fault-injection matrix (ctest label: farmfault). Each case
/// sets TC_FARM_FAULT (see tools/goalposts_worker.cpp) so workers crash,
/// freeze, stall, or corrupt their result frames at chosen points, and
/// asserts the dispatcher's two promises:
///
///   1. survival — no injected fault crashes or wedges the dispatcher, and
///   2. determinism — when every scenario eventually succeeds, the merged
///      McmmResult is byte-identical to the in-process reference, whatever
///      was killed, hung, or duplicated along the way; when a scenario is
///      poisoned past maxAttempts it is quarantined with the documented
///      conservative marker and the pass still completes.
///
/// The suite is its own binary so `ctest -L farmfault` can run it alone,
/// e.g. inside a -DTC_SANITIZE=address,undefined build (timeouts here
/// carry ASan headroom for that reason).

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "network/netgen.h"
#include "mcmm_identical.h"
#include "signoff/farm.h"
#include "util/log.h"

namespace tc {
namespace {

using testutil::expectIdentical;
using testutil::scenarioSet;

/// RAII TC_FARM_FAULT setter so a failed ASSERT can't leak a fault spec
/// into the next test.
class ScopedFault {
 public:
  explicit ScopedFault(const std::string& spec) {
    setenv("TC_FARM_FAULT", spec.c_str(), 1);
  }
  ~ScopedFault() { unsetenv("TC_FARM_FAULT"); }
};

/// Shared inputs: the standard 4-corner scenario set over a tiny block,
/// with the in-process reference computed once.
class FarmFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    LogCapture quiet;
    scenarios_ = new std::vector<Scenario>(scenarioSet());
    netlist_ = new Netlist(
        generateBlock(scenarios_->front().lib, profileTiny()));
    McmmRunner runner(*netlist_, *scenarios_);
    ref_ = new McmmResult(runner.run(McmmOptions{}));
  }
  static void TearDownTestSuite() {
    delete ref_;
    delete netlist_;
    delete scenarios_;
  }

  /// Fault-tolerant farm options: generous wall clock, tight-but-safe hang
  /// detection (several seconds of ASan headroom), fast retries.
  /// TC_FARM_TEST_WORKERS overrides the worker count so the nightly job
  /// can rerun the whole matrix at production fan-out (16 workers) without
  /// a separate test list.
  static FarmOptions tolerantOptions() {
    FarmOptions opt;
    opt.workers = 3;
    if (const char* env = std::getenv("TC_FARM_TEST_WORKERS")) {
      const int w = std::atoi(env);
      if (w > 0) opt.workers = w;
    }
    opt.scenarioTimeoutSec = 120.0;
    opt.heartbeatSec = 0.05;
    opt.heartbeatTimeoutSec = 3.0;
    opt.maxAttempts = 3;
    opt.backoffBaseSec = 0.01;
    return opt;
  }

  /// Run the farm under `spec` and require full recovery: nothing
  /// quarantined and a byte-identical merge, with at least one failure
  /// notice drawn from `expectNotices` (several classifications can be
  /// legitimate for one fault — e.g. a truncated frame reads as a clean
  /// EOF with no result OR as corruption, depending on whether a heartbeat
  /// lands behind the stub). `stragglers=false` keeps the straggler
  /// re-dispatch from rescuing the scenario before the failure path under
  /// test (hang detection in particular) gets to fire.
  void expectRecovers(const std::string& spec,
                      std::vector<DiagCode> expectNotices,
                      FarmStats* statsOut = nullptr,
                      bool stragglers = true) {
    LogCapture quiet;
    SCOPED_TRACE("TC_FARM_FAULT=" + spec);
    ScopedFault fault(spec);
    FarmOptions opt = tolerantOptions();
    opt.stragglerRedispatch = stragglers;
    DiagnosticSink sink;
    opt.sink = &sink;
    FarmStats stats;
    const McmmResult farm =
        runMcmmFarm(*netlist_, *scenarios_, opt, &stats);
    EXPECT_EQ(stats.quarantined, 0);
    EXPECT_GE(stats.retries, 1);
    int notices = 0;
    for (DiagCode code : expectNotices) notices += sink.count(code);
    EXPECT_GE(notices, 1);
    expectIdentical(*ref_, farm, spec);
    if (statsOut) *statsOut = stats;
  }

  static std::vector<Scenario>* scenarios_;
  static Netlist* netlist_;
  static McmmResult* ref_;
};

std::vector<Scenario>* FarmFaultTest::scenarios_ = nullptr;
Netlist* FarmFaultTest::netlist_ = nullptr;
McmmResult* FarmFaultTest::ref_ = nullptr;

// --- crash kinds at every process fault point -------------------------------

TEST_F(FarmFaultTest, AbortAtLoadRecovers) {
  FarmStats stats;
  expectRecovers("abort@load:scn=1:attempt=1",
                 {DiagCode::kFarmWorkerCrashed}, &stats);
  EXPECT_GE(stats.crashes, 1);
}

TEST_F(FarmFaultTest, AbortAtRunRecovers) {
  expectRecovers("abort@run:scn=2:attempt=1",
                 {DiagCode::kFarmWorkerCrashed});
}

TEST_F(FarmFaultTest, AbortAtStreamRecovers) {
  expectRecovers("abort@stream:scn=0:attempt=1",
                 {DiagCode::kFarmWorkerCrashed});
}

TEST_F(FarmFaultTest, SigkillAtLoadRecovers) {
  expectRecovers("sigkill@load:scn=0:attempt=1",
                 {DiagCode::kFarmWorkerCrashed});
}

TEST_F(FarmFaultTest, SigkillAtRunRecovers) {
  expectRecovers("sigkill@run:scn=1:attempt=1",
                 {DiagCode::kFarmWorkerCrashed});
}

TEST_F(FarmFaultTest, SigkillAtStreamRecovers) {
  expectRecovers("sigkill@stream:scn=3:attempt=1",
                 {DiagCode::kFarmWorkerCrashed});
}

// --- hang detection at every process fault point ----------------------------

TEST_F(FarmFaultTest, HangAtLoadIsDetectedAndRetried) {
  FarmStats stats;
  expectRecovers("hang@load:scn=1:attempt=1",
                 {DiagCode::kFarmWorkerHung}, &stats, /*stragglers=*/false);
  EXPECT_GE(stats.hangs, 1);
}

TEST_F(FarmFaultTest, HangAtRunIsDetectedAndRetried) {
  expectRecovers("hang@run:scn=2:attempt=1",
                 {DiagCode::kFarmWorkerHung}, nullptr, /*stragglers=*/false);
}

TEST_F(FarmFaultTest, HangAtStreamIsDetectedAndRetried) {
  expectRecovers("hang@stream:scn=0:attempt=1",
                 {DiagCode::kFarmWorkerHung}, nullptr, /*stragglers=*/false);
}

TEST_F(FarmFaultTest, StragglerRedispatchRescuesAHungWorkerEarly) {
  // With stragglers ON, a silent hang is often outraced by the re-dispatch
  // copy before heartbeat silence crosses the threshold — the pass still
  // merges byte-identically either way, whichever mechanism wins.
  LogCapture quiet;
  ScopedFault fault("hang@run:scn=1:attempt=1");
  FarmOptions opt = tolerantOptions();
  FarmStats stats;
  const McmmResult farm = runMcmmFarm(*netlist_, *scenarios_, opt, &stats);
  EXPECT_EQ(stats.quarantined, 0);
  expectIdentical(*ref_, farm, "hang vs straggler race");
}

// --- frame corruption in every region ---------------------------------------

TEST_F(FarmFaultTest, TruncatedHeaderRecovers) {
  FarmStats stats;
  expectRecovers("truncate@header:scn=1:attempt=1",
                 {DiagCode::kFarmWorkerCrashed, DiagCode::kFarmFrameCorrupt},
                 &stats);
}

TEST_F(FarmFaultTest, TruncatedPayloadRecovers) {
  expectRecovers("truncate@payload:scn=2:attempt=1",
                 {DiagCode::kFarmWorkerCrashed, DiagCode::kFarmFrameCorrupt});
}

TEST_F(FarmFaultTest, TruncatedCrcRecovers) {
  expectRecovers("truncate@crc:scn=0:attempt=1",
                 {DiagCode::kFarmWorkerCrashed, DiagCode::kFarmFrameCorrupt});
}

TEST_F(FarmFaultTest, BitflipHeaderRecovers) {
  FarmStats stats;
  expectRecovers("bitflip@header:scn=1:attempt=1",
                 {DiagCode::kFarmFrameCorrupt}, &stats);
  EXPECT_GE(stats.frameErrors, 1);
}

TEST_F(FarmFaultTest, BitflipPayloadRecovers) {
  expectRecovers("bitflip@payload:scn=3:attempt=1",
                 {DiagCode::kFarmFrameCorrupt});
}

TEST_F(FarmFaultTest, BitflipCrcRecovers) {
  expectRecovers("bitflip@crc:scn=2:attempt=1",
                 {DiagCode::kFarmFrameCorrupt});
}

// --- retry escalation, quarantine, duplicates, timeouts ---------------------

TEST_F(FarmFaultTest, PoisonScenarioIsQuarantinedAfterMaxAttempts) {
  // No attempt filter: scenario 1 crashes on EVERY attempt. After
  // maxAttempts the dispatcher must quarantine it with the documented
  // conservative -inf marker and still merge the other three corners.
  LogCapture quiet;
  ScopedFault fault("abort@run:scn=1");
  FarmOptions opt = tolerantOptions();
  opt.maxAttempts = 2;
  DiagnosticSink sink;
  opt.sink = &sink;
  FarmStats stats;
  const McmmResult farm = runMcmmFarm(*netlist_, *scenarios_, opt, &stats);
  // Unfiltered fault fires on every attempt => scenario 1 is quarantined
  // with the conservative marker while the other three merge normally.
  EXPECT_EQ(stats.quarantined, 1);
  ASSERT_EQ(farm.scenarios.size(), 4u);
  EXPECT_EQ(farm.scenarios[1].setupWns,
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(farm.scenarios[1].holdWns,
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(farm.scenarios[0].setupWns, ref_->scenarios[0].setupWns);
  EXPECT_EQ(farm.scenarios[2].setupWns, ref_->scenarios[2].setupWns);
  EXPECT_EQ(farm.scenarios[3].setupWns, ref_->scenarios[3].setupWns);
  EXPECT_GE(sink.count(DiagCode::kFarmScenarioQuarantined), 1);
  bool sawQuarantineDiag = false;
  for (const Diagnostic& d : farm.merged)
    if (d.code == DiagCode::kFarmScenarioQuarantined) sawQuarantineDiag = true;
  EXPECT_TRUE(sawQuarantineDiag)
      << "quarantine must surface in the merged stream";
}

TEST_F(FarmFaultTest, PoisonScenarioQuarantineIsDeterministic) {
  // The quarantined merge itself is reproducible: two passes over the same
  // poison produce byte-identical results.
  LogCapture quiet;
  ScopedFault fault("sigkill@run:scn=2");
  FarmOptions opt = tolerantOptions();
  opt.maxAttempts = 2;
  const McmmResult a = runMcmmFarm(*netlist_, *scenarios_, opt, nullptr);
  const McmmResult b = runMcmmFarm(*netlist_, *scenarios_, opt, nullptr);
  expectIdentical(a, b, "poison repeat");
  EXPECT_EQ(a.scenarios[2].setupWns,
            -std::numeric_limits<double>::infinity());
}

TEST_F(FarmFaultTest, DuplicateResultFramesAreDeduped) {
  LogCapture quiet;
  ScopedFault fault("dupframe@stream:scn=1:attempt=1");
  FarmOptions opt = tolerantOptions();
  DiagnosticSink sink;
  opt.sink = &sink;
  FarmStats stats;
  const McmmResult farm = runMcmmFarm(*netlist_, *scenarios_, opt, &stats);
  EXPECT_EQ(stats.quarantined, 0);
  EXPECT_GE(stats.duplicates, 1);
  expectIdentical(*ref_, farm, "dupframe");
}

TEST_F(FarmFaultTest, WallClockTimeoutKillsAndRetries) {
  // First attempt stalls (heartbeats still flowing, so this is NOT a hang)
  // past a 1-second wall-clock budget; the retry runs clean.
  LogCapture quiet;
  setenv("TC_FARM_FAULT_SLEEP_MS", "4000", 1);
  ScopedFault fault("sleep@run:scn=0:attempt=1");
  FarmOptions opt = tolerantOptions();
  opt.scenarioTimeoutSec = 1.0;
  opt.stragglerRedispatch = false;  // isolate the timeout path
  DiagnosticSink sink;
  opt.sink = &sink;
  FarmStats stats;
  const McmmResult farm = runMcmmFarm(*netlist_, *scenarios_, opt, &stats);
  unsetenv("TC_FARM_FAULT_SLEEP_MS");
  EXPECT_GE(stats.timeouts, 1);
  EXPECT_EQ(stats.quarantined, 0);
  EXPECT_GE(sink.count(DiagCode::kFarmWorkerTimeout), 1);
  expectIdentical(*ref_, farm, "timeout retry");
}

TEST_F(FarmFaultTest, StragglerIsRedispatchedAndFirstResultWins) {
  // One scenario stalls far past the median attempt time while slots sit
  // idle: the straggler copy (100+ attempt namespace, so the sleep fault
  // does not re-fire) finishes first and its result is accepted; whichever
  // result loses the race is dropped first-accepted-wins.
  LogCapture quiet;
  setenv("TC_FARM_FAULT_SLEEP_MS", "8000", 1);
  ScopedFault fault("sleep@run:scn=1:attempt=1");
  FarmOptions opt = tolerantOptions();
  opt.workers = 4;
  opt.stragglerRedispatch = true;
  opt.stragglerFactor = 1.5;
  FarmStats stats;
  const McmmResult farm = runMcmmFarm(*netlist_, *scenarios_, opt, &stats);
  unsetenv("TC_FARM_FAULT_SLEEP_MS");
  EXPECT_EQ(stats.quarantined, 0);
  EXPECT_GE(stats.attemptsLaunched, 5);  // 4 scenarios + >=1 straggler copy
  expectIdentical(*ref_, farm, "straggler");
}

TEST_F(FarmFaultTest, FaultFilteredToRetryAttemptNeverFires) {
  // The attempt filter's negative side: a fault armed for attempt 2 is
  // inert when attempt 1 succeeds — a clean pass, no retries at all.
  LogCapture quiet;
  ScopedFault fault("abort@run:scn=0:attempt=2");
  FarmOptions opt = tolerantOptions();
  FarmStats stats;
  const McmmResult farm = runMcmmFarm(*netlist_, *scenarios_, opt, &stats);
  EXPECT_EQ(stats.crashes, 0);
  EXPECT_EQ(stats.retries, 0);
  EXPECT_EQ(stats.quarantined, 0);
  expectIdentical(*ref_, farm, "inert attempt filter");
}

}  // namespace
}  // namespace tc
