/// \file soa_equivalence_test.cpp
/// \brief SoA-vs-AoS equivalence property test: the engine's
/// level-contiguous arena + batched NLDM sweep must be bitwise equal to the
/// pinned pre-refactor AoS propagator (tests/aos_reference.h) on random
/// designs, across the whole variation-modeling ladder. Every propagated
/// word is compared by bit pattern, not tolerance — the arena refactor's
/// contract is identical arithmetic in identical order, and any reordered
/// reduction or fused multiply shows up here as a one-ulp diff.

#include <cstdint>
#include <cstring>
#include <random>

#include <gtest/gtest.h>

#include "aos_reference.h"
#include "liberty/builder.h"
#include "network/netgen.h"
#include "sta/engine.h"

namespace tc {
namespace {

std::uint64_t bitsOf(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

/// Run the pinned AoS oracle against `eng` (already run()) and compare
/// every arrival/slew/variance/depth word and both required channels
/// bitwise.
void expectBitwiseEqual(const StaEngine& eng, const std::string& what) {
  aosref::AosPropagator ref(eng);
  ref.runForward();
  ref.runBackward();

  const TimingGraph& g = eng.graph();
  for (VertexId v = 0; v < g.vertexCount(); ++v) {
    const aosref::Vt& r = ref.at(v);
    for (int m = 0; m < 2; ++m) {
      const Mode mode = static_cast<Mode>(m);
      for (int tr = 0; tr < 2; ++tr) {
        ASSERT_EQ(bitsOf(eng.arrivalRaw(v, mode, tr)), bitsOf(r.arr[m][tr]))
            << what << ": arrival differs at v=" << v << " m=" << m
            << " tr=" << tr;
        ASSERT_EQ(bitsOf(eng.slewRaw(v, mode, tr)), bitsOf(r.slew[m][tr]))
            << what << ": slew differs at v=" << v << " m=" << m
            << " tr=" << tr;
        ASSERT_EQ(bitsOf(eng.varRaw(v, mode, tr)), bitsOf(r.var[m][tr]))
            << what << ": variance differs at v=" << v << " m=" << m
            << " tr=" << tr;
      }
    }
    const VertexTiming t = eng.timing(v);
    for (int m = 0; m < 2; ++m)
      for (int tr = 0; tr < 2; ++tr)
        ASSERT_EQ(t.depth[m][tr], r.depth[m][tr])
            << what << ": depth differs at v=" << v << " m=" << m
            << " tr=" << tr;
    for (int tr = 0; tr < 2; ++tr)
      ASSERT_EQ(bitsOf(eng.requiredRaw(v, tr)), bitsOf(ref.required(v, tr)))
          << what << ": required differs at v=" << v << " tr=" << tr;
  }
}

constexpr DerateMode kModes[] = {DerateMode::kNone, DerateMode::kFlatOcv,
                                 DerateMode::kAocv, DerateMode::kPocv,
                                 DerateMode::kLvf};

TEST(SoaEquivalence, RandomBlocksAcrossDerateLadder) {
  auto L = characterizedLibrary(LibraryPvt{});
  std::mt19937_64 rng(20260809);
  for (int design = 0; design < 4; ++design) {
    BlockProfile p = profileTiny();
    p.name = "soa_eq_" + std::to_string(design);
    p.numGates = 150 + static_cast<int>(rng() % 400);
    p.numFlops = 10 + static_cast<int>(rng() % 30);
    p.numInputs = 6 + static_cast<int>(rng() % 12);
    p.numOutputs = 6 + static_cast<int>(rng() % 12);
    p.levels = 5 + static_cast<int>(rng() % 8);
    p.fanoutSkew = 0.05 + 0.01 * static_cast<double>(rng() % 20);
    p.seed = rng();
    const Netlist nl = generateBlock(L, p);
    for (DerateMode m : kModes) {
      Scenario sc;
      sc.lib = L;
      sc.derate.mode = m;
      StaEngine eng(nl, sc);
      eng.run();
      expectBitwiseEqual(eng, p.name + "/" + toString(m));
    }
  }
}

TEST(SoaEquivalence, UsefulSkewAndPipeline) {
  auto L = characterizedLibrary(LibraryPvt{});

  // Useful skew exercises the net-arc skew term on flop CK sinks, in both
  // the forward batch staging and the backward pull.
  BlockProfile p = profileTiny();
  p.name = "soa_eq_skew";
  p.seed = 4242;
  Netlist nl = generateBlock(L, p);
  int skewed = 0;
  for (InstId i = 0; i < nl.instanceCount() && skewed < 8; ++i) {
    if (!nl.isSequential(i)) continue;
    nl.setUsefulSkew(i, (skewed % 2 ? -1.0 : 1.0) * 12.5 * (skewed + 1));
    ++skewed;
  }
  ASSERT_GT(skewed, 0);
  Scenario sc;
  sc.lib = L;
  sc.derate.mode = DerateMode::kLvf;
  StaEngine eng(nl, sc);
  eng.run();
  expectBitwiseEqual(eng, "useful_skew");

  // A deep narrow pipeline stresses many levels with few vertices each —
  // the opposite shape of the wide random blocks, so the batched sweep's
  // per-level flush boundaries land differently.
  const Netlist pipe = generatePipeline(L, /*lanes=*/3, /*depth=*/24);
  Scenario psc;
  psc.lib = L;
  psc.derate.mode = DerateMode::kPocv;
  StaEngine peng(pipe, psc);
  peng.run();
  expectBitwiseEqual(peng, "pipeline");
}

TEST(SoaEquivalence, RepropagateMatchesRun) {
  // repropagate() (the bench's sweep-isolation entry point) must re-derive
  // the identical arena state a full run() produced.
  auto L = characterizedLibrary(LibraryPvt{});
  BlockProfile p = profileTiny();
  p.seed = 777;
  const Netlist nl = generateBlock(L, p);
  Scenario sc;
  sc.lib = L;
  sc.derate.mode = DerateMode::kLvf;
  StaEngine eng(nl, sc);
  eng.run();
  std::vector<VertexTiming> before;
  before.reserve(static_cast<std::size_t>(eng.graph().vertexCount()));
  for (VertexId v = 0; v < eng.graph().vertexCount(); ++v)
    before.push_back(eng.timing(v));
  eng.repropagate();
  for (VertexId v = 0; v < eng.graph().vertexCount(); ++v) {
    const VertexTiming after = eng.timing(v);
    ASSERT_EQ(std::memcmp(&before[static_cast<std::size_t>(v)], &after,
                          sizeof(VertexTiming)),
              0)
        << "repropagate diverged at v=" << v;
  }
}

}  // namespace
}  // namespace tc
