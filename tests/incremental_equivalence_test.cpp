/// \file incremental_equivalence_test.cpp
/// \brief Property test for the incremental timer's core contract: after an
/// arbitrary sequence of closure transforms driven through the netlist
/// mutation hooks, updateTiming() leaves the engine bit-identical to a
/// from-scratch retime — every arrival/slew/variance word, every required
/// time, every endpoint slack, WNS/TNS, and the diagnostic stream — both
/// serial and on a thread pool.

#include <gtest/gtest.h>

#include <cstring>

#include "liberty/builder.h"
#include "network/netgen.h"
#include "opt/transforms.h"
#include "sta/engine.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tc {
namespace {

std::shared_ptr<const Library> lib() {
  return characterizedLibrary(LibraryPvt{}, true);
}

/// The full bit-identity contract against a from-scratch serial retime.
void expectBitIdentical(StaEngine& inc, const Netlist& nl,
                        const Scenario& sc, const std::string& ctx) {
  SCOPED_TRACE(ctx);
  DiagnosticSink fullSink;
  fullSink.setEcho(false);
  StaEngine full(nl, sc);
  full.setDiagnosticSink(&fullSink);
  full.run();

  ASSERT_EQ(inc.graph().vertexCount(), full.graph().vertexCount());
  int timingMismatches = 0;
  int slackMismatches = 0;
  for (VertexId v = 0; v < full.graph().vertexCount(); ++v) {
    // timing() materializes from the SoA arena, so compare local copies.
    const VertexTiming ti = inc.timing(v);
    const VertexTiming tf = full.timing(v);
    if (std::memcmp(&ti, &tf, sizeof(VertexTiming)) != 0)
      ++timingMismatches;
    const Ps a = inc.vertexSlack(v);
    const Ps b = full.vertexSlack(v);
    // Bitwise, but NaN-tolerant: slack at unreached vertices is inf-inf.
    if (std::memcmp(&a, &b, sizeof(Ps)) != 0) ++slackMismatches;
  }
  EXPECT_EQ(timingMismatches, 0) << "forward timing words diverged";
  EXPECT_EQ(slackMismatches, 0) << "required-time slacks diverged";

  ASSERT_EQ(inc.endpoints().size(), full.endpoints().size());
  for (std::size_t i = 0; i < full.endpoints().size(); ++i) {
    const EndpointTiming& a = inc.endpoints()[i];
    const EndpointTiming& b = full.endpoints()[i];
    ASSERT_EQ(a.vertex, b.vertex) << "endpoint order diverged at " << i;
    ASSERT_EQ(a.setupSlack, b.setupSlack) << "setup slack at ep " << i;
    ASSERT_EQ(a.holdSlack, b.holdSlack) << "hold slack at ep " << i;
  }

  EXPECT_EQ(inc.wns(Check::kSetup), full.wns(Check::kSetup));
  EXPECT_EQ(inc.wns(Check::kHold), full.wns(Check::kHold));
  EXPECT_EQ(inc.tns(Check::kSetup), full.tns(Check::kSetup));
  EXPECT_EQ(inc.tns(Check::kHold), full.tns(Check::kHold));
  EXPECT_EQ(inc.violationCount(Check::kSetup),
            full.violationCount(Check::kSetup));
  EXPECT_EQ(inc.violationCount(Check::kHold),
            full.violationCount(Check::kHold));
  EXPECT_EQ(inc.drvViolations().size(), full.drvViolations().size());
  EXPECT_EQ(inc.nanQuarantineCount(), full.nanQuarantineCount());

  // Diagnostics: the incremental engine's canonical replay must equal the
  // stream the fresh run just emitted, byte for byte and in order.
  DiagnosticSink replaySink;
  replaySink.setEcho(false);
  inc.replayTimingDiagnostics(replaySink);
  const auto ra = replaySink.diagnostics();
  const auto rb = fullSink.diagnostics();
  ASSERT_EQ(ra.size(), rb.size()) << "diagnostic stream length diverged";
  for (std::size_t i = 0; i < rb.size(); ++i) {
    EXPECT_EQ(ra[i].severity, rb[i].severity);
    EXPECT_EQ(ra[i].code, rb[i].code);
    EXPECT_EQ(ra[i].message, rb[i].message);
    EXPECT_EQ(ra[i].entity, rb[i].entity);
  }
}

/// Apply a random sequence of real closure transforms through the mutation
/// hooks, updating incrementally after each, and check the contract at
/// every step.
void runTransformSequence(const BlockProfile& profile, int threads,
                          std::uint64_t seed, int steps) {
  auto L = lib();
  Netlist nl = generateBlock(L, profile);
  Scenario sc;
  sc.lib = L;

  ThreadPool pool(threads);
  StaEngine inc(nl, sc);
  if (threads > 0) inc.setThreadPool(&pool);
  inc.run();

  RepairConfig cfg;
  cfg.maxEdits = 8;
  Rng rng(seed);
  int totalEdits = 0;
  for (int s = 0; s < steps; ++s) {
    const int kind = static_cast<int>(rng.below(6));
    int edits = 0;
    switch (kind) {
      case 0:
        edits = vtSwapFix(nl, inc, cfg);
        break;
      case 1:
        edits = gateSizingFix(nl, inc, cfg);
        break;
      case 2:
        edits = pinSwapFix(nl, inc, cfg);
        break;
      case 3:
        edits = ndrPromotionFix(nl, inc, cfg);
        break;
      case 4:
        edits = usefulSkewFix(nl, inc, cfg);
        break;
      case 5:
        // Structural: exercises the full-retime fallback.
        edits = bufferInsertionFix(nl, inc, cfg);
        break;
    }
    totalEdits += edits;
    inc.updateTiming();
    expectBitIdentical(inc, nl, sc,
                       "step " + std::to_string(s) + " kind " +
                           std::to_string(kind) + " edits " +
                           std::to_string(edits));
    if (::testing::Test::HasFatalFailure()) return;
  }
  // The sequence must actually have exercised the machinery.
  EXPECT_GT(totalEdits, 0);
}

TEST(IncrementalEquivalence, TinySerial) {
  runTransformSequence(profileTiny(), 0, 101, 8);
}

TEST(IncrementalEquivalence, TinyPool8) {
  runTransformSequence(profileTiny(), 8, 101, 8);
}

TEST(IncrementalEquivalence, C5315Serial) {
  runTransformSequence(profileC5315(), 0, 2025, 5);
}

TEST(IncrementalEquivalence, C5315Pool8) {
  runTransformSequence(profileC5315(), 8, 2025, 5);
}

/// A different seed drives a different transform interleaving; keep one
/// extra sequence on the larger block to widen coverage of orderings.
TEST(IncrementalEquivalence, C5315SerialAltSeed) {
  runTransformSequence(profileC5315(), 0, 777, 5);
}

/// Direct attribute edits through every notifying setter in one batch,
/// then a single update: overlapping frontiers must still converge.
TEST(IncrementalEquivalence, BatchedMixedEdits) {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  Scenario sc;
  sc.lib = L;
  StaEngine inc(nl, sc);
  inc.run();

  int swaps = 0;
  for (InstId i = 0; i < nl.instanceCount() && swaps < 6; ++i) {
    const Cell& c = nl.cellOf(i);
    if (c.isSequential || nl.instance(i).isClockTreeBuffer) continue;
    const int cand = L->variant(c.footprint, VtClass::kUlvt, c.drive);
    if (cand < 0 || cand == nl.instance(i).cellIndex) continue;
    nl.swapCell(i, cand);
    ++swaps;
  }
  int skews = 0;
  for (InstId i = 0; i < nl.instanceCount() && skews < 3; ++i) {
    if (!nl.isSequential(i)) continue;
    nl.setUsefulSkew(i, 25.0);
    ++skews;
  }
  int ndrs = 0;
  for (NetId n = 0; n < nl.netCount() && ndrs < 4; ++n) {
    if (nl.net(n).driver < 0) continue;
    if (nl.instance(nl.net(n).driver).isClockTreeBuffer) continue;
    nl.setNdrClass(n, 2);
    nl.setMillerOverride(n, 1.4);
    ++ndrs;
  }
  ASSERT_GT(swaps, 0);
  ASSERT_GT(skews, 0);
  ASSERT_GT(ndrs, 0);
  inc.updateTiming();
  expectBitIdentical(inc, nl, sc, "batched mixed edits");
}

/// Structural edit via swapPins: connectivity moved, so the engine must
/// fall back to a full retime and still match.
TEST(IncrementalEquivalence, PinSwapFallsBackToFullRetime) {
  auto L = lib();
  Netlist nl = generateBlock(L, profileTiny());
  Scenario sc;
  sc.lib = L;
  StaEngine inc(nl, sc);
  inc.run();

  bool swapped = false;
  for (InstId i = 0; i < nl.instanceCount() && !swapped; ++i) {
    const Cell& c = nl.cellOf(i);
    if (c.isSequential || c.footprint != "NAND2") continue;
    if (nl.instance(i).fanin[0] < 0 || nl.instance(i).fanin[1] < 0) continue;
    if (nl.instance(i).fanin[0] == nl.instance(i).fanin[1]) continue;
    nl.swapPins(i, 0, 1);
    swapped = true;
  }
  ASSERT_TRUE(swapped);
  const auto st = inc.updateTiming();
  EXPECT_TRUE(st.full) << "pin swap must trigger the structural fallback";
  expectBitIdentical(inc, nl, sc, "after pin swap");
}

}  // namespace
}  // namespace tc
