#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py, the CI perf-gate comparator.

Covers the failure modes a CI artifact can actually hit: a truncated or
hand-mangled baseline JSON must fail the gate with a clean error naming
the file (exit 1, no traceback), while matching results keep passing and
counter divergence keeps failing. Run directly or via ctest (label: unit).
"""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

TOOL = Path(__file__).resolve().parent.parent / "tools" / "bench_compare.py"


def run_compare(baseline_dir, results_dir, *extra):
    return subprocess.run(
        [sys.executable, str(TOOL), "--baseline-dir", str(baseline_dir),
         "--results-dir", str(results_dir), *extra],
        capture_output=True, text=True)


def bench_json(**metrics):
    return json.dumps({
        "bench": "bench_fake",
        "wall_ms": 1.0,
        "metrics": [{"name": k, "value": v, "unit": u}
                    for k, (v, u) in metrics.items()],
    })


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        root = Path(self.tmp.name)
        self.base = root / "baselines"
        self.res = root / "results"
        self.base.mkdir()
        self.res.mkdir()

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, d, name, text):
        (d / name).write_text(text)

    def test_matching_results_pass(self):
        body = bench_json(wns_ps=(-100.0, "ps"), ctr_hits=(42, "count"))
        self.write(self.base, "bench_fake.json", body)
        self.write(self.res, "bench_fake.json", body)
        p = run_compare(self.base, self.res)
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)
        self.assertIn("PASSED", p.stdout)

    def test_counter_divergence_fails(self):
        self.write(self.base, "bench_fake.json",
                   bench_json(ctr_hits=(42, "count")))
        self.write(self.res, "bench_fake.json",
                   bench_json(ctr_hits=(43, "count")))
        p = run_compare(self.base, self.res)
        self.assertEqual(p.returncode, 1, p.stdout + p.stderr)
        self.assertIn("counter diverged", p.stdout)

    def test_malformed_baseline_errors_cleanly(self):
        # Truncated JSON: the gate must fail with a message naming the
        # file, not die with a decoder traceback.
        self.write(self.base, "bench_fake.json", '{"bench": "x", "metr')
        self.write(self.res, "bench_fake.json", bench_json(a=(1.0, "ps")))
        p = run_compare(self.base, self.res)
        self.assertEqual(p.returncode, 1, p.stdout + p.stderr)
        self.assertIn("malformed JSON", p.stderr)
        self.assertIn("bench_fake.json", p.stderr)
        self.assertNotIn("Traceback", p.stderr)

    def test_malformed_result_errors_cleanly(self):
        self.write(self.base, "bench_fake.json", bench_json(a=(1.0, "ps")))
        self.write(self.res, "bench_fake.json", "not json at all")
        p = run_compare(self.base, self.res)
        self.assertEqual(p.returncode, 1, p.stdout + p.stderr)
        self.assertIn("malformed JSON", p.stderr)
        self.assertNotIn("Traceback", p.stderr)

    def test_wrong_shape_errors_cleanly(self):
        # Valid JSON of the wrong shape (array, or metrics entries
        # missing keys) is an error, not an AttributeError/KeyError crash.
        self.write(self.base, "bench_fake.json", "[1, 2, 3]")
        self.write(self.res, "bench_fake.json", bench_json(a=(1.0, "ps")))
        p = run_compare(self.base, self.res)
        self.assertEqual(p.returncode, 1, p.stdout + p.stderr)
        self.assertNotIn("Traceback", p.stderr)

        self.write(self.base, "bench_fake.json",
                   json.dumps({"metrics": [{"value": 1.0}]}))
        p = run_compare(self.base, self.res)
        self.assertEqual(p.returncode, 1, p.stdout + p.stderr)
        self.assertIn("not bench JSON", p.stderr)
        self.assertNotIn("Traceback", p.stderr)

    def test_empty_baseline_dir_is_distinct_error(self):
        self.write(self.res, "bench_fake.json", bench_json(a=(1.0, "ps")))
        p = run_compare(self.base, self.res)
        self.assertEqual(p.returncode, 2, p.stdout + p.stderr)


if __name__ == "__main__":
    unittest.main()
